"""Target-driven instruction-set simulator.

The simulator owns control flow (labels, branches, hardware repeat) and
storage; every data operation is delegated to the target model's
``execute`` method, so the machine behaviour is defined in exactly one
place -- the explicit processor description the paper demands
("the target model cannot be an implicit part of the tool's algorithm").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, TYPE_CHECKING

from repro.codegen.asm import AsmInstr, CodeSeq, Imm, Label, LabelRef, Mem, Reg
from repro.sim.trace import Trace, TraceEntry

if TYPE_CHECKING:   # pragma: no cover
    from repro.targets.model import TargetModel


class SimulationError(Exception):
    """Raised for malformed code, unresolved operands, or runaway loops."""


@dataclass
class MachineState:
    """Generic processor state: registers, modes, data + program memory.

    ``pmem_data`` models a data table placed in *program* memory (the
    TC25 ``MAC`` idiom fetches coefficients there); ``repeat`` is the
    hardware-repeat countdown applied to the next instruction.
    """

    regs: Dict[str, int] = field(default_factory=dict)
    modes: Dict[str, int] = field(default_factory=dict)
    mem: List[int] = field(default_factory=lambda: [0] * 1024)
    pmem_tables: Dict[str, List[int]] = field(default_factory=dict)
    # Hardware-loop stack: (remaining iterations,) entries for DO-style
    # zero-overhead loops (M56).
    loop_stack: List[int] = field(default_factory=list)
    cycles: int = 0

    def reg(self, name: str) -> int:
        """Read a register (SimulationError when undefined)."""
        try:
            return self.regs[name]
        except KeyError:
            raise SimulationError(f"register {name!r} not defined by target")

    def set_reg(self, name: str, value: int) -> None:
        """Write a register."""
        self.regs[name] = value

    def load(self, address: int) -> int:
        """Read data memory (bounds-checked)."""
        if not 0 <= address < len(self.mem):
            raise SimulationError(f"data address {address} out of range")
        return self.mem[address]

    def store(self, address: int, value: int) -> None:
        """Write data memory (bounds-checked)."""
        if not 0 <= address < len(self.mem):
            raise SimulationError(f"data address {address} out of range")
        self.mem[address] = value


class Machine:
    """Executes a finalized :class:`CodeSeq` on a target model.

    The code must be *finalized*: all memory operands resolved to
    ``direct`` or ``indirect`` mode and all loop markers lowered to real
    instructions (see the address-assignment and loop-finalization
    stages of the pipelines).
    """

    def __init__(self, target: "TargetModel",
                 max_steps: int = 2_000_000):
        self.target = target
        self.max_steps = max_steps

    def run(self, code: CodeSeq,
            state: Optional[MachineState] = None,
            trace: Optional[Trace] = None) -> MachineState:
        """Execute finalized code to completion; returns the state."""
        if state is None:
            state = self.target.initial_state()
        instructions: List[AsmInstr] = []
        labels: Dict[str, int] = {}
        for item in code:
            if isinstance(item, Label):
                if item.name in labels:
                    raise SimulationError(f"duplicate label {item.name!r}")
                labels[item.name] = len(instructions)
            elif isinstance(item, AsmInstr):
                instructions.append(item)
            else:
                raise SimulationError(
                    f"unfinalized item in code: {item.render()}")

        pc = 0
        steps = 0
        count = len(instructions)
        execute = self.target.execute
        repeat_count = self.target.repeat_count
        max_steps = self.max_steps
        while pc < count:
            instr = instructions[pc]
            repeat = repeat_count(state, instr)
            # Every repeat iteration spends budget: a huge hardware
            # repeat count must trip the runaway guard, not bypass it.
            steps += repeat
            if steps > max_steps:
                raise SimulationError(
                    f"exceeded {max_steps} steps; runaway loop?")
            jump_target: Optional[str] = None
            cycles = instr.cycles
            if trace is None:
                for _ in range(repeat):
                    jump_target = execute(state, instr)
                    state.cycles += cycles
            else:
                text = instr.render()     # render once per instruction
                for _ in range(repeat):
                    jump_target = execute(state, instr)
                    state.cycles += cycles
                    trace.record(TraceEntry(pc=pc, text=text,
                                            cycles=state.cycles))
            if jump_target is not None:
                if jump_target not in labels:
                    raise SimulationError(
                        f"branch to unknown label {jump_target!r}")
                pc = labels[jump_target]
            else:
                pc += 1
        return state
