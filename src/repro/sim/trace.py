"""Execution traces for debugging and for the self-test generator.

The self-test generator (Sec. 4.5) compares execution signatures of a
fault-free machine against fault-injected variants; traces make the
divergence point visible when a test program unexpectedly fails to
detect a fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TraceEntry:
    pc: int
    text: str
    cycles: int


class Trace:
    """Bounded in-memory execution trace."""

    def __init__(self, limit: int = 100_000):
        self.entries: List[TraceEntry] = []
        self.limit = limit
        self.dropped = 0

    def record(self, entry: TraceEntry) -> None:
        """Append an entry (dropped silently past the limit)."""
        if len(self.entries) < self.limit:
            self.entries.append(entry)
        else:
            self.dropped += 1

    def render(self, last: int = 50) -> str:
        """The most recent ``last`` entries as text."""
        lines = [f"{e.cycles:>8}  {e.pc:>4}  {e.text}"
                 for e in self.entries[-last:]]
        if self.dropped:
            lines.append(f"... ({self.dropped} entries dropped)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
