"""The source-generating simulator tier.

:class:`JitMachine` is the third (fastest) member of the simulator
stack, layered jit -> :class:`~repro.sim.fastmachine.FastMachine` ->
reference :class:`~repro.sim.machine.Machine`.  Where the fast
simulator replaces per-instruction dispatch with pre-bound closures,
this tier *emits specialized Python source* for each basic block of the
decoded program -- operands constant-folded into literals, registers
and machine modes hoisted into function locals, memory bounds checks
inlined against a literal memory size, and hardware repeats turned into
native ``for`` loops -- then ``compile()``s the module once and runs it
through a block-chaining loop identical in contract to the fast
simulator's.

The translation is driven by the target's ``@emitter`` registry (see
:func:`repro.targets.model.emitter`), a per-opcode template tier that
sits beside ``@semantics`` and ``@binder``.  Degradation is graceful at
every level:

- an opcode with no (or a declining) template gets an inlined call to
  its bound ``@binder`` closure -- the surrounding block stays
  specialized;
- a template that raises during emission abandons that block only: the
  block runs its already-decoded FastMachine closures behind the same
  block-chaining interface;
- a program the decoder cannot specialize (:class:`DecodeFallback`)
  runs the reference interpreter, exactly as the fast simulator does.

Generated source is cached twice: in-process on the decoded program
itself (one attribute read on the warm path), and persistently in the
``repro.cache`` artifact store
keyed on (format version, target, code version, decoded instruction
views), so warm processes skip code generation entirely and only pay
``exec`` plus closure re-injection.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.codegen.asm import CodeSeq
from repro.sim.decode import DecodedProgram, decode_cached
from repro.sim.fastmachine import FastMachine
from repro.sim.machine import Machine, MachineState, SimulationError
from repro.sim.trace import Trace

if TYPE_CHECKING:   # pragma: no cover
    from repro.targets.model import TargetModel

#: bump when the generated-source layout changes (invalidates the
#: persistent source cache alongside the code-version stamp).
SOURCE_FORMAT = 3


class BlockEmitter:
    """Code-generation context handed to ``@emitter`` templates.

    Tracks a per-block cache of register/mode locals (loaded lazily,
    flushed back to the state dicts at block boundaries and around
    closure calls), allocates temporaries, and provides the guarded
    memory idiom whose failure mode is bit-identical to
    :meth:`MachineState.load`/``store``.
    """

    def __init__(self, memsize: int, labels: Dict[str, int]):
        self.memsize = memsize
        self.labels = labels
        self.lines: List[Tuple[int, str]] = []
        self.prelude: List[str] = []
        self.helpers: Dict[str, str] = {}
        self.uses_regs = False
        self.uses_mem = False
        self.uses_modes = False
        self._indent = 0
        self._tmp = 0
        self._regs: Dict[str, str] = {}
        self._dirty_regs: set = set()
        self._modes: Dict[str, str] = {}
        self._dirty_modes: set = set()
        self._tables: Dict[str, Tuple[str, str]] = {}
        self._branch: Optional[Tuple] = None
        # Every register/mode name ever referenced -- survives
        # invalidate(), so the self-loop re-emission pass knows the
        # full preload set.
        self.all_regs: set = set()
        self.all_modes: set = set()

    # -- low-level emission ------------------------------------------------

    def line(self, source: str) -> None:
        """Append one source line at the current indentation."""
        self.lines.append((self._indent, source))

    def indented(self):
        """Context manager: one level deeper (for ``for``/``if`` bodies)."""
        ctx = self

        class _Indent:
            def __enter__(self):
                ctx._indent += 1

            def __exit__(self, *exc):
                ctx._indent -= 1
        return _Indent()

    def tmp(self) -> str:
        """A fresh temporary local name."""
        name = f"_t{self._tmp}"
        self._tmp += 1
        return name

    def helper(self, name: str, source: str) -> None:
        """Register a module-level helper (deduplicated by name)."""
        self.helpers.setdefault(name, source)

    # -- wrap arithmetic ---------------------------------------------------

    @staticmethod
    def wrap16(expr: str) -> str:
        """Branch-free 16-bit two's-complement wrap of ``expr``.
        Fully parenthesized: safe to embed in larger expressions."""
        return f"(((({expr}) & 0xFFFF) ^ 0x8000) - 0x8000)"

    @staticmethod
    def wrap32(expr: str) -> str:
        """Branch-free 32-bit two's-complement wrap of ``expr``.
        Fully parenthesized: safe to embed in larger expressions."""
        return f"(((({expr}) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"

    # -- register / mode locals --------------------------------------------

    def reg(self, name: str) -> str:
        """Local holding register ``name`` (loaded on first use)."""
        local = self._regs.get(name)
        if local is None:
            local = "_r_" + name
            self.uses_regs = True
            self.all_regs.add(name)
            self.line(f"{local} = _rg[{name!r}]")
            self._regs[name] = local
        return local

    def set_reg(self, name: str, expr: str) -> None:
        """Assign register ``name``; flushed at the block boundary."""
        local = self._regs.get(name)
        if local is None:
            local = "_r_" + name
            self.uses_regs = True
            self.all_regs.add(name)
            self._regs[name] = local
        self.line(f"{local} = {expr}")
        self._dirty_regs.add(name)

    def mode(self, name: str, default: int = 0) -> str:
        """Local holding machine mode ``name`` (loaded on first use)."""
        local = self._modes.get(name)
        if local is None:
            local = "_md_" + name
            self.uses_modes = True
            self.all_modes.add(name)
            self.line(f"{local} = _mo.get({name!r}, {default})")
            self._modes[name] = local
        return local

    def set_mode(self, name: str, expr: str) -> None:
        """Assign machine mode ``name``; flushed at the block boundary."""
        local = self._modes.get(name)
        if local is None:
            local = "_md_" + name
            self.uses_modes = True
            self.all_modes.add(name)
            self._modes[name] = local
        self.line(f"{local} = {expr}")
        self._dirty_modes.add(name)

    # -- memory ------------------------------------------------------------

    def load(self, addr) -> str:
        """Guarded data-memory read; ``addr`` is an int literal or the
        name of a local.  Raises the same error as ``MachineState.load``
        when out of range."""
        self.uses_mem = True
        if isinstance(addr, int):
            if 0 <= addr < self.memsize:
                return f"mem[{addr}]"
            return f"_oob({addr})"
        return (f"(mem[{addr}] if 0 <= {addr} < {self.memsize}"
                f" else _oob({addr}))")

    def store(self, addr, value_expr: str) -> None:
        """Guarded data-memory write (no wrapping: callers wrap)."""
        self.uses_mem = True
        if isinstance(addr, int):
            if 0 <= addr < self.memsize:
                self.line(f"mem[{addr}] = {value_expr}")
            else:
                self.line(f"_oob({addr})")
            return
        self.line(f"if 0 <= {addr} < {self.memsize}:")
        with self.indented():
            self.line(f"mem[{addr}] = {value_expr}")
        self.line("else:")
        with self.indented():
            self.line(f"_oob({addr})")

    # -- Mem-operand helpers (direct/indirect addressing) ------------------

    def mem_addr(self, operand):
        """Effective address of a resolved Mem operand: an int literal
        (direct) or a register local (indirect).  Unresolved operands
        abort emission -- the block degrades to its decoded closures,
        which raise the reference error at run time."""
        if operand.mode == "direct":
            return operand.address
        if operand.mode == "indirect":
            return self.reg(operand.areg)
        raise ValueError(f"unresolved memory operand {operand}")

    def post_bump(self, operand, addr) -> None:
        """Apply an indirect operand's post-modification, given the
        just-used effective address (int or local)."""
        if operand.mode == "indirect" and operand.post_modify:
            self.set_reg(operand.areg,
                         f"{addr} + {operand.post_modify}")

    def read_mem(self, operand) -> str:
        """Read a Mem operand with post-modify applied; returns an
        expression (a temp for indirect reads)."""
        addr = self.mem_addr(operand)
        if isinstance(addr, int):
            return self.load(addr)
        if operand.post_modify:
            value = self.tmp()
            self.line(f"{value} = {self.load(addr)}")
            self.post_bump(operand, addr)
            return value
        return self.load(addr)

    def write_mem(self, operand, value_expr: str,
                  wrap: bool = True) -> None:
        """Write a Mem operand (16-bit wrapped by default) with
        post-modify applied."""
        addr = self.mem_addr(operand)
        if wrap:
            value_expr = self.wrap16(value_expr)
        self.store(addr, value_expr)
        self.post_bump(operand, addr)

    # -- program-memory tables ---------------------------------------------

    def pmem_table(self, name: str) -> Tuple[str, str]:
        """(table local, length local) for a program-memory table,
        hoisted to the block prelude with the reference not-loaded
        error."""
        entry = self._tables.get(name)
        if entry is None:
            self.helper("_no_table", (
                "def _no_table(n):\n"
                "    raise SimulationError(\n"
                "        f\"program-memory table {n!r} not loaded\")"))
            table = f"_tb{len(self._tables)}"
            length = f"_tn{len(self._tables)}"
            self.prelude.append(
                f"{table} = state.pmem_tables.get({name!r})")
            self.prelude.append(f"if {table} is None:")
            self.prelude.append(f"    _no_table({name!r})")
            self.prelude.append(f"{length} = len({table})")
            entry = (table, length)
            self._tables[name] = entry
        return entry

    # -- control flow ------------------------------------------------------

    def jump(self, label: str) -> None:
        """Unconditional branch to ``label`` at block end."""
        self._branch = ("always", None, label)

    def jump_if(self, cond_expr: str, label: str) -> None:
        """Branch to ``label`` when ``cond_expr`` is true, else fall
        through to the next block."""
        self._branch = ("cond", cond_expr, label)

    # -- bookkeeping used by the translator --------------------------------

    def flush(self) -> None:
        """Write every dirty register/mode local back to the state."""
        for name in sorted(self._dirty_regs):
            self.line(f"_rg[{name!r}] = {self._regs[name]}")
        self._dirty_regs.clear()
        for name in sorted(self._dirty_modes):
            self.line(f"_mo[{name!r}] = {self._modes[name]}")
        self._dirty_modes.clear()

    def invalidate(self) -> None:
        """Forget cached register/mode locals (after a closure call
        mutated the state dicts behind our back)."""
        self._regs.clear()
        self._dirty_regs.clear()
        self._modes.clear()
        self._dirty_modes.clear()

    def snapshot(self):
        """Checkpoint for the repeat-fusion dry run."""
        return (len(self.lines), len(self.prelude), dict(self._regs),
                set(self._dirty_regs), dict(self._modes),
                set(self._dirty_modes), dict(self._tables), self._tmp,
                self._branch, self._indent)

    def restore(self, snap) -> None:
        """Roll back to a snapshot() checkpoint, undoing any partial
        emission from a template that declined or raised."""
        (nlines, nprelude, regs, dirty_regs, modes, dirty_modes,
         tables, tmp, branch, indent) = snap
        del self.lines[nlines:]
        del self.prelude[nprelude:]
        self._regs = regs
        self._dirty_regs = dirty_regs
        self._modes = modes
        self._dirty_modes = dirty_modes
        self._tables = tables
        self._tmp = tmp
        self._branch = branch
        self._indent = indent


class JitProgram:
    """A translated program: one compiled function per basic block."""

    __slots__ = ("fns", "steps", "entry", "memsize", "source",
                 "loop_fns")

    def __init__(self, fns: List[Callable], steps: Tuple[int, ...],
                 entry: Optional[int], memsize: int, source: str,
                 loop_fns: Optional[List[Optional[Callable]]] = None):
        self.fns = fns
        self.steps = steps
        self.entry = entry
        self.memsize = memsize
        self.source = source
        self.loop_fns = (loop_fns if loop_fns is not None
                         else [None] * len(fns))


class _BlockFallback(Exception):
    """A template raised during emission; degrade this block to its
    already-decoded FastMachine closures."""


# ----------------------------------------------------------------------
# Translation: decoded blocks -> Python source
# ----------------------------------------------------------------------

_MODULE_HEADER = (
    "# generated by repro.sim.jit (format %d) -- do not edit\n"
    "from repro.sim.machine import SimulationError\n"
    "\n"
    "def _oob(a):\n"
    "    raise SimulationError(f\"data address {a} out of range\")\n"
    "\n"
    "def _unknown_label(l):\n"
    "    raise SimulationError(f\"branch to unknown label {l!r}\")\n"
)


def _emit_closure_step(ctx: BlockEmitter, index: int,
                       step_slots: List[int]) -> None:
    """The generic per-opcode fallback: flush locals, call the bound
    @binder closure injected as ``_s<index>``, forget the locals."""
    ctx.flush()
    ctx.line(f"_s{index}(state)")
    ctx.invalidate()
    step_slots.append(index)


def _walk_plan(target: "TargetModel", views, block,
               ctx: BlockEmitter, block_step_slots: List[int],
               block_pre_slots: List[int]) -> Tuple[Optional[int],
                                                    int, int]:
    """Emit one block's plan into ``ctx``.

    Returns ``(branch_slot, inline_steps, closure_steps)``; raises
    :class:`_BlockFallback` (or any template exception) when the block
    must degrade to its decoded closures.
    """
    branch_slot: Optional[int] = None
    inline_steps = 0
    closure_steps = 0
    for item in block.plan:
        kind = item[0]
        if kind == "step":
            index = item[1]
            view = views[index]
            if not target.emit_pre_py(view, ctx):
                ctx.flush()
                ctx.line(f"_p{index}(state)")
                ctx.invalidate()
                block_pre_slots.append(index)
            snap = ctx.snapshot()
            if target.emit_py(view, ctx):
                inline_steps += 1
            else:
                # A declining template may have emitted partial
                # lines; roll them back before the closure call.
                ctx.restore(snap)
                _emit_closure_step(ctx, index, block_step_slots)
                closure_steps += 1
        elif kind == "repeat":
            _armer, index, count = item[1], item[2], item[3]
            view = views[index]
            if not target.emit_pre_py(view, ctx):
                ctx.flush()
                ctx.line(f"_p{index}(state)")
                ctx.invalidate()
                block_pre_slots.append(index)
            snap = ctx.snapshot()
            known = set(ctx._regs)
            known_modes = set(ctx._modes)
            if target.emit_py(view, ctx):
                # Dry run done: preload every register/mode the
                # body touches so no load lands inside the loop
                # (a mid-loop reload would read a stale dict).
                touched = sorted(set(ctx._regs) - known)
                touched_modes = sorted(set(ctx._modes)
                                       - known_modes)
                ctx.restore(snap)
                for name in touched:
                    ctx.reg(name)
                for name in touched_modes:
                    ctx.mode(name)
                ctx.line(f"for _ in range({count}):")
                with ctx.indented():
                    target.emit_py(view, ctx)
                inline_steps += 1
            else:
                ctx.restore(snap)
                ctx.flush()
                ctx.line(f"for _ in range({count}):")
                with ctx.indented():
                    ctx.line(f"_s{index}(state)")
                ctx.invalidate()
                block_step_slots.append(index)
                closure_steps += 1
        else:   # "branch"
            index = item[1]
            view = views[index]
            if not target.emit_pre_py(view, ctx):
                ctx.flush()
                ctx.line(f"_p{index}(state)")
                ctx.invalidate()
                block_pre_slots.append(index)
            snap = ctx.snapshot()
            if target.emit_py(view, ctx):
                inline_steps += 1
                if ctx._branch is None:
                    raise _BlockFallback(
                        f"branch emitter for {view.opcode!r} "
                        "recorded no jump")
            else:
                ctx.restore(snap)
                branch_slot = index
                closure_steps += 1
    return branch_slot, inline_steps, closure_steps


def _assemble(number: int, ctx: BlockEmitter,
              signature: str = "state") -> str:
    """Wrap a context's prelude + lines into one block function."""
    body: List[str] = []
    if ctx.uses_regs:
        body.append("_rg = state.regs")
    if ctx.uses_mem:
        body.append("mem = state.mem")
    if ctx.uses_modes:
        body.append("_mo = state.modes")
    body.extend(ctx.prelude)
    text = [f"def _b{number}({signature}):"]
    for line in body:
        text.append("    " + line)
    for indent, line in ctx.lines:
        text.append("    " * (indent + 1) + line)
    return "\n".join(text)


def _generate(target: "TargetModel", decoded: DecodedProgram,
              memsize: int) -> str:
    """Emit the specialized module source for a decoded program."""
    views = decoded.views
    labels = decoded.labels
    step_slots: List[int] = []
    pre_slots: List[int] = []
    closure_blocks: List[int] = []
    loop_blocks: List[int] = []
    helpers: Dict[str, str] = {}
    counts = {"blocks_emitted": 0, "blocks_closure": 0,
              "inline_steps": 0, "closure_steps": 0,
              "loop_blocks": 0}
    functions: List[str] = []

    for number, block in enumerate(decoded.blocks):
        block_step_slots: List[int] = []
        block_pre_slots: List[int] = []
        ctx = BlockEmitter(memsize, labels)
        try:
            branch_slot, inline_steps, closure_steps = _walk_plan(
                target, views, block, ctx, block_step_slots,
                block_pre_slots)
        except Exception:
            # Template bug or unsupported shape: this block (only)
            # degrades to its decoded FastMachine closures.
            closure_blocks.append(number)
            counts["blocks_closure"] += 1
            continue

        # Self-loop fusion: a fully inlined block whose emitted branch
        # targets itself (``L: body ; BANZ L``) becomes one native
        # ``while`` loop keeping register locals live across
        # iterations.  Budget and cycles stay per-iteration exact.
        if (ctx._branch is not None and branch_slot is None
                and not block_step_slots and not block_pre_slots
                and labels.get(ctx._branch[2]) == number):
            try:
                loop_ctx = BlockEmitter(memsize, labels)
                for name in sorted(ctx.all_regs):
                    loop_ctx.reg(name)
                for name in sorted(ctx.all_modes):
                    loop_ctx.mode(name)
                loop_ctx.line("_it = 0")
                loop_ctx.line("while True:")
                with loop_ctx.indented():
                    loop_ctx.line("_it += 1")
                    _walk_plan(target, views, block, loop_ctx, [], [])
                    mode, cond, _label = loop_ctx._branch
                    if mode == "cond":
                        loop_ctx.line(f"if not ({cond}):")
                        with loop_ctx.indented():
                            loop_ctx.line("break")
                    loop_ctx.line(f"budget -= {block.steps}")
                    loop_ctx.line("if budget < 0:")
                    with loop_ctx.indented():
                        loop_ctx.line("break")
                loop_ctx.flush()
                if block.cycles:
                    loop_ctx.line(
                        f"state.cycles += {block.cycles} * _it")
                loop_ctx.line("if budget < 0:")
                with loop_ctx.indented():
                    loop_ctx.line("raise SimulationError(")
                    loop_ctx.line("    f\"exceeded {max_steps} steps; "
                                  "runaway loop?\")")
                loop_ctx.line(f"return {block.next!r}, budget")
            except Exception:
                pass    # keep the plain single-pass block below
            else:
                functions.append(_assemble(
                    number, loop_ctx, "state, budget, max_steps"))
                helpers.update(loop_ctx.helpers)
                loop_blocks.append(number)
                counts["loop_blocks"] += 1
                counts["blocks_emitted"] += 1
                counts["inline_steps"] += inline_steps
                continue

        # Epilogue: flush locals, charge cycles, resolve control flow.
        ctx.flush()
        if block.cycles:
            ctx.line(f"state.cycles += {block.cycles}")
        next_expr = repr(block.next)
        if branch_slot is not None:
            block_step_slots.append(branch_slot)
            ctx.line(f"_lbl = _s{branch_slot}(state)")
            ctx.line("if _lbl is None:")
            with ctx.indented():
                ctx.line(f"return {next_expr}")
            ctx.line("_nx = _LBL.get(_lbl)")
            ctx.line("if _nx is None:")
            with ctx.indented():
                ctx.line("_unknown_label(_lbl)")
            ctx.line("return _nx")
        elif ctx._branch is not None:
            mode, cond, label = ctx._branch
            if label in labels:
                taken = f"return {labels[label]}"
            else:
                taken = f"_unknown_label({label!r})"
            if mode == "always":
                ctx.line(taken)
            else:
                ctx.line(f"if {cond}:")
                with ctx.indented():
                    ctx.line(taken)
                ctx.line(f"return {next_expr}")
        else:
            ctx.line(f"return {next_expr}")

        functions.append(_assemble(number, ctx))
        helpers.update(ctx.helpers)
        step_slots.extend(block_step_slots)
        pre_slots.extend(block_pre_slots)
        counts["blocks_emitted"] += 1
        counts["inline_steps"] += inline_steps
        counts["closure_steps"] += closure_steps

    parts = [_MODULE_HEADER % SOURCE_FORMAT]
    parts.extend(helpers.values())
    parts.append(f"_LBL = {dict(sorted(labels.items()))!r}")
    parts.append(f"_ENTRY = {decoded.entry!r}")
    parts.append(f"_NBLOCKS = {len(decoded.blocks)}")
    parts.append(f"_MEMSIZE = {memsize}")
    parts.append(f"_STEP_SLOTS = {tuple(sorted(set(step_slots)))!r}")
    parts.append(f"_PRE_SLOTS = {tuple(sorted(set(pre_slots)))!r}")
    parts.append(f"_CLOSURE_BLOCKS = {tuple(closure_blocks)!r}")
    parts.append(f"_LOOP_BLOCKS = {tuple(loop_blocks)!r}")
    parts.append(f"_COUNTS = {counts!r}")
    parts.extend(functions)
    return "\n\n".join(parts) + "\n"


def _closure_block(decoded: DecodedProgram, number: int) -> Callable:
    """A degraded block: run its decoded FastMachine closures behind
    the block-function interface (state -> next block index)."""
    block = decoded.blocks[number]
    body = block.body
    branch = block.branch
    cycles = block.cycles
    next_index = block.next
    resolve = decoded.labels.get

    def run_block(state: MachineState) -> Optional[int]:
        for step in body:
            step(state)
        state.cycles += cycles
        if branch is not None:
            label = branch(state)
            if label is not None:
                index = resolve(label)
                if index is None:
                    raise SimulationError(
                        f"branch to unknown label {label!r}")
                return index
        return next_index

    return run_block


def _load(source: str, target: "TargetModel",
          decoded: DecodedProgram, memsize: int) -> JitProgram:
    """Exec generated source and re-inject the run-time pieces the
    source cannot carry: bound closures for fallback slots and decoded
    closure runners for degraded blocks."""
    namespace: Dict[str, object] = {}
    exec(compile(source, "<repro-jit>", "exec"), namespace)
    if namespace.get("_MEMSIZE") != memsize \
            or namespace.get("_NBLOCKS") != len(decoded.blocks):
        raise SimulationError("stale generated source")
    for index in namespace["_STEP_SLOTS"]:
        namespace[f"_s{index}"] = target.bind_step(decoded.views[index])
    for index in namespace["_PRE_SLOTS"]:
        namespace[f"_p{index}"] = target.pre_dispatch(
            decoded.views[index])
    degraded = set(namespace["_CLOSURE_BLOCKS"])
    # Sources generated before self-loop fusion lack _LOOP_BLOCKS; the
    # KeyError lands in _translate's corrupt-fallthrough and the
    # program is regenerated under the current format.
    loops = set(namespace["_LOOP_BLOCKS"])
    fns: List[Callable] = []
    loop_fns: List[Optional[Callable]] = []
    for number in range(len(decoded.blocks)):
        if number in degraded:
            fns.append(_closure_block(decoded, number))
            loop_fns.append(None)
        else:
            fn = namespace[f"_b{number}"]
            fns.append(fn)
            loop_fns.append(fn if number in loops else None)
    for key, value in namespace["_COUNTS"].items():
        _STATS[key] += value
    steps = tuple(block.steps for block in decoded.blocks)
    return JitProgram(fns, steps, decoded.entry, memsize, source,
                      loop_fns)


# ----------------------------------------------------------------------
# Caches: in-process (attached to the decoded program) + persistent
# source store
# ----------------------------------------------------------------------

_FALLBACK = object()

#: bumped by clear_jit_cache() -- attached translations from an older
#: generation are ignored (the decoded programs themselves live in the
#: decode cache, which we cannot enumerate here).
_GENERATION = 0

_STATS = {"hits": 0, "misses": 0, "fallbacks": 0,
          "blocks_emitted": 0, "blocks_closure": 0,
          "inline_steps": 0, "closure_steps": 0, "loop_blocks": 0,
          "source_cache_hits": 0, "source_cache_misses": 0}


def source_key(target: "TargetModel", decoded: DecodedProgram,
               memsize: int) -> str:
    """Persistent-cache key: format + target + code version + the
    decoded instruction views (so fault-injection wrappers, which swap
    opcodes in ``decode_instr``, never share a translation) + labels."""
    from repro.cache.version import code_version
    hasher = hashlib.sha256()
    hasher.update(f"jit:{SOURCE_FORMAT}:{target.name}:"
                  f"{code_version()}:{memsize}\n".encode())
    for view in decoded.views:
        hasher.update(repr(view).encode())
        hasher.update(b"\n")
    hasher.update(repr(sorted(decoded.labels.items())).encode())
    hasher.update(repr(decoded.entry).encode())
    return hasher.hexdigest()


def _translate(target: "TargetModel",
               decoded: DecodedProgram) -> JitProgram:
    from repro.cache import active_cache
    memsize = len(target.initial_state().mem)
    cache = active_cache()
    key = source_key(target, decoded, memsize) if cache else None
    if cache is not None:
        source = cache.get_source(key)
        if source is not None:
            try:
                program = _load(source, target, decoded, memsize)
                _STATS["source_cache_hits"] += 1
                return program
            except Exception:
                pass    # stale or corrupt: regenerate below
    _STATS["source_cache_misses"] += 1
    source = _generate(target, decoded, memsize)
    if cache is not None:
        cache.put_source(key, source)
    return _load(source, target, decoded, memsize)


def translate_cached(target: "TargetModel", code: CodeSeq,
                     decoded: DecodedProgram) -> Optional[JitProgram]:
    """Translated form of ``code`` for ``target``; ``None`` when
    translation failed wholesale (the verdict is cached and the caller
    runs the FastMachine block loop instead).

    The translation rides on ``decoded.jit_entry`` -- the decoded
    program is already cached per (target, code) by the decode cache,
    so this keeps the warm path to one attribute read instead of two
    weak-dictionary probes.
    """
    entry = decoded.jit_entry
    if entry is not None and entry[0] == _GENERATION:
        _STATS["hits"] += 1
        cached = entry[1]
        return None if cached is _FALLBACK else cached
    _STATS["misses"] += 1
    try:
        program = _translate(target, decoded)
    except Exception:
        _STATS["fallbacks"] += 1
        decoded.jit_entry = (_GENERATION, _FALLBACK)
        return None
    decoded.jit_entry = (_GENERATION, program)
    return program


def clear_jit_cache() -> None:
    """Drop every translated program and reset the stat counters."""
    global _GENERATION
    _GENERATION += 1
    for key in _STATS:
        _STATS[key] = 0


def jit_cache_stats() -> Dict[str, int]:
    """Copy of the translation/cache counters (diagnostics)."""
    return dict(_STATS)


# ----------------------------------------------------------------------
# The machine front-end
# ----------------------------------------------------------------------

class JitMachine:
    """Executes finalized code via generated per-block functions.

    Drop-in replacement for :class:`FastMachine` (same constructor,
    same ``run`` contract, bit-identical results and cycle counts);
    degrades to the fast simulator's closure blocks, and through it to
    the reference interpreter, whenever specialization is unsound.
    """

    def __init__(self, target: "TargetModel",
                 max_steps: int = 2_000_000):
        self.target = target
        self.max_steps = max_steps

    def run(self, code: CodeSeq,
            state: Optional[MachineState] = None,
            trace: Optional[Trace] = None) -> MachineState:
        """Execute finalized code to completion; returns the state."""
        if state is None:
            state = self.target.initial_state()
        if trace is not None:
            return Machine(self.target, self.max_steps).run(
                code, state, trace)
        decoded = decode_cached(self.target, code)
        if decoded is None:
            return Machine(self.target, self.max_steps).run(code, state)
        program = translate_cached(self.target, code, decoded)
        if program is None or len(state.mem) != program.memsize:
            return FastMachine(self.target, self.max_steps).run_decoded(
                decoded, state)
        return self.run_translated(program, state)

    def run_translated(self, program: JitProgram,
                       state: MachineState) -> MachineState:
        """The block-chaining inner loop over generated functions."""
        fns = program.fns
        loop_fns = program.loop_fns
        steps = program.steps
        budget = self.max_steps
        max_steps = self.max_steps
        index = program.entry
        while index is not None:
            budget -= steps[index]
            if budget < 0:
                raise SimulationError(
                    f"exceeded {max_steps} steps; runaway loop?")
            lf = loop_fns[index]
            if lf is None:
                index = fns[index](state)
            else:
                # Self-loop block: the generated ``while`` covers every
                # iteration after the first (the runner already charged
                # iteration one above).
                index, budget = lf(state, budget, max_steps)
        return state
