"""Instruction-set simulation substrate.

The paper's authors measured real silicon (a TI TMS320C25 board); this
package is our substitution: a cycle-counting instruction-set simulator
driven entirely by the explicit target model.  It gives the repository
two things the paper's testbed gave the authors:

- ground truth that generated code *works* (every compiled DSPStone
  kernel is executed and compared bit-exactly against the MiniDFL
  reference interpreter), and
- the words/cycles numbers that the benchmark harness reports.
"""

from repro.sim.decode import (DecodedProgram, clear_decode_cache, decode,
                              decode_cache_stats, decode_cached)
from repro.sim.fastmachine import FastMachine
from repro.sim.machine import Machine, MachineState, SimulationError
from repro.sim.trace import Trace, TraceEntry

__all__ = ["DecodedProgram", "FastMachine", "Machine", "MachineState",
           "SimulationError", "Trace", "TraceEntry",
           "clear_decode_cache", "decode", "decode_cache_stats",
           "decode_cached"]
