"""Translation caching: decode finalized code once, run it many times.

The reference :class:`~repro.sim.machine.Machine` re-dispatches every
executed instruction through the target's handler registry and
re-extracts operands on every step.  For the evaluation harnesses
(Table 1 cycle counts, DSPStone bit-exactness sweeps, the self-test
corpus) the same program runs thousands of times, so this module
performs the per-instruction work *once*:

- each :class:`AsmInstr` is bound to a ``step(state)`` closure with
  opcode dispatch and operand decoding already resolved (the target's
  ``bind_step`` hook -- see the ``@binder`` registry);
- instructions are grouped into **basic blocks** (leaders: program
  entry, label targets, branch successors), with label targets resolved
  to block indices and per-block cycle/step totals precomputed;
- TC25-style hardware repeat (``RPTK n ; X``) is fused at decode time
  into a single step that runs X's closure n+1 times -- the repeat
  count is an immediate, so cycles and step budget stay static;
- decoded programs are cached per ``(target, code)`` identity in
  weak-key maps, so repeated invocations (``cycles_of``, ``run_many``,
  the selftest corpus) skip decoding entirely.

Anything the block decoder cannot specialize soundly (a repeat armer at
a block boundary, a repeat of a branch) raises :class:`DecodeFallback`
and the :class:`~repro.sim.fastmachine.FastMachine` transparently runs
the reference interpreter instead -- behaviour is defined in exactly
one place, the target's ``@semantics`` registry, either way.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.codegen.asm import AsmInstr, CodeSeq, Label
from repro.sim.machine import SimulationError

if TYPE_CHECKING:   # pragma: no cover
    from repro.targets.model import TargetModel


class DecodeFallback(Exception):
    """The program contains a shape the block decoder does not
    specialize; run the reference interpreter instead."""


class DecodedBlock:
    """One basic block: straight-line bound steps + optional branch.

    ``cycles`` and ``steps`` are the block's static totals (hardware
    repeats included), charged once per block execution.

    ``plan`` records the structural recipe behind ``body``/``branch``
    as literal tuples -- ``("step", i)`` for instruction ``i``,
    ``("repeat", armer, repeated, count)`` for a fused hardware repeat,
    ``("branch", i)`` for the terminating branch -- so downstream
    translators (the source-generating JIT tier) can re-specialize the
    same block structure without re-deriving it.
    """

    __slots__ = ("body", "branch", "cycles", "steps", "next", "plan")

    def __init__(self, body: Tuple[Callable, ...],
                 branch: Optional[Callable], cycles: int, steps: int,
                 next_index: Optional[int],
                 plan: Tuple[Tuple, ...] = ()):
        self.body = body
        self.branch = branch
        self.cycles = cycles
        self.steps = steps
        self.next = next_index
        self.plan = plan


class DecodedProgram:
    """A finalized :class:`CodeSeq` decoded into chained basic blocks.

    ``table`` is the run-time form: one ``(body, branch, cycles, steps,
    next)`` tuple per block, so the inner loop pays a single unpack
    instead of five attribute reads.  ``blocks`` keeps the structured
    form for introspection and tests; ``views`` the per-instruction
    decoded views (post ``decode_instr``), in program order, for
    translators that re-specialize the blocks.
    """

    __slots__ = ("blocks", "labels", "entry", "table", "views",
                 "jit_entry", "__weakref__")

    def __init__(self, blocks: List[DecodedBlock],
                 labels: Dict[str, int], entry: Optional[int],
                 views: Tuple[AsmInstr, ...] = ()):
        self.blocks = blocks
        self.labels = labels
        self.entry = entry
        self.views = views
        # (generation, JitProgram-or-sentinel) attached by
        # repro.sim.jit.translate_cached; lives and dies with the
        # decoded program so the warm path is one attribute read.
        self.jit_entry = None
        self.table = tuple((b.body, b.branch, b.cycles, b.steps, b.next)
                           for b in blocks)


def decode(target: "TargetModel", code: CodeSeq) -> DecodedProgram:
    """Decode finalized code into basic blocks of bound closures.

    Raises :class:`SimulationError` for malformed code (the same cases
    the reference interpreter rejects: duplicate labels, unfinalized
    items) and :class:`DecodeFallback` for shapes the block runner does
    not specialize.
    """
    instructions: List[AsmInstr] = []
    labels_at: Dict[str, int] = {}
    for item in code:
        if isinstance(item, Label):
            if item.name in labels_at:
                raise SimulationError(f"duplicate label {item.name!r}")
            labels_at[item.name] = len(instructions)
        elif isinstance(item, AsmInstr):
            instructions.append(item)
        else:
            raise SimulationError(
                f"unfinalized item in code: {item.render()}")

    # The view is what the target wants simulated (fault-injection
    # wrappers swap opcodes here); all further decisions use it.
    views = [target.decode_instr(instr) for instr in instructions]
    branch_flags = [target.is_branch(view) for view in views]

    # Block leaders: entry, every label target, every branch successor.
    leaders = {0, len(instructions)}
    leaders.update(labels_at.values())
    for index, flag in enumerate(branch_flags):
        if flag:
            leaders.add(index + 1)
    boundaries = sorted(leaders)
    block_of_instr = {start: number
                      for number, start in enumerate(boundaries[:-1])}

    blocks: List[DecodedBlock] = []
    for number, start in enumerate(boundaries[:-1]):
        end = boundaries[number + 1]
        body: List[Callable] = []
        branch_fn: Optional[Callable] = None
        plan: List[Tuple] = []
        cycles = 0
        steps = 0
        index = start
        while index < end:
            view = views[index]
            repeat = target.static_repeat(view)
            if repeat is not None:
                if index + 1 >= end:
                    raise DecodeFallback(
                        "repeat armer at a block boundary")
                repeated = views[index + 1]
                if branch_flags[index + 1] \
                        or target.static_repeat(repeated) is not None:
                    raise DecodeFallback("unsupported repeat target")
                body.append(_fuse_repeat(target, repeated, repeat))
                plan.append(("repeat", index, index + 1, repeat))
                cycles += view.cycles + repeat * repeated.cycles
                steps += 1 + repeat
                index += 2
                continue
            step = target.bind_step(view)
            pre = target.pre_dispatch(view)
            if branch_flags[index]:
                # by leader construction a branch is always last
                branch_fn = step if pre is None \
                    else _with_pre(pre, step)
                plan.append(("branch", index))
            else:
                body.append(step if pre is None
                            else _with_pre(pre, step))
                plan.append(("step", index))
            cycles += view.cycles
            steps += 1
            index += 1
        next_index = number + 1 if end < len(instructions) else None
        blocks.append(DecodedBlock(tuple(body), branch_fn, cycles,
                                   steps, next_index, tuple(plan)))

    # Labels pointing past the last instruction (a branch there simply
    # terminates) resolve to an empty terminal block.
    terminal = len(blocks)
    blocks.append(DecodedBlock((), None, 0, 0, None))
    labels = {name: block_of_instr.get(target_index, terminal)
              for name, target_index in labels_at.items()}
    entry = 0 if instructions else None
    return DecodedProgram(blocks, labels, entry, tuple(views))


def _with_pre(pre: Callable, step: Callable) -> Callable:
    def combined(state):
        pre(state)
        return step(state)
    return combined


def _fuse_repeat(target: "TargetModel", repeated: AsmInstr,
                 repeat: int) -> Callable:
    """``RPTK n ; X`` as one step: X's closure run ``n + 1`` times.

    The armer's own semantics (loading the repeat counter) are elided:
    the counter is consumed in full by the fused loop, exactly as the
    reference interpreter leaves it (zero).
    """
    inner = target.bind_step(repeated)
    pre = target.pre_dispatch(repeated)
    if pre is None:
        def fused(state):
            for _ in range(repeat):
                inner(state)
    else:
        def fused(state):
            pre(state)
            for _ in range(repeat):
                inner(state)
    return fused


# ----------------------------------------------------------------------
# The decode cache
# ----------------------------------------------------------------------
#
# Two-level weak-key map: target instance -> (CodeSeq -> entry).  Both
# keys are held weakly, so dropping a compiled program (or a transient
# FaultySim wrapper) frees its decoded form automatically.  Keying on
# the *code object's identity* is sound because finalized CodeSeqs are
# never mutated after compilation (and a FaultySim is a distinct target
# key, so its opcode-swapped decode never collides with the clean one).

_FALLBACK = object()

_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_STATS = {"hits": 0, "misses": 0, "fallbacks": 0}


def decode_cached(target: "TargetModel",
                  code: CodeSeq) -> Optional[DecodedProgram]:
    """Decoded form of ``code`` for ``target``; ``None`` when the
    program needs the reference interpreter (the fallback verdict is
    cached too).  Malformed code raises, uncached."""
    per_target = _CACHE.get(target)
    if per_target is None:
        per_target = weakref.WeakKeyDictionary()
        _CACHE[target] = per_target
    entry = per_target.get(code)
    if entry is not None:
        _STATS["hits"] += 1
        return None if entry is _FALLBACK else entry
    _STATS["misses"] += 1
    try:
        decoded = decode(target, code)
    except DecodeFallback:
        _STATS["fallbacks"] += 1
        per_target[code] = _FALLBACK
        return None
    per_target[code] = decoded
    return decoded


def clear_decode_cache() -> None:
    """Drop every cached decoded program and reset the stat counters
    (tests and benchmarks).  Also clears the JIT tier's translated
    programs and stats: a decoded form is the JIT's input, so the two
    caches are only ever valid together."""
    _CACHE.clear()
    _STATS.update(hits=0, misses=0, fallbacks=0)
    from repro.sim import jit      # local import: jit imports decode
    jit.clear_jit_cache()


def decode_cache_stats() -> Dict[str, int]:
    """Copy of the hit/miss/fallback counters (diagnostics)."""
    return dict(_STATS)
