"""Run compiled programs against symbol-level environments.

Bridges the gap between the IR world (environments mapping symbol names
to values) and the machine world (flat data memory): writes inputs into
memory according to the compiled memory map, loads program-memory
coefficient tables, executes, and reads every program symbol back.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.codegen.compiled import CompiledProgram
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.fastmachine import FastMachine
from repro.sim.jit import JitMachine
from repro.sim.machine import Machine, MachineState, SimulationError
from repro.sim.trace import Trace

#: simulator tiers selectable via the ``sim=`` keyword, fastest first.
SIM_TIERS = {"jit": JitMachine, "fast": FastMachine,
             "reference": Machine}


def _resolve_sim(sim: Optional[str], fast_sim: bool):
    """Map the tier selector (plus the legacy ``fast_sim`` flag) to a
    machine class.  ``sim`` wins when given; otherwise ``fast_sim=True``
    selects the default jit tier and ``False`` the reference
    interpreter."""
    if sim is None:
        sim = "jit" if fast_sim else "reference"
    try:
        return SIM_TIERS[sim]
    except KeyError:
        raise ValueError(
            f"unknown simulator tier {sim!r}; "
            f"choose from {sorted(SIM_TIERS)}") from None


def load_environment(compiled: CompiledProgram,
                     env: Mapping[str, object],
                     state: MachineState) -> None:
    """Write an environment into machine data memory (values wrapped to
    the target word width) and load program-memory tables."""
    fpc = compiled.target.fpc
    for symbol, base in compiled.memory_map.addresses.items():
        if symbol not in env:
            continue
        value = env[symbol]
        size = compiled.memory_map.sizes[symbol]
        if isinstance(value, list):
            if len(value) != size:
                raise ValueError(
                    f"{symbol!r}: got {len(value)} values, need {size}")
            for offset, element in enumerate(value):
                state.store(base + offset, fpc.wrap(int(element)))
        else:
            if size != 1:
                raise ValueError(f"{symbol!r} is an array; pass a list")
            state.store(base, fpc.wrap(int(value)))
    for table in compiled.pmem_tables:
        if table.symbol not in env:
            raise ValueError(
                f"program-memory table {table.label} needs input "
                f"{table.symbol!r}")
        values = [fpc.wrap(int(v)) for v in env[table.symbol]]
        state.pmem_tables[table.label] = table.build(values)


def read_environment(compiled: CompiledProgram,
                     state: MachineState) -> Dict[str, object]:
    """Read every mapped program symbol back out of data memory."""
    result: Dict[str, object] = {}
    for symbol, base in compiled.memory_map.addresses.items():
        size = compiled.memory_map.sizes[symbol]
        if symbol in compiled.symbols and compiled.symbols[symbol].is_array:
            result[symbol] = [state.load(base + k) for k in range(size)]
        else:
            result[symbol] = state.load(base)
    return result


def run_compiled(compiled: CompiledProgram,
                 env: Mapping[str, object],
                 state: Optional[MachineState] = None,
                 trace: Optional[Trace] = None,
                 max_steps: int = 2_000_000,
                 fast_sim: bool = True,
                 sim: Optional[str] = None
                 ) -> Tuple[Dict[str, object], MachineState]:
    """Execute one invocation; returns (environment after, state).

    ``sim`` selects the simulator tier: ``"jit"`` (the source-generating
    default -- bit-identical environments and cycle counts), ``"fast"``
    (pre-bound closures), or ``"reference"``.  The legacy ``fast_sim``
    flag is honoured when ``sim`` is not given (``False`` means the
    reference interpreter).  Requesting a trace always uses the
    reference interpreter.
    """
    if state is None:
        state = compiled.target.initial_state()
    load_environment(compiled, env, state)
    machine_cls = _resolve_sim(sim, fast_sim)
    if machine_cls is Machine or trace is not None:
        Machine(compiled.target, max_steps=max_steps).run(
            compiled.code, state, trace)
    else:
        machine_cls(compiled.target, max_steps=max_steps).run(
            compiled.code, state)
    return read_environment(compiled, state), state


def run_many(compiled: CompiledProgram,
             envs: Iterable[Mapping[str, object]],
             max_steps: int = 2_000_000,
             fast_sim: bool = True,
             target=None,
             sim: Optional[str] = None
             ) -> List[Tuple[Dict[str, object], MachineState]]:
    """Execute one compiled program over a batch of environments.

    Decodes (or reuses the cached decoded form of) the program once and
    runs every environment against it on a fresh machine state; this is
    the bulk-validation entry point for the self-test signature corpus,
    conformance checking, Table 1 evaluation and DSPStone reference
    sweeps.

    ``target`` substitutes a different execution model for the one the
    program was compiled against -- a :class:`FaultySim` wrapper or any
    other compatible :class:`TargetModel`.  The substitute is a distinct
    decode-cache key, so faulty runs never pollute clean cached decodes.

    ``sim`` selects the tier exactly as in :func:`run_compiled`.
    """
    use_target = target if target is not None else compiled.target
    machine = _resolve_sim(sim, fast_sim)(use_target,
                                          max_steps=max_steps)
    results: List[Tuple[Dict[str, object], MachineState]] = []
    for env in envs:
        state = use_target.initial_state()
        load_environment(compiled, env, state)
        machine.run(compiled.code, state)
        results.append((read_environment(compiled, state), state))
    return results


def cycles_of(compiled: CompiledProgram,
              env: Mapping[str, object],
              fast_sim: bool = True,
              sim: Optional[str] = None) -> int:
    """Cycle count of one invocation (fresh machine)."""
    _, state = run_compiled(compiled, env, fast_sim=fast_sim, sim=sim)
    return state.cycles
