"""Run compiled programs against symbol-level environments.

Bridges the gap between the IR world (environments mapping symbol names
to values) and the machine world (flat data memory): writes inputs into
memory according to the compiled memory map, loads program-memory
coefficient tables, executes, and reads every program symbol back.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.codegen.compiled import CompiledProgram
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.machine import Machine, MachineState, SimulationError
from repro.sim.trace import Trace


def load_environment(compiled: CompiledProgram,
                     env: Mapping[str, object],
                     state: MachineState) -> None:
    """Write an environment into machine data memory (values wrapped to
    the target word width) and load program-memory tables."""
    fpc = compiled.target.fpc
    for symbol, base in compiled.memory_map.addresses.items():
        if symbol not in env:
            continue
        value = env[symbol]
        size = compiled.memory_map.sizes[symbol]
        if isinstance(value, list):
            if len(value) != size:
                raise ValueError(
                    f"{symbol!r}: got {len(value)} values, need {size}")
            for offset, element in enumerate(value):
                state.store(base + offset, fpc.wrap(int(element)))
        else:
            if size != 1:
                raise ValueError(f"{symbol!r} is an array; pass a list")
            state.store(base, fpc.wrap(int(value)))
    for table in compiled.pmem_tables:
        if table.symbol not in env:
            raise ValueError(
                f"program-memory table {table.label} needs input "
                f"{table.symbol!r}")
        values = [fpc.wrap(int(v)) for v in env[table.symbol]]
        state.pmem_tables[table.label] = table.build(values)


def read_environment(compiled: CompiledProgram,
                     state: MachineState) -> Dict[str, object]:
    """Read every mapped program symbol back out of data memory."""
    result: Dict[str, object] = {}
    for symbol, base in compiled.memory_map.addresses.items():
        size = compiled.memory_map.sizes[symbol]
        if symbol in compiled.symbols and compiled.symbols[symbol].is_array:
            result[symbol] = [state.load(base + k) for k in range(size)]
        else:
            result[symbol] = state.load(base)
    return result


def run_compiled(compiled: CompiledProgram,
                 env: Mapping[str, object],
                 state: Optional[MachineState] = None,
                 trace: Optional[Trace] = None,
                 max_steps: int = 2_000_000
                 ) -> Tuple[Dict[str, object], MachineState]:
    """Execute one invocation; returns (environment after, state)."""
    if state is None:
        state = compiled.target.initial_state()
    load_environment(compiled, env, state)
    Machine(compiled.target, max_steps=max_steps).run(
        compiled.code, state, trace)
    return read_environment(compiled, state), state


def cycles_of(compiled: CompiledProgram,
              env: Mapping[str, object]) -> int:
    """Cycle count of one invocation (fresh machine)."""
    _, state = run_compiled(compiled, env)
    return state.cycles
