"""The translation-caching simulator front-end.

:class:`FastMachine` is a drop-in replacement for the reference
:class:`~repro.sim.machine.Machine`: same constructor, same ``run``
contract, bit-identical architectural results and cycle counts.  It
runs the pre-decoded block form from :mod:`repro.sim.decode` and falls
back to the reference interpreter whenever that is the right tool:

- a trace was requested (tracing wants per-instruction bookkeeping the
  block runner deliberately avoids);
- the decoder raised :class:`DecodeFallback` (a shape the block
  specializer does not handle, e.g. ``RPTK`` as the last instruction).

The step budget is charged per *iteration* (hardware repeats included)
in whole-block units before the block executes, so a runaway repeat
count trips the guard exactly like the reference interpreter's.

Scratch dispatch registers (TC25's ``mac_idx``/``rptc``) are not
architectural state: the reference interpreter clears them eagerly on
every dispatch, the fast simulator only when an instruction actually
reads them.  Everything a program can observe -- memory, architectural
registers, mode bits, cycle counts, raised errors -- is identical.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.codegen.asm import CodeSeq
from repro.sim.decode import DecodedProgram, decode_cached
from repro.sim.machine import Machine, MachineState, SimulationError
from repro.sim.trace import Trace

if TYPE_CHECKING:   # pragma: no cover
    from repro.targets.model import TargetModel


class FastMachine:
    """Executes finalized code via cached pre-decoded basic blocks."""

    def __init__(self, target: "TargetModel",
                 max_steps: int = 2_000_000):
        self.target = target
        self.max_steps = max_steps

    def run(self, code: CodeSeq,
            state: Optional[MachineState] = None,
            trace: Optional[Trace] = None) -> MachineState:
        """Execute finalized code to completion; returns the state."""
        if state is None:
            state = self.target.initial_state()
        if trace is not None:
            return Machine(self.target, self.max_steps).run(
                code, state, trace)
        decoded = decode_cached(self.target, code)
        if decoded is None:
            return Machine(self.target, self.max_steps).run(code, state)
        return self.run_decoded(decoded, state)

    def run_decoded(self, decoded: DecodedProgram,
                    state: MachineState) -> MachineState:
        """The block-chaining inner loop (all per-run state in locals)."""
        table = decoded.table
        resolve = decoded.labels.get
        budget = self.max_steps
        index = decoded.entry
        while index is not None:
            body, branch, cycles, steps, index = table[index]
            budget -= steps
            if budget < 0:
                raise SimulationError(
                    f"exceeded {self.max_steps} steps; runaway loop?")
            for step in body:
                step(state)
            state.cycles += cycles
            if branch is not None:
                label = branch(state)
                if label is not None:
                    index = resolve(label)
                    if index is None:
                        raise SimulationError(
                            f"branch to unknown label {label!r}")
        return state
