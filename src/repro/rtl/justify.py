"""Control-requirement justification.

Fig. 3 of the paper: traversing a netlist collects, besides the data
transformation, "the control requirements (e.g. set ALU input to '0' to
perform an add).  Control requirements have to be met by proper
conditions for instruction bits, which can be found by justification."

:func:`justify_value` computes every assignment of instruction fields
that forces a control input port to a required value, propagating
backwards through constants, instruction fields and (control) muxes.
Conflicting requirements prune alternatives; an empty result means the
requirement is unjustifiable (the datapath cannot be steered that way).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.rtl.components import Constant, InstructionField, Mux
from repro.rtl.netlist import Netlist, Port

BitAssignment = Dict[str, int]


class JustificationError(Exception):
    """A control requirement cannot be satisfied by any bit assignment."""


def merge_assignments(first: BitAssignment,
                      second: BitAssignment) -> Optional[BitAssignment]:
    """Union of two bit assignments, or None on conflict."""
    merged = dict(first)
    for name, value in second.items():
        if merged.get(name, value) != value:
            return None
        merged[name] = value
    return merged


def justify_value(netlist: Netlist, sink: Port, value: int,
                  limit: int = 64) -> List[BitAssignment]:
    """All field assignments forcing input port ``sink`` to ``value``.

    ``limit`` caps the number of alternatives explored (mux fan-in can
    multiply them).
    """
    driver = netlist.driver_of(sink)
    if driver is None:
        raise JustificationError(f"{sink} is undriven")
    return _justify_output(netlist, driver, value, limit)


def _justify_output(netlist: Netlist, port: Port, value: int,
                    limit: int) -> List[BitAssignment]:
    component = port.component
    if isinstance(component, InstructionField):
        if 0 <= value <= component.max_value:
            return [{component.name: value}]
        return []
    if isinstance(component, Constant):
        return [{}] if component.value == value else []
    if isinstance(component, Mux):
        alternatives: List[BitAssignment] = []
        for index in range(component.inputs):
            selector_options = justify_value(
                netlist, Port(component, "sel"), index, limit)
            if not selector_options:
                continue
            input_options = justify_value(
                netlist, Port(component, f"in{index}"), value, limit)
            for selector_bits in selector_options:
                for input_bits in input_options:
                    merged = merge_assignments(selector_bits, input_bits)
                    if merged is not None:
                        alternatives.append(merged)
                        if len(alternatives) >= limit:
                            return alternatives
        return alternatives
    # Data-path components (ALUs, storages) cannot be steered to a
    # constant by bit assignment in this model.
    return []
