"""Netlist construction and bit-true simulation.

A :class:`Netlist` owns components and point-to-point connections
(each input port has exactly one driver; an output may fan out).  The
simulator (:meth:`Netlist.step`) evaluates one instruction cycle:
combinational values propagate from storage outputs / constants /
instruction fields through ALUs and muxes, then all enabled storage
writes commit simultaneously -- exactly the semantics the instruction-
set extractor assumes, which is what the ISE property tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ir.fixedpoint import FixedPointContext
from repro.rtl.components import (
    Alu, Component, Constant, InstructionField, Memory, Mux, Register,
    RegisterFile,
)


class NetlistError(Exception):
    """Structural problem: dangling input, double driver, bad port."""


@dataclass(frozen=True)
class Port:
    """A (component, port-name) endpoint."""

    component: Component
    name: str

    def __str__(self) -> str:
        return f"{self.component.name}.{self.name}"


@dataclass
class StorageState:
    """Run-time contents of the netlist's storages."""

    registers: Dict[str, int]
    register_files: Dict[str, List[int]]
    memories: Dict[str, List[int]]

    def copy(self) -> "StorageState":
        """Deep copy (mutating the copy leaves the original intact)."""
        return StorageState(
            registers=dict(self.registers),
            register_files={k: list(v)
                            for k, v in self.register_files.items()},
            memories={k: list(v) for k, v in self.memories.items()})


class Netlist:
    """A named set of components plus input-port driver connections."""

    def __init__(self, name: str, word_bits: int = 16):
        self.name = name
        self.word_bits = word_bits
        self.fpc = FixedPointContext(word_bits)
        self.components: Dict[str, Component] = {}
        # input Port -> driving output Port
        self._driver: Dict[Tuple[str, str], Port] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, component: Component) -> Component:
        """Register a component; duplicate names are an error."""
        if component.name in self.components:
            raise NetlistError(
                f"component {component.name!r} added twice")
        self.components[component.name] = component
        return component

    def connect(self, source: Port, sink: Port) -> None:
        """Drive input ``sink`` from output ``source``."""
        source_spec = source.component.port_spec(source.name)
        sink_spec = sink.component.port_spec(sink.name)
        if source_spec.direction != "out":
            raise NetlistError(f"{source} is not an output")
        if sink_spec.direction != "in":
            raise NetlistError(f"{sink} is not an input")
        key = (sink.component.name, sink.name)
        if key in self._driver:
            raise NetlistError(f"{sink} already driven by "
                               f"{self._driver[key]}")
        self._driver[key] = source

    def port(self, component_name: str, port_name: str) -> Port:
        """Convenience Port constructor with existence checks."""
        component = self.components[component_name]
        component.port_spec(port_name)
        return Port(component, port_name)

    def driver_of(self, sink: Port) -> Optional[Port]:
        """The output port driving input ``sink``, if connected."""
        return self._driver.get((sink.component.name, sink.name))

    def validate(self) -> None:
        """Every input port of every component must be driven."""
        for component in self.components.values():
            for spec in component.ports.values():
                if spec.direction != "in":
                    continue
                if (component.name, spec.name) not in self._driver:
                    raise NetlistError(
                        f"{component.name}.{spec.name} is undriven")

    # -- inventory -------------------------------------------------------

    def storages(self) -> List[Component]:
        """All storage components (registers, register files, memories)."""
        return [c for c in self.components.values() if c.is_storage]

    def instruction_fields(self) -> List[InstructionField]:
        """All instruction-field components (the control knobs)."""
        return [c for c in self.components.values()
                if isinstance(c, InstructionField)]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def initial_storage(self) -> StorageState:
        """Zeroed contents for every storage in the netlist."""
        registers, register_files, memories = {}, {}, {}
        for component in self.components.values():
            if isinstance(component, Register):
                registers[component.name] = 0
            elif isinstance(component, RegisterFile):
                register_files[component.name] = [0] * component.size
            elif isinstance(component, Memory):
                memories[component.name] = [0] * component.size
        return StorageState(registers, register_files, memories)

    def step(self, storage: StorageState,
             fields: Mapping[str, int]) -> StorageState:
        """Execute one instruction cycle bit-true.

        ``fields`` assigns a value to every instruction field; returns
        the next storage state (writes commit simultaneously).
        """
        for field in self.instruction_fields():
            if field.name not in fields:
                raise NetlistError(
                    f"instruction field {field.name!r} unassigned")
            value = fields[field.name]
            if not 0 <= value <= field.max_value:
                raise NetlistError(
                    f"{field.name} = {value} exceeds {field.width} bits")
        cache: Dict[Tuple[str, str], int] = {}
        busy: set = set()

        def output_value(port: Port) -> int:
            key = (port.component.name, port.name)
            if key in cache:
                return cache[key]
            if key in busy:
                raise NetlistError(
                    f"combinational cycle through {port}")
            busy.add(key)
            value = self._evaluate_output(port, storage, fields,
                                          input_value)
            busy.discard(key)
            cache[key] = value
            return value

        def input_value(sink: Port) -> int:
            driver = self.driver_of(sink)
            if driver is None:
                raise NetlistError(f"{sink} is undriven")
            return output_value(driver)

        next_storage = storage.copy()
        for component in self.storages():
            if isinstance(component, Register):
                if input_value(Port(component, "load")) == 1:
                    next_storage.registers[component.name] = \
                        self.fpc.wrap(input_value(Port(component, "in")))
            elif isinstance(component, RegisterFile):
                if input_value(Port(component, "we")) == 1:
                    address = input_value(Port(component, "waddr"))
                    self._check_address(component.name, address,
                                        component.size)
                    next_storage.register_files[component.name][address] \
                        = self.fpc.wrap(input_value(Port(component, "in")))
            elif isinstance(component, Memory):
                if input_value(Port(component, "we")) == 1:
                    address = input_value(Port(component, "addr"))
                    self._check_address(component.name, address,
                                        component.size)
                    next_storage.memories[component.name][address] = \
                        self.fpc.wrap(input_value(Port(component, "in")))
        return next_storage

    def _check_address(self, name: str, address: int, size: int) -> None:
        if not 0 <= address < size:
            raise NetlistError(
                f"{name}: address {address} out of range (size {size})")

    def _evaluate_output(self, port: Port, storage: StorageState,
                         fields: Mapping[str, int],
                         input_value) -> int:
        component = port.component
        if isinstance(component, InstructionField):
            return fields[component.name]
        if isinstance(component, Constant):
            return component.value
        if isinstance(component, Register):
            return storage.registers[component.name]
        if isinstance(component, RegisterFile):
            address = input_value(Port(component, "raddr"))
            self._check_address(component.name, address, component.size)
            return storage.register_files[component.name][address]
        if isinstance(component, Memory):
            address = input_value(Port(component, "addr"))
            self._check_address(component.name, address, component.size)
            return storage.memories[component.name][address]
        if isinstance(component, Alu):
            code = input_value(Port(component, "ctl"))
            if code not in component.operations:
                raise NetlistError(
                    f"{component.name}: undefined ALU code {code}")
            operator = component.operations[code]
            a = input_value(Port(component, "a"))
            if operator.arity == 1:
                return self.fpc.wrap(self.fpc.apply(operator, a))
            b = input_value(Port(component, "b"))
            return self.fpc.wrap(self.fpc.apply(operator, a, b))
        if isinstance(component, Mux):
            selector = input_value(Port(component, "sel"))
            if not 0 <= selector < component.inputs:
                raise NetlistError(
                    f"{component.name}: mux select {selector} out of "
                    f"range")
            return input_value(Port(component, f"in{selector}"))
        raise NetlistError(
            f"cannot evaluate output of {component!r}")
