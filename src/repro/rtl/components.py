"""RT component library.

Every component declares typed ports; data ports carry machine words,
control ports carry small selector values.  The instruction-set
extractor reasons over these components symbolically, and the netlist
simulator evaluates them bit-true.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.ops import OPS, Op


@dataclass(frozen=True)
class PortSpec:
    """A port declaration: name plus direction/kind."""

    name: str
    direction: str       # "in" | "out"
    kind: str = "data"   # "data" | "control"

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise ValueError(f"bad port direction {self.direction!r}")
        if self.kind not in ("data", "control"):
            raise ValueError(f"bad port kind {self.kind!r}")


class Component:
    """Base class: a named component with declared ports."""

    def __init__(self, name: str, ports: List[PortSpec]):
        self.name = name
        self.ports: Dict[str, PortSpec] = {}
        for spec in ports:
            if spec.name in self.ports:
                raise ValueError(
                    f"{name}: duplicate port {spec.name!r}")
            self.ports[spec.name] = spec

    def port_spec(self, port: str) -> PortSpec:
        """The declaration of port ``port`` (KeyError with hints)."""
        try:
            return self.ports[port]
        except KeyError:
            raise KeyError(f"{self.name} has no port {port!r}; "
                           f"ports: {sorted(self.ports)}")

    @property
    def is_storage(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class InstructionField(Component):
    """A bit field of the instruction word (output only).

    Fields are both the *control* knobs justification assigns (opcode
    bits, mux selectors) and the *operand* slots of extracted patterns
    (register numbers, memory addresses, immediates).
    """

    def __init__(self, name: str, width: int):
        if width < 1:
            raise ValueError(f"field {name}: width must be >= 1")
        super().__init__(name, [PortSpec("out", "out", "control")])
        self.width = width

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1


class Constant(Component):
    """A hard-wired constant."""

    def __init__(self, name: str, value: int):
        super().__init__(name, [PortSpec("out", "out", "control")])
        self.value = value


class Register(Component):
    """A single word register with a load enable.

    Ports: ``in`` (data), ``out`` (data), ``load`` (control; the
    register keeps its value unless load == 1).
    """

    def __init__(self, name: str):
        super().__init__(name, [
            PortSpec("in", "in", "data"),
            PortSpec("out", "out", "data"),
            PortSpec("load", "in", "control"),
        ])

    @property
    def is_storage(self) -> bool:
        return True


class RegisterFile(Component):
    """A register file with one read and one write port.

    Ports: ``in``, ``out`` (data); ``raddr``, ``waddr``, ``we``
    (control).
    """

    def __init__(self, name: str, size: int):
        if size < 1:
            raise ValueError(f"register file {name}: size must be >= 1")
        super().__init__(name, [
            PortSpec("in", "in", "data"),
            PortSpec("out", "out", "data"),
            PortSpec("raddr", "in", "control"),
            PortSpec("waddr", "in", "control"),
            PortSpec("we", "in", "control"),
        ])
        self.size = size

    @property
    def is_storage(self) -> bool:
        return True


class Memory(Component):
    """A data memory with one read and one write port (address shared).

    Ports: ``in``, ``out`` (data); ``addr``, ``we`` (control).
    """

    def __init__(self, name: str, size: int):
        if size < 1:
            raise ValueError(f"memory {name}: size must be >= 1")
        super().__init__(name, [
            PortSpec("in", "in", "data"),
            PortSpec("out", "out", "data"),
            PortSpec("addr", "in", "control"),
            PortSpec("we", "in", "control"),
        ])
        self.size = size

    @property
    def is_storage(self) -> bool:
        return True


class Alu(Component):
    """A functional unit supporting a set of IR operators.

    ``operations`` maps control codes to operator names; unary
    operators ignore port ``b``.  Ports: ``a``, ``b`` (data), ``ctl``
    (control), ``out`` (data).
    """

    def __init__(self, name: str, operations: Dict[int, str]):
        super().__init__(name, [
            PortSpec("a", "in", "data"),
            PortSpec("b", "in", "data"),
            PortSpec("ctl", "in", "control"),
            PortSpec("out", "out", "data"),
        ])
        if not operations:
            raise ValueError(f"ALU {name}: needs at least one operation")
        self.operations: Dict[int, Op] = {}
        for code, op_name in operations.items():
            if op_name not in OPS:
                raise ValueError(f"ALU {name}: unknown operator "
                                 f"{op_name!r}")
            self.operations[code] = OPS[op_name]


class Mux(Component):
    """An n-way multiplexer: ``in0 .. in{n-1}``, ``sel``, ``out``."""

    def __init__(self, name: str, inputs: int, kind: str = "data"):
        if inputs < 2:
            raise ValueError(f"mux {name}: needs >= 2 inputs")
        ports = [PortSpec(f"in{k}", "in", kind) for k in range(inputs)]
        ports.append(PortSpec("sel", "in", "control"))
        ports.append(PortSpec("out", "out", kind))
        super().__init__(name, ports)
        self.inputs = inputs
        self.kind = kind
