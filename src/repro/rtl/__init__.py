"""RT-level netlist modeling -- the ECAD side of the bridge.

RECORD's distinguishing input format (Sec. 4.3.1): the target processor
may be described as an RT-level *netlist* rather than an instruction
set, "because some ASIPs may be defined at that level and because this
simplifies the analysis of architectural tradeoffs.  Furthermore, it
provides a bridge between ECAD (netlist) and compiler (instruction set)
domains."

This package provides:

- :mod:`repro.rtl.components` -- the RT component library (instruction
  fields, constants, registers, register files, memories, ALUs, muxes);
- :mod:`repro.rtl.netlist` -- netlist construction, structural checks,
  and cycle-accurate netlist simulation (used to *prove* that extracted
  instruction patterns mean what they claim);
- :mod:`repro.rtl.justify` -- control-requirement justification: finding
  instruction-bit settings that steer muxes / ALU control inputs /
  write enables to required values (Fig. 3's "control requirements ...
  can be found by justification").
"""

from repro.rtl.components import (
    Alu, Component, Constant, InstructionField, Memory, Mux, Register,
    RegisterFile,
)
from repro.rtl.netlist import Netlist, NetlistError, Port
from repro.rtl.justify import JustificationError, justify_value

__all__ = [
    "Alu", "Component", "Constant", "InstructionField", "Memory", "Mux",
    "Register", "RegisterFile",
    "Netlist", "NetlistError", "Port",
    "JustificationError", "justify_value",
]
