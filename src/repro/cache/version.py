"""The code-version stamp that invalidates the artifact cache.

A cached :class:`~repro.codegen.compiled.CompiledProgram` is only valid
as long as the code that produced it (and the pickled classes it is made
of) has not changed.  Rather than tracking fine-grained dependencies,
the stamp hashes every source file of the ``repro`` package: any edit
anywhere in the compiler, the targets or the IR moves every cache key,
and stale artifacts are simply never looked up again (the LRU size
bound reclaims their disk space eventually).

The stamp is computed once per process and inherited by forked farm
workers.  Hashing the ~70 source files takes a few milliseconds --
negligible next to a single compile.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

_STAMP: Optional[str] = None


def package_root() -> Path:
    """Directory of the ``repro`` package (the hashed tree)."""
    return Path(__file__).resolve().parents[1]


def code_version() -> str:
    """Hex digest over every ``repro`` source file (path + contents)."""
    global _STAMP
    if _STAMP is None:
        digest = hashlib.sha256()
        root = package_root()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _STAMP = digest.hexdigest()
    return _STAMP


def set_code_version(stamp: Optional[str]) -> Optional[str]:
    """Override (or with ``None`` reset) the memoized stamp.

    Test hook: simulating a code change without editing files.
    Returns the previous override state.
    """
    global _STAMP
    previous = _STAMP
    _STAMP = stamp
    return previous
