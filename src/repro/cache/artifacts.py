"""Persistent content-addressed store of compiled programs.

Every artifact is one pickle file under the cache root, named by the
SHA-256 of everything that determines the compile's output:

- the serialized lowered program (``repro.verify.corpus`` spec form --
  structural, so two ``Program`` objects with the same shape share a
  key, however they were built);
- the compiler registry name and the ``repr`` of its frozen options
  dataclass;
- the target registry name;
- the repository code-version stamp (:mod:`repro.cache.version`).

Design constraints, in order:

- **never wrong**: a cache problem of any kind (unreadable file,
  truncated pickle, stale class layout, full disk) degrades to a
  recompile with a logged warning -- it can never crash a run or
  change a result;
- **safe under concurrency**: farm workers share one cache directory.
  Writes go to a per-process temporary file and land with an atomic
  ``os.replace``; readers only ever see complete entries.  Two workers
  racing to store the same key write identical bytes, so either
  winner is correct;
- **bounded**: after each store the cache evicts least-recently-used
  entries (mtime order; reads refresh mtime) until it fits
  ``max_bytes``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.cache.version import code_version
from repro.codegen.compiled import CompiledProgram

logger = logging.getLogger("repro.cache")

#: Default size bound: plenty for the full DSPStone x target matrix
#: plus tens of thousands of fuzz programs (~10 KB per artifact).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_KEY_FORMAT = 2


def options_payload(options: object) -> object:
    """Canonical JSON-able form of a compiler-options value.

    One normalization for every subsystem that hashes options -- the
    artifact cache, the compile service (which keys requests through
    :meth:`ArtifactCache.key_for`), the farm, and the tuner's
    measurement records.  Options classes with a canonical
    ``to_dict()`` (``RecordOptions``) use it; other frozen dataclasses
    (``BaselineOptions``) serialize field-wise; anything else falls
    back to ``repr``.  ``None`` normalizes to ``None`` -- callers must
    substitute the compiler's default options themselves when they
    want default-vs-explicit-default to hash identically (see
    :func:`repro.serve.server.default_options`).
    """
    if options is None:
        return None
    to_dict = getattr(options, "to_dict", None)
    if callable(to_dict):
        return {"class": type(options).__name__, "fields": to_dict()}
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        return {"class": type(options).__name__,
                "fields": dataclasses.asdict(options)}
    return repr(options)

#: When the store crosses ``max_bytes``, evict down to this fraction
#: of it.  Stopping at the bound itself would put the very next store
#: straight back over it -- a full directory scan per put, exactly the
#: quadratic behaviour the amortized estimate exists to avoid.  The
#: 10% headroom turns enforcement into one scan per ~tens of MB of
#: fresh artifacts.
EVICTION_LOW_WATER = 0.9


@dataclass
class CacheStats:
    """Counters of one :class:`ArtifactCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_entries: int = 0
    store_failures: int = 0
    #: Read hits whose entry mtime was refreshed -- the LRU size bound
    #: sorts by mtime, so touched (hot) entries outlive cold ones even
    #: when they were written first.
    touches: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from disk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> dict:
        """JSON-able counter snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt_entries": self.corrupt_entries,
            "store_failures": self.store_failures,
            "touches": self.touches,
        }


@dataclass
class ArtifactCache:
    """A content-addressed, size-bounded, crash-tolerant artifact store."""

    root: Path
    max_bytes: int = DEFAULT_MAX_BYTES
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._tmp_counter = 0
        #: Running estimate of the store's disk footprint, seeded by a
        #: full scan on this process's first store (see _note_store).
        self._approx_bytes: Optional[int] = None

    # -- keys -----------------------------------------------------------

    def key_for(self, program, compiler_name: str, options: object,
                target_name: str) -> Optional[str]:
        """Cache key for one compile, or ``None`` for uncacheable input.

        ``None`` (rather than an exception) keeps exotic programs --
        anything the corpus spec form cannot express -- compiling
        through the normal path.
        """
        from repro.verify.corpus import program_to_spec
        try:
            payload = json.dumps({
                "format": _KEY_FORMAT,
                "program": program_to_spec(program),
                "compiler": compiler_name,
                "options": options_payload(options),
                "target": target_name,
                "code": code_version(),
            }, sort_keys=True)
        except Exception:                              # noqa: BLE001
            # Key derivation must never break a compile: anything the
            # spec form cannot express simply bypasses the cache.
            return None
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _source_path(self, key: str) -> Path:
        return self.root / "jit" / key[:2] / f"{key}.py"

    def _record_path(self, key: str) -> Path:
        return self.root / "meas" / key[:2] / f"{key}.json"

    # -- lookup ---------------------------------------------------------

    def get(self, key: str) -> Optional[CompiledProgram]:
        """Load an artifact, or ``None`` on miss or any disk problem."""
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            compiled = pickle.loads(payload)
            if not isinstance(compiled, CompiledProgram):
                raise TypeError(
                    f"cache entry holds {type(compiled).__name__}")
        except Exception as exc:                       # noqa: BLE001
            # Truncated write, stale class layout, bit rot: drop the
            # entry and recompile.  Never let a bad artifact escape.
            self.stats.corrupt_entries += 1
            self.stats.misses += 1
            logger.warning("dropping corrupt cache entry %s (%s: %s)",
                           path.name, type(exc).__name__, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        compiled.stats["artifact_cache"] = "hit"
        self._touch(path)
        return compiled

    def get_source(self, key: str) -> Optional[str]:
        """Load a generated-source blob (the simulator JIT's entries),
        or ``None`` on miss or any disk problem."""
        path = self._source_path(key)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(path)
        return source

    def get_record(self, key: str) -> Optional[dict]:
        """Load a JSON measurement record (the tuner's entries), or
        ``None`` on miss or any disk problem.

        Records get the same corruption discipline as artifacts: a
        truncated or non-dict entry is dropped and re-measured, never
        surfaced.
        """
        path = self._record_path(key)
        try:
            payload = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            self.stats.misses += 1
            return None
        try:
            record = json.loads(payload)
            if not isinstance(record, dict):
                raise TypeError(
                    f"record entry holds {type(record).__name__}")
        except Exception as exc:                       # noqa: BLE001
            self.stats.corrupt_entries += 1
            self.stats.misses += 1
            logger.warning("dropping corrupt record entry %s (%s: %s)",
                           path.name, type(exc).__name__, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self._touch(path)
        return record

    def _touch(self, path: Path) -> None:
        """Refresh an entry's LRU position (counted in ``stats``)."""
        try:
            os.utime(path)
        except OSError:
            return                 # entry evicted under us: still a hit
        self.stats.touches += 1

    # -- store ----------------------------------------------------------

    def put_source(self, key: str, source: str) -> bool:
        """Store a generated-source blob atomically (same discipline as
        :meth:`put`: racing writers produce identical bytes)."""
        path = self._source_path(key)
        tmp = path.with_name(
            f".{path.stem}.{os.getpid()}.{self._tmp_counter}.tmp")
        self._tmp_counter += 1
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(source, encoding="utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            self.stats.store_failures += 1
            logger.warning("cannot store source entry %s (%s); "
                           "continuing uncached", path.name, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stats.stores += 1
        self._note_store(len(source.encode("utf-8")))
        return True

    def put_record(self, key: str, record: dict) -> bool:
        """Store a JSON measurement record atomically.

        The blob is canonical (``sort_keys``), so racing writers of
        the same key -- farm workers measuring one deduped cell --
        produce identical bytes and either winner is correct.
        """
        try:
            blob = json.dumps(record, sort_keys=True) + "\n"
        except (TypeError, ValueError) as exc:
            self.stats.store_failures += 1
            logger.warning("measurement record %s not JSON-able (%s); "
                           "not cached", key[:12], exc)
            return False
        path = self._record_path(key)
        tmp = path.with_name(
            f".{path.stem}.{os.getpid()}.{self._tmp_counter}.tmp")
        self._tmp_counter += 1
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(blob, encoding="utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            self.stats.store_failures += 1
            logger.warning("cannot store record entry %s (%s); "
                           "continuing uncached", path.name, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stats.stores += 1
        self._note_store(len(blob.encode("utf-8")))
        return True

    def put(self, key: str, compiled: CompiledProgram) -> bool:
        """Store an artifact atomically; returns whether it landed."""
        path = self._path(key)
        marker = compiled.stats.pop("artifact_cache", None)
        try:
            payload = pickle.dumps(compiled)
        except Exception as exc:                       # noqa: BLE001
            self.stats.store_failures += 1
            logger.warning("artifact %s not picklable (%s: %s); "
                           "not cached", compiled.name,
                           type(exc).__name__, exc)
            return False
        finally:
            if marker is not None:
                compiled.stats["artifact_cache"] = marker
        tmp = path.with_name(
            f".{path.stem}.{os.getpid()}.{self._tmp_counter}.tmp")
        self._tmp_counter += 1
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError as exc:
            self.stats.store_failures += 1
            logger.warning("cannot store cache entry %s (%s); "
                           "continuing uncached", path.name, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stats.stores += 1
        self._note_store(len(payload))
        return True

    # -- size bound -----------------------------------------------------

    def _entries(self) -> List[Tuple[float, int, Path]]:
        """(mtime, size, path) of every entry; unreadable ones skipped."""
        entries = []
        for pattern in ("*/*.pkl", "jit/*/*.py", "meas/*/*.json"):
            for path in self.root.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def total_bytes(self) -> int:
        """Disk footprint of all current entries."""
        return sum(size for _mtime, size, _path in self._entries())

    def entry_count(self) -> int:
        """Number of artifacts currently stored."""
        return len(self._entries())

    def _note_store(self, size: int) -> None:
        """Amortized size-bound enforcement after one store.

        Scanning the whole store on every put is O(entries) -- fatal
        at campaign scale, where 10^5 programs write ~2x10^5 artifacts
        and a per-put scan makes the run quadratic in its own cache.
        Each process instead keeps a running footprint estimate: one
        full scan the first time it stores, pure arithmetic per put
        after that, and a real scan-and-evict only when the estimate
        crosses ``max_bytes`` (which also resets the estimate to the
        measured truth).  The estimate does not see concurrent
        writers, so the bound is approximate between enforcement
        points; eviction order is still global LRU whenever it runs.
        """
        if self._approx_bytes is None:
            self._approx_bytes = sum(
                entry_size for _mtime, entry_size, _path
                in self._entries())
        else:
            self._approx_bytes += size
        if self._approx_bytes > self.max_bytes:
            self._enforce_size_bound()

    def _enforce_size_bound(self) -> None:
        entries = self._entries()
        total = sum(size for _mtime, size, _path in entries)
        if total > self.max_bytes:
            floor = int(self.max_bytes * EVICTION_LOW_WATER)
            for _mtime, size, path in sorted(entries):
                try:
                    path.unlink()
                except OSError:
                    continue             # a concurrent worker beat us
                self.stats.evictions += 1
                total -= size
                if total <= floor:
                    break
        self._approx_bytes = total
