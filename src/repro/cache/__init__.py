"""Persistent compilation-artifact cache.

Compiling is by far the most expensive cell of the conformance matrix
(~90% of a cold ``python -m repro.verify`` run), and it is a pure
function of (program, compiler+options, target, code version).  This
package memoizes it **across processes and runs**: artifacts live under
a cache directory (``.repro-cache/`` by convention), keyed by a content
digest, so a warm CI run or a repeated verify invocation compiles
nothing at all.

The cache is *opt-in per process*: nothing is read or written until
:func:`configure` installs an active cache, which the verify CLI, the
throughput benchmark and the farm workers do.  Library callers and the
tier-1 test suite see the uncached pipeline unless they ask otherwise.

Usage::

    import repro.cache
    repro.cache.configure(".repro-cache")    # activate
    ...                                      # compiles now hit the cache
    repro.cache.configure(None)              # deactivate

See :mod:`repro.cache.artifacts` for the storage design (atomic writes,
LRU size bound, corruption tolerance) and :mod:`repro.cache.version`
for the invalidation stamp.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional

from repro.cache.artifacts import (
    ArtifactCache, CacheStats, DEFAULT_MAX_BYTES, options_payload,
)
from repro.cache.version import code_version, set_code_version
from repro.codegen.compiled import CompiledProgram

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DEFAULT_MAX_BYTES",
    "active_cache",
    "cached_compile",
    "code_version",
    "configure",
    "default_cache_dir",
    "options_payload",
    "set_code_version",
]

_ACTIVE: Optional[ArtifactCache] = None


def default_cache_dir() -> Path:
    """The conventional cache location: ``.repro-cache/`` in the cwd."""
    return Path(".repro-cache")


def configure(root: Optional[object],
              max_bytes: int = DEFAULT_MAX_BYTES
              ) -> Optional[ArtifactCache]:
    """Install (or with ``root=None`` remove) the process-wide cache.

    Returns the now-active cache, so callers can read its stats later.
    """
    global _ACTIVE
    _ACTIVE = None if root is None \
        else ArtifactCache(Path(root), max_bytes=max_bytes)
    return _ACTIVE


def active_cache() -> Optional[ArtifactCache]:
    """The process-wide cache, or ``None`` when caching is off."""
    return _ACTIVE


def cached_compile(compiler,
                   program,
                   build: Callable[[object], CompiledProgram]
                   ) -> CompiledProgram:
    """Route one compile through the active cache (if any).

    ``compiler`` provides the key ingredients (``name``, ``options``,
    ``target.name``); ``build`` runs the real pipeline on a miss.  With
    no active cache, or an uncacheable program, this is exactly
    ``build(program)``.
    """
    cache = _ACTIVE
    if cache is None:
        return build(program)
    key = cache.key_for(program, compiler.name, compiler.options,
                        compiler.target.name)
    if key is None:
        return build(program)
    compiled = cache.get(key)
    if compiled is not None:
        return compiled
    compiled = build(program)
    cache.put(key, compiled)
    return compiled
