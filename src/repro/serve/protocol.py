"""Wire protocol of the compile service.

One request is one JSON object on one line (newline-delimited JSON
over a stream socket); one response is one JSON object on one line,
matched to its request by the client-chosen ``id``.  Responses come
back **in completion order**, not request order -- a hot cache hit
overtakes a cold compile pipelined ahead of it on the same
connection -- which is what lets the server stream results as the farm
finishes them.

Operations::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "compile",  "kernel": "fir", "target": "m56"}
    {"id": 3, "op": "compile",  "source": "<MiniDFL text>"}
    {"id": 4, "op": "compile",  "program": {...spec...},
              "compiler": "baseline"}
    {"id": 5, "op": "simulate", "kernel": "fir", "inputs": {...},
              "sim": "jit"}
    {"id": 6, "op": "verify",   "program": {...spec...},
              "input_sets": [{...}], "targets": ["tc25", "risc16"]}
    {"id": 7, "op": "stats"}
    {"id": 8, "op": "shutdown"}

A program may arrive as a DSPStone ``kernel`` registry name, as
MiniDFL ``source`` text, or as a serialized ``program`` spec
(:func:`repro.verify.corpus.program_to_spec` form -- what the traffic
generator and the conformance tooling speak natively).

Every response carries ``served_by`` (``"cache"``: answered straight
from the persistent artifact store; ``"coalesced"``: attached to an
identical request already in flight; ``"farm"``: dispatched in a
batched farm submission) and a ``timings`` block with per-stage wall
clock (``dedup``, ``queue``, ``compile``, ``simulate``).

Content keys reuse the artifact cache's own derivation
(:meth:`repro.cache.ArtifactCache.key_for`), so "is this compile hot?"
and "is this artifact on disk?" are literally the same question; the
non-compile operations extend that key with their own ingredients.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.verify.diff import DEFAULT_TARGETS

PROTOCOL_VERSION = 1

OPS = ("ping", "compile", "simulate", "verify", "stats", "shutdown")
COMPILERS = ("record", "baseline", "hand")
SIM_TIERS = ("jit", "fast", "reference")


class ProtocolError(ValueError):
    """A malformed or unsupported request."""


@dataclass
class Request:
    """One parsed, validated request (program not yet resolved)."""

    id: object
    op: str
    kernel: Optional[str] = None
    source: Optional[str] = None
    program_spec: Optional[dict] = None
    target: str = "tc25"
    compiler: str = "record"
    sim: str = "jit"
    inputs: Dict[str, object] = field(default_factory=dict)
    input_sets: List[Dict[str, object]] = field(default_factory=list)
    targets: Tuple[str, ...] = DEFAULT_TARGETS

    @property
    def wants_program(self) -> bool:
        return self.op in ("compile", "simulate", "verify")


def parse_request(payload: object) -> Request:
    """Validate one decoded JSON payload into a :class:`Request`."""
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    request = Request(id=payload.get("id"), op=op)
    if not request.wants_program:
        return request

    sources = [key for key in ("kernel", "source", "program")
               if payload.get(key) is not None]
    if len(sources) != 1:
        raise ProtocolError(
            f"op {op!r} needs exactly one of 'kernel', 'source' or "
            f"'program' (got {sources or 'none'})")
    request.kernel = payload.get("kernel")
    request.source = payload.get("source")
    request.program_spec = payload.get("program")
    if request.kernel is not None and not isinstance(request.kernel, str):
        raise ProtocolError("'kernel' must be a string")
    if request.source is not None and not isinstance(request.source, str):
        raise ProtocolError("'source' must be a string")
    if request.program_spec is not None \
            and not isinstance(request.program_spec, dict):
        raise ProtocolError("'program' must be a spec object")

    request.compiler = payload.get("compiler", "record")
    if request.compiler not in COMPILERS:
        raise ProtocolError(f"unknown compiler {request.compiler!r}; "
                            f"expected one of {COMPILERS}")
    if request.compiler == "hand" and request.kernel is None:
        raise ProtocolError(
            "the 'hand' reference compiler only exists for DSPStone "
            "kernels; pass 'kernel', not 'source'/'program'")
    request.target = payload.get("target", "tc25")
    if request.target not in DEFAULT_TARGETS:
        raise ProtocolError(f"unknown target {request.target!r}; "
                            f"expected one of {DEFAULT_TARGETS}")

    if op == "simulate":
        request.sim = payload.get("sim", "jit")
        if request.sim not in SIM_TIERS:
            raise ProtocolError(f"unknown sim tier {request.sim!r}; "
                                f"expected one of {SIM_TIERS}")
        inputs = payload.get("inputs", {})
        if not isinstance(inputs, dict):
            raise ProtocolError("'inputs' must be an object")
        request.inputs = inputs
    if op == "verify":
        input_sets = payload.get("input_sets", [])
        if not isinstance(input_sets, list) \
                or not all(isinstance(entry, dict) for entry in input_sets):
            raise ProtocolError("'input_sets' must be a list of objects")
        request.input_sets = input_sets
        targets = payload.get("targets")
        if targets is not None:
            targets = tuple(targets)
            for name in targets:
                if name not in DEFAULT_TARGETS:
                    raise ProtocolError(
                        f"unknown target {name!r}; "
                        f"expected one of {DEFAULT_TARGETS}")
            request.targets = targets
    return request


def resolve_program(request: Request):
    """The lowered :class:`~repro.ir.program.Program` a request names.

    Raises whatever the kernel registry, the MiniDFL front end or the
    spec loader raises -- the server maps that to an error response.
    """
    if request.kernel is not None:
        from repro.dspstone import kernel
        return kernel(request.kernel).program
    if request.source is not None:
        from repro.dfl import compile_dfl
        return compile_dfl(request.source)
    from repro.verify.corpus import program_from_spec
    return program_from_spec(request.program_spec)


def verify_key(request: Request, program) -> Optional[str]:
    """Content key of a ``verify`` request, for in-flight coalescing.

    Compile and simulate requests coalesce on the artifact-cache key
    itself (the compile is the only shared, cacheable work; the
    simulation tier runs per request).  Verify has no artifact store,
    so its key hashes the full request the same way the cache hashes
    its own keys.  ``None`` marks an unserializable request: it is
    then dispatched without dedup.
    """
    from repro.cache.version import code_version
    from repro.verify.corpus import program_to_spec
    try:
        blob = json.dumps({
            "op": "verify",
            "program": program_to_spec(program),
            "input_sets": request.input_sets,
            "targets": list(request.targets),
            "code": code_version(),
        }, sort_keys=True)
    except Exception:                                  # noqa: BLE001
        return None
    return hashlib.sha256(blob.encode()).hexdigest()


def ok_response(request: Request, result: dict, served_by: str,
                timings: Dict[str, float],
                key: Optional[str] = None) -> dict:
    """A success envelope (one JSON line on the wire)."""
    return {
        "id": request.id,
        "ok": True,
        "op": request.op,
        "served_by": served_by,
        "key": key,
        "timings": {stage: round(seconds, 6)
                    for stage, seconds in timings.items()},
        "result": result,
    }


def error_response(request_id: object, error: str,
                   error_type: str = "ServeError",
                   op: Optional[str] = None) -> dict:
    """An error envelope; the connection stays usable afterwards."""
    return {
        "id": request_id,
        "ok": False,
        "op": op,
        "error": error,
        "error_type": error_type,
    }
