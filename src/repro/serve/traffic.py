"""Synthetic traffic for the compile service.

Models the workbench workload the paper implies and the ROADMAP's
"millions of users" north star makes explicit: a *hot set* of programs
everyone keeps recompiling and re-simulating (DSPStone kernels across
targets -- think: every designer exploring the same cube corner), plus
a stream of *cold* novel programs (drawn from the conformance fuzzer's
grammar, :mod:`repro.verify.progen`) that each appear once.  Requests
mix ``compile`` and ``simulate`` ops, targets, and simulator tiers.

Everything is seeded: identical ``(config, seed)`` produce the
identical request list, so a benchmark run is reproducible and the
zero-recompile assertion is meaningful.

Each request carries client-side metadata (its artifact *group*: one
group per (program, compiler, target) cell) so the driver can check
the service's contract from the outside: within one run, **at most
one request per group may be served by the farm** -- every other
request in the group must come back ``cache`` or ``coalesced``.

Run against a live server::

    python -m repro.serve.traffic --port 8357 --quick
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.client import ServeClient

#: Hot-set kernels: small, fast to compile, available on every target.
HOT_KERNELS = ("real_update", "dot_product", "fir")
DEFAULT_TARGETS = ("tc25", "m56", "risc16", "asip")


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one synthetic workload."""

    requests: int = 200
    hot_fraction: float = 0.7     # share of requests aimed at the hot set
    cold_programs: int = 20       # unique progen programs in the stream
    targets: Tuple[str, ...] = DEFAULT_TARGETS
    sims: Tuple[str, ...] = ("jit", "fast")
    simulate_fraction: float = 0.5
    seed: int = 0
    connections: int = 4          # concurrent client connections


@dataclass
class TrafficItem:
    """One request plus the metadata the driver grades it with."""

    payload: dict
    group: str                    # artifact cell: program/compiler/target
    hot: bool


def build_requests(config: TrafficConfig) -> List[TrafficItem]:
    """The deterministic request list for one workload."""
    from repro.dspstone import kernel
    from repro.verify.corpus import program_to_spec
    from repro.verify.progen import generate_inputs, generate_program

    rng = random.Random(config.seed)

    # Hot pool: kernel x target cells, each with ready-made inputs.
    hot_pool: List[Tuple[str, dict, dict]] = []
    for name in HOT_KERNELS:
        spec = kernel(name)
        for target in config.targets:
            group = f"{name}/record/{target}"
            base = {"kernel": name, "target": target,
                    "compiler": "record"}
            hot_pool.append((group, base,
                             spec.inputs(seed=config.seed)))

    # Cold pool: novel generated programs, one appearance each.
    cold_pool: List[Tuple[str, dict, dict]] = []
    for index in range(config.cold_programs):
        program_rng = random.Random(config.seed * 100_003 + index)
        program = generate_program(program_rng, index)
        spec = program_to_spec(program)
        target = config.targets[index % len(config.targets)]
        group = f"{program.name}/record/{target}"
        base = {"program": spec, "target": target, "compiler": "record"}
        cold_pool.append((group, base,
                          generate_inputs(program_rng, program)))

    items: List[TrafficItem] = []
    cold_cursor = 0
    for _ in range(config.requests):
        use_hot = rng.random() < config.hot_fraction \
            or cold_cursor >= len(cold_pool)
        if use_hot:
            group, base, inputs = hot_pool[rng.randrange(len(hot_pool))]
        else:
            group, base, inputs = cold_pool[cold_cursor]
            cold_cursor += 1
        payload = dict(base)
        if rng.random() < config.simulate_fraction:
            payload["op"] = "simulate"
            payload["inputs"] = inputs
            payload["sim"] = config.sims[rng.randrange(len(config.sims))]
        else:
            payload["op"] = "compile"
        items.append(TrafficItem(payload=payload, group=group,
                                 hot=use_hot))
    return items


@dataclass
class TrafficReport:
    """Outcome of one driven workload."""

    items: List[TrafficItem]
    responses: List[Optional[dict]]
    latencies: List[float]        # seconds, aligned with items
    wall_seconds: float
    server_stats: Optional[dict] = None

    # -- aggregates -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return all(response is not None and response.get("ok")
                   for response in self.responses)

    def served_by_counts(self) -> Dict[str, int]:
        """Responses per ``served_by`` label (farm/cache/coalesced)."""
        counts: Dict[str, int] = {}
        for response in self.responses:
            if response is None:
                continue
            label = response.get("served_by", "error")
            counts[label] = counts.get(label, 0) + 1
        return counts

    def farm_served_per_group(self) -> Dict[str, int]:
        """How often each artifact cell was dispatched to the farm."""
        counts: Dict[str, int] = {}
        for item, response in zip(self.items, self.responses):
            if response and response.get("served_by") == "farm":
                counts[item.group] = counts.get(item.group, 0) + 1
        return counts

    def recompiles(self) -> int:
        """Farm dispatches beyond the first per artifact cell --
        the number the dedup layers exist to hold at zero."""
        return sum(count - 1
                   for count in self.farm_served_per_group().values()
                   if count > 1)

    def percentile(self, fraction: float) -> float:
        """Latency at ``fraction`` (nearest-rank), in seconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1,
                    max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def requests_per_second(self) -> float:
        """Sustained throughput over the whole driven run."""
        return (len(self.items) / self.wall_seconds
                if self.wall_seconds else 0.0)

    def to_json(self) -> dict:
        """The BENCH_SERVE-style summary block."""
        groups = self.farm_served_per_group()
        return {
            "requests": len(self.items),
            "ok": self.ok,
            "wall_seconds": round(self.wall_seconds, 3),
            "requests_per_second": round(self.requests_per_second(), 2),
            "latency_p50_ms": round(self.percentile(0.50) * 1e3, 3),
            "latency_p95_ms": round(self.percentile(0.95) * 1e3, 3),
            "latency_max_ms": round(self.percentile(1.0) * 1e3, 3),
            "served_by": self.served_by_counts(),
            "unique_groups": len({item.group for item in self.items}),
            "farm_served_groups": len(groups),
            "recompiles": self.recompiles(),
            "server_stats": self.server_stats,
        }


def drive(host: str, port: int, items: Sequence[TrafficItem],
          connections: int = 4) -> TrafficReport:
    """Send a workload over N concurrent connections; grade the answers.

    Requests are dealt round-robin; each connection pipelines its
    share in chunks so the server's batching window sees genuinely
    concurrent duplicates, like independent users would produce.
    """
    items = list(items)
    connections = max(1, min(connections, len(items) or 1))
    responses: List[Optional[dict]] = [None] * len(items)
    latencies: List[float] = [0.0] * len(items)
    errors: List[BaseException] = []

    def worker(worker_index: int) -> None:
        try:
            with ServeClient(host=host, port=port) as client:
                for index in range(worker_index, len(items),
                                   connections):
                    started = perf_counter()
                    responses[index] = client.request(
                        items[index].payload, check=False)
                    latencies[index] = perf_counter() - started
        except BaseException as exc:                   # noqa: BLE001
            errors.append(exc)

    started = perf_counter()
    threads = [threading.Thread(target=worker, args=(index,),
                                daemon=True)
               for index in range(connections)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = perf_counter() - started
    if errors:
        raise errors[0]

    with ServeClient(host=host, port=port) as client:
        server_stats = client.stats()
    return TrafficReport(items=items, responses=responses,
                         latencies=latencies, wall_seconds=wall,
                         server_stats=server_stats)


def main(argv=None) -> int:
    """CLI: drive a running server and print the summary."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.traffic",
        description="synthetic hot/cold workload for python -m repro "
                    "serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8357)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--cold-programs", type=int, default=20)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized workload (60 requests)")
    parser.add_argument("--json", type=str, default=None,
                        help="write the summary to this path")
    parser.add_argument("--assert-no-recompiles", action="store_true",
                        help="exit 1 unless every repeated artifact "
                             "cell was served by cache/coalescing")
    parser.add_argument("--shutdown", action="store_true",
                        help="send a shutdown request when done")
    args = parser.parse_args(argv)

    config = TrafficConfig(
        requests=60 if args.quick else args.requests,
        cold_programs=min(args.cold_programs,
                          8 if args.quick else args.cold_programs),
        connections=args.connections,
        seed=args.seed)
    items = build_requests(config)
    report = drive(args.host, args.port, items,
                   connections=config.connections)
    summary = report.to_json()
    print(json.dumps(summary, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
    if args.shutdown:
        with ServeClient(host=args.host, port=args.port) as client:
            client.shutdown()
    if not report.ok:
        print("FAIL: some requests errored", file=sys.stderr)
        return 1
    if args.assert_no_recompiles and report.recompiles() != 0:
        print(f"FAIL: {report.recompiles()} recompiles of repeated "
              f"artifact cells", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
