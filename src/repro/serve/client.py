"""Blocking client for the compile service.

A thin socket wrapper over the NDJSON protocol: one request line out,
responses matched back by ``id``.  Responses arrive in *completion*
order, so :meth:`ServeClient.request_many` pipelines a whole batch on
one connection and collects the answers however they land -- that is
the intended way to feed the server's batching window from a single
client.

Usage::

    from repro.serve.client import ServeClient

    with ServeClient(port=8357) as client:
        reply = client.compile(kernel="fir", target="m56")
        print(reply["result"]["listing"])
        sim = client.simulate(kernel="fir", inputs={...}, sim="jit")
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence


class ServeClientError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, response: dict) -> None:
        super().__init__(f"{response.get('error_type', 'Error')}: "
                         f"{response.get('error', 'unknown error')}")
        self.response = response


class ServeClient:
    """One connection to a running ``python -m repro serve``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8357,
                 timeout: float = 120.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._parked: Dict[object, dict] = {}

    # -- wire -----------------------------------------------------------

    def _send(self, payload: dict) -> object:
        if payload.get("id") is None:
            self._next_id += 1
            payload = {**payload, "id": self._next_id}
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        return payload["id"]

    def _read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def _await_id(self, request_id: object) -> dict:
        """The response for one id, parking out-of-order arrivals."""
        if request_id in self._parked:
            return self._parked.pop(request_id)
        while True:
            response = self._read_response()
            if response.get("id") == request_id:
                return response
            self._parked[response.get("id")] = response

    # -- public API -----------------------------------------------------

    def request(self, payload: dict, check: bool = True) -> dict:
        """Send one request and block for its response."""
        request_id = self._send(payload)
        response = self._await_id(request_id)
        if check and not response.get("ok", False):
            raise ServeClientError(response)
        return response

    def request_many(self, payloads: Sequence[dict],
                     check: bool = True) -> List[dict]:
        """Pipeline many requests; responses in *request* order.

        All lines go out before any response is read, so duplicates in
        the batch genuinely exercise the server's in-flight coalescing
        and batching window.
        """
        ids = [self._send(payload) for payload in payloads]
        responses = [self._await_id(request_id) for request_id in ids]
        if check:
            for response in responses:
                if not response.get("ok", False):
                    raise ServeClientError(response)
        return responses

    def ping(self) -> dict:
        """Round-trip liveness check."""
        return self.request({"op": "ping"})

    def compile(self, kernel: Optional[str] = None,
                source: Optional[str] = None,
                program: Optional[dict] = None,
                target: str = "tc25",
                compiler: str = "record") -> dict:
        """Compile one program (kernel name, MiniDFL source or spec)."""
        return self.request(_program_payload(
            "compile", kernel, source, program, target, compiler))

    def simulate(self, kernel: Optional[str] = None,
                 source: Optional[str] = None,
                 program: Optional[dict] = None,
                 target: str = "tc25", compiler: str = "record",
                 inputs: Optional[dict] = None,
                 sim: str = "jit") -> dict:
        """Compile + simulate with ``inputs`` on the ``sim`` tier."""
        payload = _program_payload("simulate", kernel, source, program,
                                   target, compiler)
        payload["inputs"] = inputs or {}
        payload["sim"] = sim
        return self.request(payload)

    def verify(self, program: dict,
               input_sets: Sequence[dict],
               targets: Optional[Sequence[str]] = None) -> dict:
        """Run one conformance matrix check on a serialized program."""
        payload = {"op": "verify", "program": program,
                   "input_sets": list(input_sets)}
        if targets is not None:
            payload["targets"] = list(targets)
        return self.request(payload)

    def stats(self) -> dict:
        """The server's counter snapshot (see ``stats_json``)."""
        return self.request({"op": "stats"})["result"]

    def shutdown(self) -> dict:
        """Ask the server to stop accepting work and exit."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _program_payload(op: str, kernel, source, program,
                     target: str, compiler: str) -> dict:
    payload: Dict[str, object] = {"op": op, "target": target,
                                  "compiler": compiler}
    if kernel is not None:
        payload["kernel"] = kernel
    if source is not None:
        payload["source"] = source
    if program is not None:
        payload["program"] = program
    return payload
