"""Compile-as-a-service: an async batching front-end over the farm.

The substrate built by the earlier performance work -- process-pool
compile farm, content-addressed artifact cache, tiered simulators,
parallel conformance -- made throughput cheap; this package turns it
into a *long-running service* that many clients can hammer at once:

- :mod:`repro.serve.server` -- the asyncio server: requests are
  content-hashed with the artifact cache's own key derivation,
  answered from the store when hot, coalesced onto in-flight work when
  pending, and batched into farm submissions when cold;
- :mod:`repro.serve.protocol` -- the newline-delimited JSON wire
  format (compile / simulate / verify / stats / ping / shutdown);
- :mod:`repro.serve.batcher` -- the latency/throughput batching
  window with in-flight coalescing;
- :mod:`repro.serve.client` -- a blocking client;
- :mod:`repro.serve.traffic` -- the seeded hot/cold workload
  generator behind ``BENCH_SERVE.json``.

Start a server with ``python -m repro serve`` and talk to it with
:class:`~repro.serve.client.ServeClient`.
"""

from repro.serve.batcher import Batcher, BatcherStats
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import ProtocolError, parse_request
from repro.serve.server import (
    CompileService, DEFAULT_PORT, ReproServer, ServeError, ServeStats,
    serve_forever,
)

__all__ = [
    "Batcher",
    "BatcherStats",
    "CompileService",
    "DEFAULT_PORT",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeClientError",
    "ServeError",
    "ServeStats",
    "parse_request",
    "serve_forever",
]
