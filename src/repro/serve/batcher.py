"""Async batching with in-flight request coalescing.

The service's cold path is a classic latency/throughput trade: farm
submissions amortize process-pool overhead over many jobs, but a
request must not wait forever for companions.  The batcher resolves it
with a **window**: the first cold job opens a batch, the batch departs
when either ``window`` seconds elapse or ``max_batch`` jobs have
joined, and every job in it rides one farm submission.

Layered on top is the **in-flight map**: each job is keyed by content
hash, and a submission whose key is already pending does not enqueue
at all -- it awaits the same future the first submission created, so N
concurrent identical requests cost one compile (the farm's batch-level
dedup independently collapses duplicates *within* one submission; the
in-flight map collapses them *across* the whole flight time).

Futures are resolved from the drainer task and awaited through
:func:`asyncio.shield`, so a waiter whose client disconnects
mid-flight cancels only its own await: the shared work completes and
every other waiter -- plus the artifact cache -- still gets the
result.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import partial
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class BatcherStats:
    """Lifetime counters of one :class:`Batcher`."""

    submitted: int = 0
    coalesced: int = 0
    dispatched: int = 0
    batches: int = 0
    max_batch_size: int = 0
    failures: int = 0

    def to_json(self) -> dict:
        """JSON-able counter snapshot."""
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "dispatched": self.dispatched,
            "batches": self.batches,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": (round(self.dispatched / self.batches, 2)
                                if self.batches else 0.0),
            "failures": self.failures,
        }


@dataclass
class _Pending:
    """One cold job waiting for (or riding) a batch."""

    key: Optional[str]
    job: object
    future: "asyncio.Future"
    enqueued: float


class Batcher:
    """Window-batched dispatch of keyed jobs onto a runner.

    ``runner`` takes the job list of one batch and returns results in
    job order (:func:`repro.evalx.farm.compile_many` and
    :func:`~repro.evalx.farm.verify_many` both qualify); it runs on
    the event loop's default thread executor so a slow batch never
    blocks request intake.
    """

    def __init__(self, runner: Callable[[List[object]], List[object]],
                 window: float = 0.010, max_batch: int = 32) -> None:
        self._runner = runner
        self.window = window
        self.max_batch = max(1, max_batch)
        self.stats = BatcherStats()
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._drainer: Optional[asyncio.Task] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the drainer task (idempotent)."""
        if self._drainer is None or self._drainer.done():
            self._drainer = asyncio.get_running_loop().create_task(
                self._drain(), name="repro-serve-batcher")

    async def close(self) -> None:
        """Stop draining; pending waiters get a CancelledError."""
        self._closed = True
        if self._drainer is not None:
            self._drainer.cancel()
            try:
                await self._drainer
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._drainer = None

    # -- submission -----------------------------------------------------

    async def submit(self, key: Optional[str], job: object
                     ) -> Tuple[object, str, float, float]:
        """One job in, its result out.

        Returns ``(result, served_by, queue_seconds, run_seconds)``
        where ``served_by`` is ``"coalesced"`` when the job attached to
        an identical in-flight one, else ``"farm"``.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        self.start()
        self.stats.submitted += 1
        if key is not None:
            pending = self._inflight.get(key)
            if pending is not None:
                self.stats.coalesced += 1
                result, _queue_s, run_s = await asyncio.shield(pending)
                return result, "coalesced", 0.0, run_s
        future = asyncio.get_running_loop().create_future()
        if key is not None:
            self._inflight[key] = future
        self._queue.put_nowait(_Pending(key=key, job=job, future=future,
                                        enqueued=perf_counter()))
        result, queue_s, run_s = await asyncio.shield(future)
        return result, "farm", queue_s, run_s

    # -- drainer --------------------------------------------------------

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = loop.time() + self.window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            await self._dispatch(batch)

    async def _dispatch(self, batch: Sequence[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        self.stats.batches += 1
        self.stats.dispatched += len(batch)
        self.stats.max_batch_size = max(self.stats.max_batch_size,
                                        len(batch))
        jobs = [pending.job for pending in batch]
        started = perf_counter()
        try:
            results = await loop.run_in_executor(
                None, partial(self._runner, jobs))
            if len(results) != len(jobs):
                raise RuntimeError(
                    f"runner returned {len(results)} results "
                    f"for {len(jobs)} jobs")
        except Exception as exc:                       # noqa: BLE001
            self.stats.failures += len(batch)
            for pending in batch:
                self._resolve(pending, exception=exc)
            return
        run_seconds = perf_counter() - started
        for pending, result in zip(batch, results):
            queue_seconds = started - pending.enqueued
            self._resolve(pending,
                          value=(result, queue_seconds, run_seconds))

    def _resolve(self, pending: _Pending, value=None,
                 exception: Optional[BaseException] = None) -> None:
        """Hand a batch outcome to the waiters, tolerating ones that
        disconnected (cancelled futures) while the batch ran."""
        if pending.key is not None \
                and self._inflight.get(pending.key) is pending.future:
            del self._inflight[pending.key]
        if pending.future.cancelled():
            return
        if exception is not None:
            pending.future.set_exception(exception)
            # A waiter may already be gone; don't warn about never-
            # retrieved exceptions for its share of the batch.
            pending.future.exception()
        else:
            pending.future.set_result(value)
