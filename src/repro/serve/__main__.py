"""Run the compile service: ``python -m repro serve`` (or
``python -m repro.serve``).

Examples::

    # serve on the default port with the default artifact cache
    python -m repro serve

    # CI smoke: fixed port, small batching window, serial farm
    python -m repro serve --port 8357 --window-ms 5 --serial

The worker pool is sized by ``--jobs``, defaulting to the same
``REPRO_JOBS``-aware heuristic the farm and the verify CLI use, so a
deployed server and CI agree on pool width.  Stop with Ctrl-C or a
``{"op": "shutdown"}`` request.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro serve`` argument parser."""
    from repro.serve.server import DEFAULT_MAX_BATCH, DEFAULT_PORT, \
        DEFAULT_WINDOW
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="long-running compile/simulate/verify service: "
                    "content-hashed requests, artifact-cache hot path, "
                    "in-flight dedup, farm-batched cold path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; "
                             f"0 picks a free port)")
    parser.add_argument("--window-ms", type=float,
                        default=DEFAULT_WINDOW * 1e3,
                        help="batching window in milliseconds: how long "
                             "the first cold request waits for "
                             "companions (default "
                             f"{DEFAULT_WINDOW * 1e3:.0f})")
    parser.add_argument("--max-batch", type=int,
                        default=DEFAULT_MAX_BATCH,
                        help="max jobs per farm submission "
                             f"(default {DEFAULT_MAX_BATCH})")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="farm worker processes (default: "
                             "$REPRO_JOBS if set, else one per core, "
                             "at most 8)")
    parser.add_argument("--serial", action="store_true",
                        help="no process pool: compile in-process "
                             "(debugging, restricted environments)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache directory "
                             "(default .repro-cache/)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="artifact cache size bound")
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.serve.server import serve_forever
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(serve_forever(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            cache_max_bytes=args.cache_max_bytes,
            window=args.window_ms / 1e3,
            max_batch=args.max_batch,
            workers=args.jobs,
            use_pool=not args.serial))
    except KeyboardInterrupt:
        print("repro.serve: interrupted, shutting down", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
