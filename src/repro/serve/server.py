"""The compile service: an async batching front-end over the farm.

The paper frames RECORD as a *workbench* a designer queries repeatedly
while exploring the processor cube; this module is that workbench as a
long-running process.  A request travels::

    request --> content key --> [artifact store]  hot? answer now
                         \\--> [in-flight map]    pending? coalesce
                          \\--> [batch window]    cold: ride one farm
                                                  submission with its
                                                  contemporaries

Every layer reuses an existing subsystem: keys come from
:meth:`repro.cache.ArtifactCache.key_for` (so the hot-path question
"have we compiled this?" is answered by the same store the farm
workers populate), cold work goes through
:func:`repro.evalx.farm.compile_many` / ``verify_many`` (which dedup
within a batch and keep per-worker compiler pools warm), and
simulation uses the tiered :func:`repro.sim.harness.run_compiled`.

The server speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over ``asyncio.start_server`` sockets,
answers in completion order (hot hits overtake cold compiles), and
keeps per-stage timings plus cache/farm counters on every response.
A client that disconnects mid-batch cancels only its own waits; the
shared work completes for everyone else.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import dataclass, field
from functools import lru_cache, partial
from pathlib import Path
from time import perf_counter
from typing import Dict, Optional, Tuple

import repro.cache
from repro.evalx.farm import (
    CompileJob, VerifyJob, compile_many, default_workers,
    make_farm_executor, verify_many,
)
from repro.serve.batcher import Batcher
from repro.serve.protocol import (
    ProtocolError, Request, error_response, ok_response, parse_request,
    resolve_program, verify_key,
)

logger = logging.getLogger("repro.serve")

DEFAULT_PORT = 8357
DEFAULT_WINDOW = 0.010          # seconds the first cold job waits
DEFAULT_MAX_BATCH = 32


class ServeError(RuntimeError):
    """A request that failed inside the pipeline (compile error,
    simulation crash, unknown kernel...)."""


def default_options(compiler_name: str):
    """The options object a default-constructed compiler carries.

    Key derivation must hash the *normalized* options -- compilers
    replace ``None`` with their default dataclass before
    ``cached_compile`` builds the artifact key -- or the server's hot
    path would never match what the farm workers store.
    """
    if compiler_name == "record":
        from repro.codegen.pipeline import RecordOptions
        return RecordOptions()
    if compiler_name == "baseline":
        from repro.baseline.compiler import BaselineOptions
        return BaselineOptions()
    return None                   # 'hand' has no options


@lru_cache(maxsize=None)
def canonical_target_name(target: str) -> str:
    """The resolved target's self-reported name.

    ``cached_compile`` keys on ``compiler.target.name``, which for
    parameterized targets differs from the request alias (``"asip"``
    resolves to ``"asip(asip[16b, ...])"``).  The hot path must hash
    the same string the farm workers stored under, or those cells
    would recompile forever.
    """
    from repro.api import _resolve_target
    return _resolve_target(target).name


@dataclass
class ServeStats:
    """Lifetime counters of one server instance."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    coalesced: int = 0
    connections: int = 0
    disconnects_mid_flight: int = 0

    def count(self, op: Optional[str]) -> None:
        """Record one incoming request (``None``: unparseable op)."""
        self.requests += 1
        if op:
            self.by_op[op] = self.by_op.get(op, 0) + 1


class CompileService:
    """Protocol-agnostic request handler (the server minus sockets).

    Owning the whole dedup/batch/dispatch pipeline behind a plain
    ``async handle(payload) -> response`` makes the service testable
    without a socket in sight; :class:`ReproServer` adds the wire.
    """

    def __init__(self,
                 cache_dir: Optional[object] = None,
                 cache_max_bytes: Optional[int] = None,
                 window: float = DEFAULT_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 workers: Optional[int] = None,
                 use_pool: bool = True) -> None:
        cache_dir = Path(cache_dir) if cache_dir is not None \
            else repro.cache.default_cache_dir()
        # The service's own process also compiles (serial fallback when
        # no pool is available), so the global cache hook must be live
        # here exactly as it is in the farm workers.
        self.cache = repro.cache.configure(
            cache_dir,
            max_bytes=cache_max_bytes or repro.cache.DEFAULT_MAX_BYTES)
        self.workers = workers if workers is not None else default_workers()
        self.pool = make_farm_executor(self.workers, cache_dir,
                                       cache_max_bytes) if use_pool \
            else None
        self.compile_batcher = Batcher(
            partial(compile_many, executor=self.pool,
                    parallel=self.pool is not None),
            window=window, max_batch=max_batch)
        self.verify_batcher = Batcher(
            partial(verify_many, executor=self.pool,
                    parallel=self.pool is not None,
                    cache_dir=cache_dir,
                    cache_max_bytes=cache_max_bytes),
            window=window, max_batch=max_batch)
        self.stats = ServeStats()
        self.started = perf_counter()
        self._shutdown = asyncio.Event()
        #: Single-flight map: artifact key -> future of the first
        #: request currently obtaining that artifact.
        self._artifact_inflight: Dict[str, asyncio.Future] = {}
        #: Detached fill tasks (kept referenced until done).
        self._fill_tasks: set = set()

    # -- lifecycle ------------------------------------------------------

    async def close(self) -> None:
        """Stop batchers and the farm pool."""
        for task in list(self._fill_tasks):
            task.cancel()
        await self.compile_batcher.close()
        await self.verify_batcher.close()
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
            self.pool = None

    @property
    def shutdown_requested(self) -> asyncio.Event:
        return self._shutdown

    # -- request handling -----------------------------------------------

    async def handle(self, payload: object) -> dict:
        """One request payload in, one response payload out.

        Never raises: every failure becomes an error envelope, so one
        bad request cannot take down a connection (or the server).
        """
        try:
            request = parse_request(payload)
        except ProtocolError as exc:
            self.stats.count(None)
            self.stats.errors += 1
            request_id = payload.get("id") if isinstance(payload, dict) \
                else None
            return error_response(request_id, str(exc), "ProtocolError")
        self.stats.count(request.op)
        try:
            response = await self._dispatch(request)
        except asyncio.CancelledError:
            raise                      # client disconnects stay fatal
        except Exception as exc:                       # noqa: BLE001
            self.stats.errors += 1
            return error_response(request.id, str(exc),
                                  type(exc).__name__, op=request.op)
        self.stats.responses += 1
        return response

    async def _dispatch(self, request: Request) -> dict:
        if request.op == "ping":
            return ok_response(request, {"pong": True}, "server", {})
        if request.op == "stats":
            return ok_response(request, self.stats_json(), "server", {})
        if request.op == "shutdown":
            # Give the response a moment to flush before the listener
            # goes down; the event is what serve_until_shutdown awaits.
            asyncio.get_running_loop().call_later(
                0.05, self._shutdown.set)
            return ok_response(request, {"stopping": True}, "server", {})
        if request.op == "verify":
            return await self._verify(request)
        return await self._compile_ops(request)

    # Compile and simulate share the artifact pipeline; simulate adds
    # a tier-selected run of the compiled program.
    async def _compile_ops(self, request: Request) -> dict:
        timings: Dict[str, float] = {"queue": 0.0, "dedup": 0.0,
                                     "compile": 0.0, "simulate": 0.0}
        loop = asyncio.get_running_loop()
        compiled, key, served_by = await self._obtain_compiled(
            request, timings)
        if request.op == "compile":
            result = {
                "name": compiled.name,
                "target": request.target,
                "compiler": request.compiler,
                "words": compiled.words(),
                "listing": compiled.listing(),
            }
            return ok_response(request, result, served_by, timings,
                               key=key)
        started = perf_counter()
        from repro.sim.harness import run_compiled
        try:
            outputs, state = await loop.run_in_executor(
                None, partial(run_compiled, compiled, request.inputs,
                              sim=request.sim))
        except Exception as exc:                       # noqa: BLE001
            raise ServeError(f"simulation failed: "
                             f"{type(exc).__name__}: {exc}") from exc
        timings["simulate"] = perf_counter() - started
        # Same view as ``repro.api``'s ``CompilationResult.run``: the
        # program's declared outputs, not the whole read-back
        # environment.
        outputs = {
            name: outputs[name]
            for name, symbol in compiled.symbols.items()
            if symbol.role == "output" and name in outputs
        }
        result = {
            "outputs": outputs,
            "cycles": state.cycles,
            "sim": request.sim,
            "target": request.target,
            "compiler": request.compiler,
        }
        return ok_response(request, result, served_by, timings, key=key)

    async def _obtain_compiled(self, request: Request,
                               timings: Dict[str, float]):
        """Single-flight per artifact key: coalesce -> cache -> farm.

        The in-flight registration happens *before* the cache lookup
        and is released only after the artifact is on disk (workers
        store before their results travel back; the 'hand' path stores
        here).  That ordering closes the stale-miss race: a request
        arriving while a sibling is anywhere in this pipeline either
        finds the in-flight entry (coalesces) or -- if the sibling
        already resolved -- finds the artifact in the store.  Without
        it, a concurrent lookup could miss, lose the in-flight entry
        to the sibling's completion, and recompile.

        The lookup + compile runs in its own *fill task*, detached
        from the requesting connection: every waiter -- the first
        request included -- awaits the shared future through a shield.
        A client that disconnects mid-compile therefore cancels only
        its own wait; the fill task completes the artifact for every
        coalesced peer and for the store.
        """
        loop = asyncio.get_running_loop()
        started = perf_counter()
        try:
            program = await loop.run_in_executor(
                None, resolve_program, request)
        except Exception as exc:                       # noqa: BLE001
            raise ServeError(f"cannot resolve program: "
                             f"{type(exc).__name__}: {exc}") from exc
        compile_key = self.cache.key_for(
            program, request.compiler,
            default_options(request.compiler),
            canonical_target_name(request.target))

        if compile_key is None:
            # Unkeyable program: no store, no coalescing -- straight
            # through the batching window.
            timings["dedup"] = perf_counter() - started
            compiled, queue_s, run_s = await self._farm_compile(
                request, program)
            timings["queue"] = queue_s
            timings["compile"] = run_s
            return compiled, None, "farm"

        pending = self._artifact_inflight.get(compile_key)
        if pending is not None:
            self.stats.coalesced += 1
            timings["dedup"] = perf_counter() - started
            compiled, _how, queue_s, run_s = await asyncio.shield(
                pending)
            timings["queue"] = queue_s
            timings["compile"] = run_s
            return compiled, compile_key, "coalesced"

        future = loop.create_future()
        self._artifact_inflight[compile_key] = future
        fill = loop.create_task(
            self._fill_artifact(compile_key, future, request, program))
        self._fill_tasks.add(fill)
        fill.add_done_callback(self._fill_tasks.discard)
        timings["dedup"] = perf_counter() - started
        compiled, served_by, queue_s, run_s = await asyncio.shield(
            future)
        timings["queue"] = queue_s
        timings["compile"] = run_s
        return compiled, compile_key, served_by

    async def _fill_artifact(self, key: str, future: asyncio.Future,
                             request: Request, program) -> None:
        """Obtain one artifact (store hit or farm) and resolve its
        single-flight future.  Runs detached from any connection."""
        loop = asyncio.get_running_loop()
        try:
            compiled = await loop.run_in_executor(
                None, self.cache.get, key)
            if compiled is not None:
                self.stats.cache_hits += 1
                self._resolve_inflight(
                    key, future, (compiled, "cache", 0.0, 0.0))
                return
            compiled, queue_s, run_s = await self._farm_compile(
                request, program)
            # The 'hand' reference path bypasses cached_compile; store
            # its artifact before releasing the in-flight entry so
            # hand repeats are hot too.
            if request.compiler == "hand":
                await loop.run_in_executor(
                    None, self.cache.put, key, compiled)
            self._resolve_inflight(
                key, future, (compiled, "farm", queue_s, run_s))
        except BaseException as exc:
            self._resolve_inflight(key, future, exception=exc)
            if isinstance(exc, asyncio.CancelledError):
                raise

    def _resolve_inflight(self, key, future, value=None,
                          exception: Optional[BaseException] = None
                          ) -> None:
        """Release one single-flight entry, tolerating waiters that
        disconnected while the work ran."""
        if future is None:
            return
        if self._artifact_inflight.get(key) is future:
            del self._artifact_inflight[key]
        if future.cancelled():
            return
        if exception is not None:
            future.set_exception(exception)
            future.exception()     # no never-retrieved warnings
        else:
            future.set_result(value)

    async def _farm_compile(self, request: Request, program):
        """Dispatch one cold compile through the batching window."""
        if request.kernel is not None:
            # Registry-name jobs pickle in a few bytes; keep them that
            # way.
            job = CompileJob(kernel=request.kernel,
                             compiler=request.compiler,
                             target=request.target)
        else:
            from repro.verify.corpus import program_to_spec
            try:
                spec_blob = json.dumps(program_to_spec(program),
                                       sort_keys=True)
            except Exception as exc:                   # noqa: BLE001
                raise ServeError(
                    "program is not serializable for the farm") from exc
            job = CompileJob(kernel=program.name,
                             compiler=request.compiler,
                             target=request.target,
                             program_spec=spec_blob)
        # Coalescing already happened at the artifact level, so the
        # batcher only contributes the window; farm batch dedup is a
        # second line of defense for unkeyable programs.
        result, _served_by, queue_s, run_s = \
            await self.compile_batcher.submit(None, job)
        if not result.ok:
            raise ServeError(f"{result.error_type}: {result.error}")
        return result.compiled, queue_s, run_s

    async def _verify(self, request: Request) -> dict:
        timings: Dict[str, float] = {"queue": 0.0, "dedup": 0.0,
                                     "compile": 0.0, "simulate": 0.0}
        loop = asyncio.get_running_loop()
        started = perf_counter()
        try:
            program = await loop.run_in_executor(
                None, resolve_program, request)
            from repro.verify.corpus import program_to_spec
            spec = program_to_spec(program)
        except Exception as exc:                       # noqa: BLE001
            raise ServeError(f"cannot resolve program: "
                             f"{type(exc).__name__}: {exc}") from exc
        key = verify_key(request, program)
        timings["dedup"] = perf_counter() - started
        job = VerifyJob(program_spec=spec,
                        input_sets=tuple(request.input_sets),
                        targets=tuple(request.targets))
        result, served_by, queue_s, run_s = \
            await self.verify_batcher.submit(key, job)
        timings["queue"] = queue_s
        timings["compile"] = run_s
        if not result.ok:
            raise ServeError(f"{result.error_type}: {result.error}")
        verdict = result.verdict
        payload = {
            "name": verdict.name,
            "ok": verdict.ok,
            "cells": len(verdict.outcomes),
            "mismatches": [{
                "cell": outcome.cell.describe(),
                "class": outcome.mismatch_class,
                "detail": outcome.detail,
            } for outcome in verdict.mismatches],
        }
        return ok_response(request, payload, served_by, timings, key=key)

    # -- introspection --------------------------------------------------

    def stats_json(self) -> dict:
        """Everything a dashboard wants, one JSON object."""
        return {
            "uptime_seconds": round(perf_counter() - self.started, 3),
            "workers": self.workers,
            "pool": "process" if self.pool is not None else "serial",
            "requests": self.stats.requests,
            "responses": self.stats.responses,
            "errors": self.stats.errors,
            "by_op": dict(self.stats.by_op),
            "cache_hits": self.stats.cache_hits,
            "coalesced": self.stats.coalesced,
            "inflight": len(self._artifact_inflight),
            "connections": self.stats.connections,
            "disconnects_mid_flight":
                self.stats.disconnects_mid_flight,
            "compile_batcher": self.compile_batcher.stats.to_json(),
            "verify_batcher": self.verify_batcher.stats.to_json(),
            "cache": self.cache.stats.to_json(),
        }


class ReproServer:
    """The NDJSON-over-TCP wire around a :class:`CompileService`."""

    def __init__(self, service: CompileService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        logger.info("repro.serve listening on %s:%d",
                    self.host, self.port)
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or cancellation)."""
        await self.service.shutdown_requested.wait()
        await self.close()

    async def close(self) -> None:
        """Stop listening and shut the service down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.service.stats.connections += 1
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    await self._send(writer, write_lock, error_response(
                        None, f"bad JSON: {exc}", "ProtocolError"))
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._respond(payload, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            # The client is gone: cancel its outstanding responses.
            # Batched work they were waiting on is shielded and
            # completes for cache + coalesced peers regardless.
            if tasks:
                self.service.stats.disconnects_mid_flight += len(tasks)
                for task in list(tasks):
                    task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _respond(self, payload: object,
                       writer: asyncio.StreamWriter,
                       write_lock: asyncio.Lock) -> None:
        response = await self.service.handle(payload)
        try:
            await self._send(writer, write_lock, response)
        except (ConnectionResetError, OSError):
            pass                       # client vanished before reading

    @staticmethod
    async def _send(writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, response: dict) -> None:
        blob = json.dumps(response, sort_keys=True) + "\n"
        async with write_lock:
            writer.write(blob.encode("utf-8"))
            await writer.drain()


async def serve_forever(host: str = "127.0.0.1",
                        port: int = DEFAULT_PORT,
                        **service_kwargs) -> None:
    """Build a service + server and run until shutdown is requested."""
    service = CompileService(**service_kwargs)
    server = ReproServer(service, host=host, port=port)
    await server.start()
    print(f"repro.serve listening on {server.host}:{server.port} "
          f"({service.stats_json()['pool']} farm, "
          f"{service.workers} workers)", flush=True)
    try:
        await server.serve_until_shutdown()
    finally:
        await server.close()
