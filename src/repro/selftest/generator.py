"""Retargetable self-test program generation.

Fault model: *decoder faults* -- instruction opcode A executes as
opcode B (a stuck control line selects the wrong function unit
operation).  This is the classic functional-level fault model for
processor self-test, and it is observable purely through architectural
state, which is all an instruction-set model can see.

Generation strategy (the retargetable part): test programs are random
straight-line expression programs over a small set of memory variables,
compiled by the ordinary RECORD pipeline for the target under test.
The compiler's code selection performs the "value justification"
(loading operand values into the right special registers) and "response
propagation" (storing results back to observable memory) that dedicated
ATPG-style generators do by search -- exactly the observation behind
the paper's Sec. 4.5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.asm import AsmInstr
from repro.codegen.compiled import CompiledProgram
from repro.codegen.pipeline import RecordCompiler
from repro.ir.program import Program
from repro.sim.harness import run_many
from repro.sim.machine import MachineState


@dataclass(frozen=True)
class Fault:
    """A decoder fault: ``original`` executes as ``replacement``."""

    original: str
    replacement: str

    @property
    def name(self) -> str:
        return f"{self.original}->{self.replacement}"


class FaultySim:
    """Wraps a target model, injecting one decoder fault.

    Works with both simulators: the reference interpreter calls
    ``execute`` (which swaps inline), the translation-caching decoder
    calls ``decode_instr`` (where the swap belongs conceptually -- a
    decoder fault *is* a wrong decode) and then the fault-free target's
    binding hooks see the already-swapped instruction.  Each wrapper
    instance is a distinct decode-cache key, so faulty decoded programs
    never collide with clean ones.
    """

    def __init__(self, target, fault: Fault):
        self._target = target
        self.fault = fault
        self.name = f"{target.name}+{fault.name}"
        self.fpc = target.fpc

    def initial_state(self) -> MachineState:
        """Delegate to the fault-free target."""
        return self._target.initial_state()

    def repeat_count(self, state, instr) -> int:
        """Delegate to the fault-free target."""
        return self._target.repeat_count(state, instr)

    def execute(self, state, instr: AsmInstr) -> Optional[str]:
        """Execute ``instr``, decoding the faulty opcode as its swap."""
        return self._target.execute(state, self._swap(instr))

    def decode_instr(self, instr: AsmInstr) -> AsmInstr:
        """The fault, expressed as a decode hook (fast simulator)."""
        return self._target.decode_instr(self._swap(instr))

    def is_branch(self, instr: AsmInstr) -> bool:
        """Delegate to the fault-free target (the view is pre-swapped)."""
        return self._target.is_branch(instr)

    def static_repeat(self, instr: AsmInstr) -> Optional[int]:
        """Delegate to the fault-free target (the view is pre-swapped)."""
        return self._target.static_repeat(instr)

    def pre_dispatch(self, instr: AsmInstr):
        """Delegate to the fault-free target (the view is pre-swapped)."""
        return self._target.pre_dispatch(instr)

    def bind_step(self, instr: AsmInstr):
        """Delegate to the fault-free target (the view is pre-swapped)."""
        return self._target.bind_step(instr)

    def emit_py(self, instr: AsmInstr, ctx) -> bool:
        """Delegate to the fault-free target (the view is pre-swapped)."""
        return self._target.emit_py(instr, ctx)

    def emit_pre_py(self, instr: AsmInstr, ctx) -> bool:
        """Delegate to the fault-free target (the view is pre-swapped)."""
        return self._target.emit_pre_py(instr, ctx)

    def _swap(self, instr: AsmInstr) -> AsmInstr:
        if instr.opcode != self.fault.original:
            return instr
        # Replacement opcodes in a fault universe are chosen with
        # compatible operand shapes, so operands pass through.
        return AsmInstr(opcode=self.fault.replacement,
                        operands=instr.operands,
                        words=instr.words, cycles=instr.cycles,
                        modes=instr.modes, parallel=instr.parallel)


# Decoder-fault universes per target family.  Pairs are chosen with
# identical operand shapes so the faulty instruction still decodes.
TC25_FAULTS: List[Fault] = [
    Fault("ADD", "SUB"), Fault("SUB", "ADD"),
    Fault("APAC", "SPAC"), Fault("SPAC", "APAC"),
    Fault("LTA", "LTS"), Fault("LTS", "LTA"),
    Fault("SFL", "SFR"), Fault("SFR", "SFL"),
    Fault("AND", "OR"), Fault("OR", "XOR"), Fault("XOR", "AND"),
    Fault("ADDK", "SUBK"), Fault("SUBK", "ADDK"),
    Fault("NEG", "ABS"), Fault("ABS", "NEG"),
    Fault("ZAC", "NOP"), Fault("SACL", "NOP"),
    Fault("LAC", "NOP"), Fault("LT", "NOP"), Fault("MPY", "NOP"),
    Fault("PAC", "APAC"), Fault("APAC", "PAC"),
    Fault("DMOV", "NOP"),
]

RISC_FAULTS: List[Fault] = [
    Fault("ADD", "SUB"), Fault("SUB", "ADD"),
    Fault("MUL", "ADD"), Fault("AND", "OR"), Fault("OR", "XOR"),
    Fault("XOR", "AND"), Fault("MIN", "MAX"), Fault("MAX", "MIN"),
    Fault("SLLI", "SRAI"), Fault("SRAI", "SLLI"),
    Fault("NEG", "ABSR"), Fault("ABSR", "NEG"),
    Fault("LW", "NOP"), Fault("SW", "NOP"),
]


def fault_universe(target) -> List[Fault]:
    """The decoder-fault list appropriate for a target family."""
    if target.name.startswith("risc"):
        return list(RISC_FAULTS)
    return list(TC25_FAULTS)


# ----------------------------------------------------------------------
# Test-program generation
# ----------------------------------------------------------------------

def _random_program(rng: random.Random, index: int,
                    variables: int = 4,
                    statements: int = 4,
                    depth: int = 3) -> Program:
    """One random straight-line test program.

    The grammar itself lives in :mod:`repro.verify.progen` (the
    conformance fuzzer generalizes it with loops, arrays and saturating
    stores); the straight-line subset used here replays the historical
    rng sequence, so recorded seeds keep their programs.
    """
    from repro.verify.progen import straight_line_program
    return straight_line_program(rng, index, variables=variables,
                                 statements=statements, depth=depth)


@dataclass
class SelfTestSuite:
    """Compiled self-test programs with their golden signatures."""

    target_name: str
    programs: List[CompiledProgram]
    inputs: List[Dict[str, int]]
    signatures: List[Tuple[int, ...]]


@dataclass
class SelfTestReport:
    """Coverage result of running a suite against a fault universe."""

    suite: SelfTestSuite
    detected: List[Fault] = field(default_factory=list)
    undetected: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0

    def summary(self) -> str:
        """One-paragraph coverage report."""
        total = len(self.detected) + len(self.undetected)
        lines = [
            f"self-test for {self.suite.target_name}: "
            f"{len(self.suite.programs)} programs, "
            f"{len(self.detected)}/{total} faults detected "
            f"({self.coverage:.0%})"
        ]
        if self.undetected:
            names = ", ".join(f.name for f in self.undetected)
            lines.append(f"  undetected: {names}")
        return "\n".join(lines)


def _signature(compiled: CompiledProgram,
               inputs: Dict[str, int],
               target=None) -> Optional[Tuple[int, ...]]:
    try:
        # run_many keeps the decoded form cached per (target, code), so
        # repeating the corpus across the fault universe skips decode.
        outputs, _state = run_many(compiled, [inputs], target=target)[0]
    except Exception:
        return None       # a fault may crash the machine: detected
    return tuple(int(outputs[name])
                 for name in sorted(compiled.symbols)
                 if compiled.symbols[name].role == "output")


def generate_self_test(target, programs: int = 12,
                       seed: int = 0) -> SelfTestSuite:
    """Compile a self-test suite for ``target`` (golden signatures
    included)."""
    rng = random.Random(seed)
    compiler = RecordCompiler(target)
    compiled_programs: List[CompiledProgram] = []
    all_inputs: List[Dict[str, int]] = []
    signatures: List[Tuple[int, ...]] = []
    for index in range(programs):
        program = _random_program(rng, index)
        compiled = compiler.compile(program)
        inputs = {name: rng.randint(-120, 120)
                  for name, symbol in program.symbols.items()
                  if symbol.role == "input"}
        golden = _signature(compiled, inputs)
        if golden is None:
            raise RuntimeError("golden run failed -- compiler bug")
        compiled_programs.append(compiled)
        all_inputs.append(inputs)
        signatures.append(golden)
    return SelfTestSuite(target_name=target.name,
                         programs=compiled_programs,
                         inputs=all_inputs, signatures=signatures)


def run_self_test(target, suite: Optional[SelfTestSuite] = None,
                  faults: Optional[Sequence[Fault]] = None,
                  programs: int = 12, seed: int = 0) -> SelfTestReport:
    """Measure decoder-fault coverage of a self-test suite."""
    if suite is None:
        suite = generate_self_test(target, programs=programs, seed=seed)
    if faults is None:
        faults = fault_universe(target)
    report = SelfTestReport(suite=suite)
    for fault in faults:
        faulty = FaultySim(target, fault)
        detected = False
        for compiled, inputs, golden in zip(suite.programs, suite.inputs,
                                            suite.signatures):
            signature = _signature(compiled, inputs, target=faulty)
            if signature != golden:
                detected = True
                break
        if detected:
            report.detected.append(fault)
        else:
            report.undetected.append(fault)
    return report
