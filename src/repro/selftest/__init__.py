"""Self-test program generation (Sec. 4.5 of the paper).

"Testing of processor cores can be performed by running self-test
programs on the processor to be tested.  Automatic generation of
self-test programs is possible with a special retargetable compiler
that is able to propagate values just like ATPG tools."  [17][7]

:mod:`repro.selftest.generator` implements the retargetable flavour:
random straight-line MiniDFL-level programs are compiled *with the
RECORD pipeline itself* (so operand justification and response
propagation fall out of ordinary code generation), executed on the
fault-free simulator to obtain golden signatures, and then replayed on
fault-injected machines.  A fault is *detected* when any test program's
signature diverges.
"""

from repro.selftest.generator import (
    Fault, FaultySim, SelfTestReport, generate_self_test, run_self_test,
)

__all__ = ["Fault", "FaultySim", "SelfTestReport", "generate_self_test",
           "run_self_test"]
