"""One tuner measurement: compile a configuration, count real cycles.

A *measurement cell* is ``(program, target, options, input sets, sim
tier)``.  Measuring it means compiling the program with exactly those
options (through the ordinary artifact-cached compile path), running
every input set on the requested simulator tier (the jit tier by
default -- real cycles, not the static predictor), and comparing the
simulated outputs against the independent IR-level oracle
(:mod:`repro.verify.oracle`).  The result is a plain
:class:`Measurement` record:

- ``cycles``  -- per-input-set cycle counts, ``total_cycles`` their sum
  (the search objective);
- ``words``   -- static code size (the deterministic tie-breaker);
- ``correct`` -- did every input set match the oracle?  A fast but
  wrong configuration is *measured* (the record is honest) but the
  search layer refuses to select it;
- ``error``   -- a captured compile/simulation failure.  An options
  combination a target rejects (:class:`CompileError`) is a valid
  search outcome, not a crash.

Records are content-addressed in the persistent
:class:`~repro.cache.ArtifactCache` (:meth:`get_record` /
:meth:`put_record`) keyed by every ingredient plus the code-version
stamp, so re-tuning a kernel is free: the second run replays the
measurement table byte-for-byte with zero fresh compiles and zero
fresh simulations (``tests/tune/test_measure.py`` pins this).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.codegen.pipeline import RecordCompiler, RecordOptions

RECORD_FORMAT = 1

#: Measurements guard against runaway configurations with the same
#: step bound the conformance harness uses.
MAX_STEPS = 2_000_000


@dataclass
class Measurement:
    """One measured cell (see module docstring for field semantics)."""

    target: str
    options: Dict[str, object]
    cycles: List[int] = field(default_factory=list)
    total_cycles: int = 0
    words: int = 0
    correct: bool = False
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Did this call replay a cached record (``True``) or actually
    #: compile-and-simulate (``False``)?  Never part of the cached
    #: record itself -- it describes this run, not the cell.
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        """The cacheable record (canonical; excludes ``cached``)."""
        return {
            "format": RECORD_FORMAT,
            "target": self.target,
            "options": self.options,
            "cycles": list(self.cycles),
            "total_cycles": self.total_cycles,
            "words": self.words,
            "correct": self.correct,
            "error": self.error,
            "error_type": self.error_type,
        }

    @staticmethod
    def from_json(record: dict, cached: bool = False) -> "Measurement":
        """Rebuild a measurement from its cached record."""
        return Measurement(
            target=record["target"],
            options=dict(record["options"]),
            cycles=[int(c) for c in record["cycles"]],
            total_cycles=int(record["total_cycles"]),
            words=int(record["words"]),
            correct=bool(record["correct"]),
            error=record.get("error"),
            error_type=record.get("error_type"),
            cached=cached,
        )


def measurement_key(program, target_name: str, options: RecordOptions,
                    input_sets: Sequence[Mapping[str, object]],
                    sim: str = "jit") -> Optional[str]:
    """Content key of one measurement cell (``None``: uncacheable).

    Mirrors :meth:`repro.cache.ArtifactCache.key_for`: the program in
    corpus spec form, the options through the canonical
    :func:`~repro.cache.options_payload` normalization, plus the input
    environments, the simulator tier and the code-version stamp.
    """
    from repro.cache import code_version, options_payload
    from repro.verify.corpus import program_to_spec
    try:
        payload = json.dumps({
            "format": RECORD_FORMAT,
            "kind": "measurement",
            "program": program_to_spec(program),
            "target": target_name,
            "options": options_payload(options),
            "inputs": list(input_sets),
            "sim": sim,
            "code": code_version(),
        }, sort_keys=True)
    except Exception:                                  # noqa: BLE001
        return None
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Per-process pools (mirror repro.evalx.farm._POOL / _VERIFY_SESSION)
# ----------------------------------------------------------------------

_TARGETS: Dict[str, object] = {}

#: Oracle-expected outputs per (program-ish key): computed once per
#: program and input batch, shared by every candidate configuration.
_EXPECTED: Dict[str, List[Dict[str, object]]] = {}
_EXPECTED_LIMIT = 64


def _target_for(name: str):
    target = _TARGETS.get(name)
    if target is None:
        from repro.api import _resolve_target
        target = _resolve_target(name)
        _TARGETS[name] = target
    return target


def clear_measure_pools() -> None:
    """Drop this process's pooled targets and oracle results."""
    _TARGETS.clear()
    _EXPECTED.clear()


def _outputs_of(program, env: Mapping[str, object]) -> Dict[str, object]:
    return {name: env[name]
            for name, symbol in program.symbols.items()
            if symbol.role == "output" and name in env}


def expected_outputs(program, target,
                     input_sets: Sequence[Mapping[str, object]]
                     ) -> List[Dict[str, object]]:
    """Oracle-expected outputs per input set (pooled per process).

    This is the differential safety net's reference side: it shares
    nothing with the compiler or the simulators (see
    :mod:`repro.verify.oracle`), so "tuned code still agrees" is
    evidence, not a tautology.
    """
    try:
        from repro.verify.corpus import program_to_spec
        cache_key = json.dumps({
            "program": program_to_spec(program),
            "inputs": list(input_sets),
            "width": target.fpc.width,
        }, sort_keys=True)
    except Exception:                                  # noqa: BLE001
        cache_key = None
    if cache_key is not None and cache_key in _EXPECTED:
        return _EXPECTED[cache_key]
    from repro.verify.oracle import Oracle
    oracle = Oracle(target.fpc)
    expected = [_outputs_of(program, oracle.run(program, inputs))
                for inputs in input_sets]
    if cache_key is not None:
        if len(_EXPECTED) >= _EXPECTED_LIMIT:
            _EXPECTED.clear()
        _EXPECTED[cache_key] = expected
    return expected


# ----------------------------------------------------------------------
# The measurement itself
# ----------------------------------------------------------------------

def measure_cell(program, target_name: str, options: RecordOptions,
                 input_sets: Sequence[Mapping[str, object]],
                 sim: str = "jit") -> Measurement:
    """Measure one cell, through the persistent record cache.

    With an active :mod:`repro.cache`, a previously measured cell is
    answered from its stored record (``cached=True``) without
    compiling or simulating anything; otherwise the cell is compiled
    (artifact-cached itself), simulated over every input set, checked
    against the oracle, and the record stored for next time.
    """
    from repro.cache import active_cache
    cache = active_cache()
    key = None
    if cache is not None:
        key = measurement_key(program, target_name, options,
                              input_sets, sim)
        if key is not None:
            record = cache.get_record(key)
            if record is not None \
                    and record.get("format") == RECORD_FORMAT:
                return Measurement.from_json(record, cached=True)

    measurement = _measure_uncached(program, target_name, options,
                                    input_sets, sim)
    if cache is not None and key is not None:
        cache.put_record(key, measurement.to_json())
    return measurement


def _measure_uncached(program, target_name: str, options: RecordOptions,
                      input_sets: Sequence[Mapping[str, object]],
                      sim: str) -> Measurement:
    """Compile + simulate + oracle-check one cell (no record cache)."""
    measurement = Measurement(target=target_name,
                              options=options.to_dict())
    target = _target_for(target_name)
    try:
        compiled = RecordCompiler(target, options).compile(program)
    except Exception as exc:                           # noqa: BLE001
        measurement.error = str(exc)
        measurement.error_type = type(exc).__name__
        return measurement
    measurement.words = compiled.words()

    from repro.sim.harness import run_compiled
    try:
        expected = expected_outputs(program, target, input_sets)
        correct = True
        for inputs, want in zip(input_sets, expected):
            env, state = run_compiled(compiled, inputs, sim=sim,
                                      max_steps=MAX_STEPS)
            measurement.cycles.append(state.cycles)
            if _outputs_of(program, env) != want:
                correct = False
        measurement.total_cycles = sum(measurement.cycles)
        measurement.correct = correct
    except Exception as exc:                           # noqa: BLE001
        measurement.error = str(exc)
        measurement.error_type = type(exc).__name__
        measurement.cycles = []
        measurement.total_cycles = 0
        measurement.correct = False
    return measurement
