"""The staged, budgeted, farm-parallel configuration search.

Stage 0 measures the default configuration (the yardstick every other
cell is judged against).  Stage 1 *screens*: every single-knob
deviation from the default (:func:`repro.tune.space.screening_candidates`)
is measured, in one farm batch.  Stage 2 *focuses*: the knobs whose
best deviation strictly improved total cycles become "movers", and the
cross-product of their improving values (plus leave-alone) is
enumerated deterministically and measured up to the remaining
evaluation budget.  The budget counts unique configurations measured,
default included -- cached record replays count too, so a re-tune
walks the identical candidate list.

Selection is deterministic and oracle-gated: candidates are ranked by
``(total cycles, words, canonical options JSON)``; any candidate whose
measurement failed the oracle comparison (or failed to compile) is
*rejected* regardless of speed, and the gate walks down the ranking
until a configuration that agrees with the oracle wins.  The default
configuration wins ties, so an entry is only recorded when the tuned
configuration is strictly faster.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.codegen.pipeline import RecordOptions
from repro.tune.measure import Measurement, measure_cell
from repro.tune.space import cross_candidates, relevant_knobs, \
    screening_candidates

DEFAULT_BUDGET = 48
DEFAULT_INPUTS = 2


class TuneError(RuntimeError):
    """A tune run cannot proceed (bad program, no measurable default)."""


@dataclass(frozen=True)
class TuneConfig:
    """Everything that determines a tune run's candidate list."""

    budget: int = DEFAULT_BUDGET
    inputs_per_program: int = DEFAULT_INPUTS
    sim: str = "jit"

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("the evaluation budget must be >= 1")
        if self.inputs_per_program < 1:
            raise ValueError("need at least one input set")


@dataclass
class TuneOutcome:
    """The full result of tuning one (program, target) cell."""

    program: str
    target: str
    config: TuneConfig
    default: Optional[Measurement] = None
    #: Every measured candidate, in measurement order (default first,
    #: screening, then cross-product) -- the "full measurement table".
    table: List[Measurement] = field(default_factory=list)
    best_options: Optional[Dict[str, object]] = None
    best_cycles: Optional[int] = None
    #: Options JSON of fast-but-wrong (or unmeasurable) candidates the
    #: oracle gate rejected while walking the ranking.
    rejected: List[Dict[str, object]] = field(default_factory=list)
    movers: List[str] = field(default_factory=list)
    budget_used: int = 0
    fresh_measurements: int = 0
    cached_measurements: int = 0
    elapsed_seconds: float = 0.0

    @property
    def improved(self) -> bool:
        """Did a non-default configuration strictly win?"""
        return (self.best_options is not None
                and self.default is not None
                and self.best_cycles is not None
                and self.best_cycles < self.default.total_cycles)

    @property
    def tuned_options(self) -> Optional[RecordOptions]:
        """The winning options object (``None``: default won)."""
        if not self.improved:
            return None
        return RecordOptions.from_dict(self.best_options)

    def to_json(self) -> dict:
        """JSON view; the ``table`` is byte-stable across re-runs
        (no wall-clock inside it)."""
        return {
            "program": self.program,
            "target": self.target,
            "budget": self.config.budget,
            "inputs_per_program": self.config.inputs_per_program,
            "sim": self.config.sim,
            "default_cycles": (self.default.total_cycles
                               if self.default else None),
            "default_words": (self.default.words
                              if self.default else None),
            "best_options": self.best_options,
            "best_cycles": self.best_cycles,
            "improved": self.improved,
            "movers": list(self.movers),
            "rejected": list(self.rejected),
            "budget_used": self.budget_used,
            "table": [m.to_json() for m in self.table],
        }


# ----------------------------------------------------------------------
# Measurement dispatch (farm batch or serial)
# ----------------------------------------------------------------------

def _measure_batch(program, target_name: str,
                   candidates: Sequence[RecordOptions],
                   input_sets: Sequence[Mapping[str, object]],
                   sim: str, jobs: Optional[int]) -> List[Measurement]:
    """Measure a candidate batch, farm-parallel when possible.

    Falls back to in-process serial measurement when the program does
    not serialize for the farm (exotic shapes) or when ``jobs`` asks
    for one worker; results are identical either way -- measurement is
    a pure function of the cell, and the shared record cache makes the
    two paths literally replay each other.
    """
    candidates = list(candidates)
    if not candidates:
        return []
    spec_blob = None
    if jobs is None or jobs > 1:
        from repro.verify.corpus import program_to_spec
        try:
            spec_blob = json.dumps(program_to_spec(program),
                                   sort_keys=True)
            inputs_blob = json.dumps(list(input_sets), sort_keys=True)
        except Exception:                              # noqa: BLE001
            spec_blob = None
    if spec_blob is not None:
        from repro.evalx.farm import MeasureJob, measure_many
        measure_jobs = [
            MeasureJob(program_spec=spec_blob, target=target_name,
                       options_json=json.dumps(options.to_dict(),
                                               sort_keys=True),
                       inputs_json=inputs_blob, sim=sim)
            for options in candidates
        ]
        results = measure_many(measure_jobs, max_workers=jobs)
        measurements: List[Measurement] = []
        for options, result in zip(candidates, results):
            if result.ok:
                measurements.append(
                    Measurement.from_json(result.payload,
                                          cached=result.cached))
            else:
                measurements.append(Measurement(
                    target=target_name, options=options.to_dict(),
                    error=result.error, error_type=result.error_type))
        return measurements
    return [measure_cell(program, target_name, options, input_sets,
                         sim=sim)
            for options in candidates]


# ----------------------------------------------------------------------
# The search
# ----------------------------------------------------------------------

def _rank_key(measurement: Measurement) -> Tuple:
    return (measurement.total_cycles, measurement.words,
            json.dumps(measurement.options, sort_keys=True))


def tune_program(program,
                 target: str = "tc25",
                 input_sets: Optional[
                     Sequence[Mapping[str, object]]] = None,
                 config: Optional[TuneConfig] = None,
                 default: Optional[RecordOptions] = None,
                 jobs: Optional[int] = None,
                 seed: int = 0) -> TuneOutcome:
    """Search the knob space for one (program, target); see module doc.

    ``input_sets`` defaults to :func:`default_input_sets` (seeded,
    deterministic).  ``default`` substitutes a different base
    configuration to deviate from (the ablation benchmarks tune
    around non-standard bases this way).  ``jobs`` sizes the farm
    pool (``None``: the farm's default; ``1``: serial in-process).
    """
    config = config or TuneConfig()
    default = default or RecordOptions()
    if input_sets is None:
        input_sets = default_input_sets(
            program, config.inputs_per_program, seed=seed)
    started = perf_counter()
    outcome = TuneOutcome(program=program.name, target=target,
                          config=config)

    def account(measurements: Sequence[Measurement]) -> None:
        for measurement in measurements:
            outcome.table.append(measurement)
            outcome.budget_used += 1
            if measurement.cached:
                outcome.cached_measurements += 1
            else:
                outcome.fresh_measurements += 1

    # -- stage 0: the yardstick ----------------------------------------
    default_measurement = _measure_batch(
        program, target, [default], input_sets, config.sim, jobs)[0]
    account([default_measurement])
    outcome.default = default_measurement
    if not default_measurement.ok:
        raise TuneError(
            f"default configuration does not compile/simulate on "
            f"{target}: {default_measurement.error_type}: "
            f"{default_measurement.error}")

    # -- stage 1: screening --------------------------------------------
    remaining = config.budget - outcome.budget_used
    screening = screening_candidates(default, target)[:max(0, remaining)]
    screened = _measure_batch(program, target,
                              [options for _knob, options in screening],
                              input_sets, config.sim, jobs)
    account(screened)

    # Movers: knobs with at least one correct, strictly-improving
    # deviation; keep each mover's improving values, best first.
    improving: Dict[str, List[Tuple[Tuple, object]]] = {}
    for (knob, options), measurement in zip(screening, screened):
        if not measurement.ok or not measurement.correct:
            continue
        if measurement.total_cycles < default_measurement.total_cycles:
            improving.setdefault(knob, []).append(
                (_rank_key(measurement), getattr(options, knob)))
    movers = {
        knob: [value for _key, value in sorted(values)]
        for knob, values in improving.items()
    }
    outcome.movers = [knob for knob, _values in relevant_knobs(target)
                      if knob in movers]

    # -- stage 2: focused cross-product --------------------------------
    remaining = config.budget - outcome.budget_used
    if len(movers) > 1 and remaining > 0:
        seen = {json.dumps(m.options, sort_keys=True)
                for m in outcome.table}
        crossing = [options for options in cross_candidates(default,
                                                            movers)
                    if json.dumps(options.to_dict(), sort_keys=True)
                    not in seen]
        crossing = crossing[:remaining]
        account(_measure_batch(program, target, crossing, input_sets,
                               config.sim, jobs))

    # -- selection + oracle gate ---------------------------------------
    ranked = sorted(
        (m for m in outcome.table if m.ok),
        key=_rank_key)
    best: Optional[Measurement] = None
    default_key = _rank_key(default_measurement) \
        if default_measurement.correct else None
    for candidate in ranked:
        if default_key is not None \
                and _rank_key(candidate) >= default_key:
            # Nothing left can beat the (correct) default: ties and
            # everything slower resolve to the default configuration.
            break
        if verify_selection(candidate):
            best = candidate
            break
        outcome.rejected.append(dict(candidate.options))
    if best is not None:
        outcome.best_options = dict(best.options)
        outcome.best_cycles = best.total_cycles
    elif default_measurement.correct:
        outcome.best_options = dict(default_measurement.options)
        outcome.best_cycles = default_measurement.total_cycles
    else:
        raise TuneError(
            f"no configuration of {program.name} on {target} agrees "
            "with the oracle -- this is a compiler bug, not a tuning "
            "outcome; run repro.verify on this program")
    outcome.elapsed_seconds = perf_counter() - started
    return outcome


def verify_selection(measurement: Measurement) -> bool:
    """The oracle gate: may this measurement be selected as best?

    Every measurement already carries the differential verdict of its
    own compile-and-simulate against the independent IR-level oracle
    (see :func:`repro.tune.measure.measure_cell`); the gate re-checks
    it at selection time so a fast-but-wrong configuration -- however
    it got into the table -- is rejected before it can be recorded.
    Split out (rather than inlined in the ranking) so tests can prove
    the gate fires.
    """
    return measurement.ok and measurement.correct


# ----------------------------------------------------------------------
# Inputs + entry points
# ----------------------------------------------------------------------

def default_input_sets(program, count: int = DEFAULT_INPUTS,
                       seed: int = 0) -> List[Dict[str, object]]:
    """Seeded, deterministic input environments for any program.

    DSPStone kernels use their registered input makers (the same
    distributions Table 1 verifies against); everything else draws
    from the conformance generator's input model.  Identical
    ``(program, count, seed)`` always yields identical environments,
    which the measurement-cache key depends on.
    """
    import random

    from repro.dspstone import KERNEL_NAMES, kernel
    if program.name in KERNEL_NAMES:
        spec = kernel(program.name)
        if json.dumps(_spec_of(spec.program), sort_keys=True) \
                == json.dumps(_spec_of(program), sort_keys=True):
            return [spec.inputs(seed=seed + k) for k in range(count)]
    from repro.verify.progen import generate_inputs
    return [generate_inputs(random.Random(seed * 1_000_003 + k),
                            program)
            for k in range(count)]


def _spec_of(program) -> dict:
    from repro.verify.corpus import program_to_spec
    return program_to_spec(program)


def tune_kernel(name: str,
                target: str = "tc25",
                config: Optional[TuneConfig] = None,
                jobs: Optional[int] = None,
                seed: int = 0) -> TuneOutcome:
    """Tune one DSPStone kernel by registry name."""
    from repro.dspstone import kernel
    return tune_program(kernel(name).program, target=target,
                        config=config, jobs=jobs, seed=seed)
