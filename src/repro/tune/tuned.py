"""A compiler that consults the tuning database per program.

:class:`TunedCompiler` is a drop-in for :class:`RecordCompiler`: it
looks each program up in a :class:`~repro.tune.db.TuningDB` (by
structural digest, so *how* the program was built does not matter) and
compiles with the stored per-kernel best options when one exists, the
default pipeline otherwise.  Inner compilers are pooled per options
value, so their BURS label caches and the artifact cache behave
exactly as they do for plain ``record`` compiles -- a tuned compile of
a (program, options) pair shares its artifact with any other compile
of that pair, tuned or not.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, TYPE_CHECKING

from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.tune.db import TuningDB

if TYPE_CHECKING:   # pragma: no cover
    from repro.codegen.compiled import CompiledProgram
    from repro.targets.model import TargetModel


class TunedCompiler:
    """RECORD with per-program options from a tuning database."""

    name = "record"    # artifacts key on (name, options): shared with
                       # plain record compiles of the same options.

    def __init__(self, target: "TargetModel",
                 db: Optional[TuningDB] = None,
                 default_options: Optional[RecordOptions] = None):
        self.target = target
        self.db = db if db is not None else TuningDB.load()
        self.default_options = default_options or RecordOptions()
        self._compilers: Dict[str, RecordCompiler] = {}

    @property
    def options(self) -> RecordOptions:
        """The fallback options (what an untuned program compiles
        with); per-program tuned options override at compile time."""
        return self.default_options

    def options_for(self, program) -> RecordOptions:
        """The options this compiler would use for ``program``."""
        tuned = self.db.options_for(program, self.target.name)
        return tuned if tuned is not None else self.default_options

    def _compiler_for(self, options: RecordOptions) -> RecordCompiler:
        key = json.dumps(options.to_dict(), sort_keys=True)
        compiler = self._compilers.get(key)
        if compiler is None:
            compiler = RecordCompiler(self.target, options)
            self._compilers[key] = compiler
        return compiler

    def compile(self, program) -> "CompiledProgram":
        """Compile with the program's tuned options (or the default)."""
        return self._compiler_for(self.options_for(program)) \
            .compile(program)
