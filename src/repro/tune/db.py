"""The persisted tuning database: per-kernel best configurations.

One atomic JSON file (the :mod:`repro.verify.campaign` state-file
discipline: tmp + ``os.replace``) mapping ``(program, target)`` keys
to the oracle-gated best :class:`RecordOptions` the tuner found, plus
the measured evidence (tuned vs default cycles).  Programs are keyed
structurally -- a digest of the corpus spec form -- so a DSPStone
kernel, the same kernel rebuilt from MiniDFL source, and a progen
program with the same shape all resolve to the same entry, however the
caller constructed the ``Program``.

The database is a *hint*, not a correctness input: a stale entry (new
code version, refactored backend) simply configures a compile that is
itself oracle-checkable, so entries survive code changes and the
stored ``code_version`` field is informational.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.codegen.pipeline import RecordOptions

DB_FORMAT = 1


def default_db_path() -> Path:
    """The conventional location: ``.repro-tune.json`` in the cwd."""
    return Path(".repro-tune.json")


def program_digest(program) -> Optional[str]:
    """Structural digest of a lowered program (16 hex chars), or
    ``None`` for programs the corpus spec form cannot express."""
    from repro.verify.corpus import program_to_spec
    try:
        blob = json.dumps(program_to_spec(program), sort_keys=True)
    except Exception:                                  # noqa: BLE001
        return None
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def entry_key(digest: str, target_name: str) -> str:
    """The database key of one (program, target) cell."""
    return f"{digest}@{target_name}"


@dataclass
class TuningDB:
    """An in-memory view of one tuning-database file."""

    path: Path
    entries: Dict[str, dict] = field(default_factory=dict)

    @staticmethod
    def load(path: Optional[object] = None) -> "TuningDB":
        """Read a database (a missing file is an empty database)."""
        path = Path(path) if path is not None else default_db_path()
        if not path.exists():
            return TuningDB(path=path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ValueError(f"cannot read tuning db {path}: {exc}")
        if payload.get("format") != DB_FORMAT:
            raise ValueError(f"unsupported tuning db format "
                             f"{payload.get('format')!r} in {path}")
        return TuningDB(path=path,
                        entries=dict(payload.get("entries", {})))

    def save(self) -> None:
        """Atomically persist (tmp + ``os.replace``); a reader only
        ever sees a complete database."""
        payload = {"format": DB_FORMAT, "entries": self.entries}
        path = Path(self.path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, path)

    # -- queries --------------------------------------------------------

    def lookup(self, program, target_name: str) -> Optional[dict]:
        """The stored entry for one (program, target), or ``None``."""
        digest = program_digest(program)
        if digest is None:
            return None
        return self.entries.get(entry_key(digest, target_name))

    def options_for(self, program, target_name: str
                    ) -> Optional[RecordOptions]:
        """The tuned options for one (program, target), or ``None``.

        An entry whose options no longer deserialize (a knob was
        renamed away) is treated as absent rather than crashing the
        compile -- the database is a hint.
        """
        entry = self.lookup(program, target_name)
        if entry is None:
            return None
        try:
            return RecordOptions.from_dict(entry["options"])
        except Exception:                              # noqa: BLE001
            return None

    # -- updates --------------------------------------------------------

    def record(self, program, target_name: str, entry: dict) -> bool:
        """Store one tuned entry; returns whether the program keyed.

        ``entry`` must carry at least ``options`` (a canonical
        :meth:`RecordOptions.to_dict` dict); the tuner adds the
        measured evidence (``tuned_cycles``, ``default_cycles``,
        ``program``, ``code_version``).
        """
        digest = program_digest(program)
        if digest is None:
            return False
        self.entries[entry_key(digest, target_name)] = entry
        return True
