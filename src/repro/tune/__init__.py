"""Measurement-driven autotuning of the RECORD pipeline.

The paper's claim is that code quality on irregular core processors
comes from how the optimization phases are *steered* -- selection
metric, algebraic variants, offset/bank assignment, compaction -- and
the survey literature shows no single steering wins everywhere.  This
package turns that observation into an instrument: given a program and
a target, search the :class:`~repro.codegen.pipeline.RecordOptions`
knob space, measure every candidate in **real cycles on the jit
simulator tier**, check each against the independent IR-level oracle,
and persist the per-kernel best into a tuning database the rest of the
system can consult.

Layers (each its own module):

- :mod:`repro.tune.space`   -- the knob space, target-aware;
- :mod:`repro.tune.measure` -- one cached, oracle-checked cycle
  measurement (records live in the persistent artifact cache);
- :mod:`repro.tune.search`  -- the staged, budgeted, farm-parallel
  search (screen single-knob deviations, cross the movers);
- :mod:`repro.tune.db`      -- the atomic-JSON tuning database;
- :mod:`repro.tune.tuned`   -- :class:`TunedCompiler`, a drop-in
  ``record`` compiler that applies stored per-program bests.

Quick use::

    from repro.tune import tune_kernel, TuningDB, TunedCompiler

    outcome = tune_kernel("fir", target="tc25")
    print(outcome.default.total_cycles, "->", outcome.best_cycles)

    db = TuningDB.load(".repro-tune.json")
    db.record(kernel("fir").program, "tc25",
              {"options": outcome.best_options})
    db.save()

CLI: ``python -m repro tune fir --target tc25 --budget 48 --json -``.
Benchmark + contracts: ``benchmarks/bench_tune.py`` -> BENCH_TUNE.json.
"""

from __future__ import annotations

from repro.tune.db import TuningDB, default_db_path, program_digest
from repro.tune.measure import Measurement, measure_cell, \
    measurement_key
from repro.tune.search import (
    TuneConfig, TuneError, TuneOutcome, default_input_sets,
    tune_kernel, tune_program, verify_selection,
)
from repro.tune.space import KNOBS, relevant_knobs
from repro.tune.tuned import TunedCompiler

__all__ = [
    "KNOBS",
    "Measurement",
    "TuneConfig",
    "TuneError",
    "TuneOutcome",
    "TunedCompiler",
    "TuningDB",
    "default_db_path",
    "default_input_sets",
    "measure_cell",
    "measurement_key",
    "program_digest",
    "relevant_knobs",
    "tune_kernel",
    "tune_program",
    "verify_selection",
]
