"""The optimization-knob space the tuner searches.

One table (:data:`KNOBS`) names every :class:`RecordOptions` field the
paper's argument turns on -- selection metric, algebraic-variant
budget, loop/peephole transformations, offset/bank assignment,
compaction -- and the candidate values worth measuring for each.  The
space is deliberately *target-aware*: the memory-layout knobs
(``offset_assignment``, ``bank_assignment``) and ``compaction`` only
reach code on targets whose backend hooks read them (the M56's banked
address assigner and parallel-move packer), so for other targets those
axes are pruned rather than measured into a table of identical rows.

The survey literature (PAPERS.md, "Instruction Selection: A Survey")
is the motivation for searching at all: no single metric or heuristic
wins on every kernel, so the space keeps both values of every
either-way knob -- including the ones whose defaults exist for
Table 1 fidelity rather than cycle count (``fuse_shift_idioms``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.codegen.pipeline import RecordOptions

#: Candidate values per knob, in measurement order.  The default value
#: of each knob need not be listed first (or at all): the screening
#: pass always measures the default configuration separately and only
#: enqueues values that *differ* from the default.
KNOBS: Tuple[Tuple[str, Tuple[object, ...]], ...] = (
    ("metric", ("size", "speed")),
    ("variant_limit", (1, 8, 64, 256)),
    ("promote_accumulators", (True, False)),
    ("repeat_idioms", (True, False)),
    ("fuse_shift_idioms", (False, True)),
    ("peephole", (True, False)),
    ("minimize_modes", (True, False)),
    ("offset_assignment", ("liao", "naive", "goa", "absolute")),
    ("bank_assignment", ("greedy", "single", "anneal")),
    ("compaction", ("greedy", "optimal", "none")),
)

#: Knobs that only reach code through the M56 backend hooks
#: (``assign_addresses`` reads offset/bank strategies, ``compact``
#: reads the compaction strategy).  Measuring them elsewhere would
#: spend budget re-measuring the default configuration under an alias.
_M56_ONLY = ("offset_assignment", "bank_assignment", "compaction")


def relevant_knobs(target_name: str
                   ) -> List[Tuple[str, Tuple[object, ...]]]:
    """The searchable ``(knob, values)`` axes for one target."""
    banked = target_name.startswith("m56")
    return [(knob, values) for knob, values in KNOBS
            if banked or knob not in _M56_ONLY]


def screening_candidates(default: RecordOptions, target_name: str
                         ) -> List[Tuple[str, RecordOptions]]:
    """Stage-1 candidates: every single-knob deviation from ``default``.

    Returns ``(knob, options)`` pairs in deterministic knob-table
    order, so a truncated budget always drops the same tail.
    """
    candidates: List[Tuple[str, RecordOptions]] = []
    for knob, values in relevant_knobs(target_name):
        base = getattr(default, knob)
        for value in values:
            if value != base:
                candidates.append(
                    (knob, replace(default, **{knob: value})))
    return candidates


def cross_candidates(default: RecordOptions,
                     movers: Dict[str, Sequence[object]]
                     ) -> List[RecordOptions]:
    """Stage-2 candidates: the cross-product over the knobs that moved.

    ``movers`` maps each promising knob to the values worth combining
    (the screening winners); the default value of each knob is added
    automatically, so every combination of "improved knob settings
    plus leave-the-rest-alone" is enumerated.  Combinations identical
    to the default configuration are skipped (already measured), and
    enumeration order is deterministic: knobs in :data:`KNOBS` order,
    values in listed order.
    """
    order = [knob for knob, _values in KNOBS if knob in movers]
    axes: List[List[object]] = []
    for knob in order:
        base = getattr(default, knob)
        values = [base] + [value for value in movers[knob]
                           if value != base]
        axes.append(values)

    results: List[RecordOptions] = []

    def expand(index: int, settings: Dict[str, object]) -> None:
        if index == len(order):
            if settings:
                results.append(replace(default, **settings))
            return
        knob = order[index]
        for value in axes[index]:
            if value == getattr(default, knob):
                expand(index + 1, settings)
            else:
                settings[knob] = value
                expand(index + 1, settings)
                del settings[knob]

    expand(0, {})
    return results
