"""CLI: ``python -m repro tune`` (also ``python -m repro.tune``).

Examples::

    # Tune one kernel on one target, print the win, update the DB
    python -m repro tune fir --target tc25

    # The whole DSPStone suite on two targets, farm-parallel, JSON out
    python -m repro tune --all-kernels --targets tc25,m56 \\
        --budget 48 --jobs 4 --json tune.json

    # A generated program (the conformance generator's seed space)
    python -m repro tune --progen-seed 7 --target m56

Measurements go through the persistent artifact cache under
``--cache-dir`` (default ``.repro-cache/``), so re-tuning is free;
per-kernel bests are recorded into ``--db`` (default
``.repro-tune.json``) unless ``--no-db`` is given.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.verify.diff import DEFAULT_TARGETS


def _parse_targets(value: str) -> List[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    for name in names:
        if name not in DEFAULT_TARGETS:
            raise argparse.ArgumentTypeError(
                f"unknown target {name!r}; expected one of "
                f"{', '.join(DEFAULT_TARGETS)}")
    if not names:
        raise argparse.ArgumentTypeError("no targets given")
    return names


def build_parser() -> argparse.ArgumentParser:
    """The ``repro tune`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro tune",
        description="Search the RECORD optimization-knob space per "
                    "kernel, measured in real cycles on the jit "
                    "simulator and gated by the conformance oracle.")
    parser.add_argument("kernel", nargs="?", default=None,
                        help="DSPStone kernel name (see `repro list`)")
    parser.add_argument("--all-kernels", action="store_true",
                        help="tune every DSPStone kernel")
    parser.add_argument("--progen-seed", type=int, default=None,
                        metavar="N",
                        help="tune the conformance generator's "
                             "program for seed N instead of a kernel")
    parser.add_argument("--target", default=None,
                        choices=DEFAULT_TARGETS,
                        help="single processor model (default: tc25)")
    parser.add_argument("--targets", type=_parse_targets, default=None,
                        metavar="T1,T2,...",
                        help="comma-separated target list")
    parser.add_argument("--budget", type=int, default=None,
                        help="max configurations measured per "
                             "(kernel, target) cell (default: 48)")
    parser.add_argument("--inputs", type=int, default=None,
                        help="input sets accumulated per measurement "
                             "(default: 2)")
    parser.add_argument("--seed", type=int, default=0,
                        help="input-generation seed (default: 0)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="farm worker processes (default: auto; "
                             "1 forces serial)")
    parser.add_argument("--sim", default="jit",
                        choices=("jit", "fast", "reference"),
                        help="simulator tier to measure with "
                             "(default: jit)")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="persistent measurement/artifact cache "
                             "(default: .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="measure without the persistent cache")
    parser.add_argument("--db", default=None,
                        help="tuning database path "
                             "(default: .repro-tune.json)")
    parser.add_argument("--no-db", action="store_true",
                        help="do not record bests into the database")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="PATH",
                        help="write full outcomes as JSON "
                             "('-' for stdout)")
    return parser


def _programs(args) -> List[object]:
    chosen = [bool(args.kernel), args.all_kernels,
              args.progen_seed is not None]
    if sum(chosen) != 1:
        raise SystemExit("pass exactly one of: a kernel name, "
                         "--all-kernels, or --progen-seed")
    if args.progen_seed is not None:
        import random

        from repro.verify.progen import generate_program
        return [generate_program(random.Random(args.progen_seed),
                                 index=args.progen_seed)]
    from repro.dspstone import KERNEL_NAMES, kernel
    names = list(KERNEL_NAMES) if args.all_kernels else [args.kernel]
    return [kernel(name).program for name in names]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.target and args.targets:
        raise SystemExit("pass --target or --targets, not both")
    targets = args.targets or [args.target or "tc25"]
    try:
        programs = _programs(args)
    except KeyError as exc:
        raise SystemExit(str(exc))

    import repro.cache
    from repro.tune import TuneConfig, TuneError, TuningDB, \
        tune_program
    if not args.no_cache:
        repro.cache.configure(args.cache_dir)
    config_kwargs = {}
    if args.budget is not None:
        config_kwargs["budget"] = args.budget
    if args.inputs is not None:
        config_kwargs["inputs_per_program"] = args.inputs
    config = TuneConfig(sim=args.sim, **config_kwargs)
    db = None if args.no_db else TuningDB.load(args.db)

    outcomes = []
    failures = 0
    for program in programs:
        for target in targets:
            try:
                outcome = tune_program(program, target=target,
                                       config=config, jobs=args.jobs,
                                       seed=args.seed)
            except TuneError as exc:
                failures += 1
                print(f"{program.name:24s} {target:8s} FAILED: {exc}",
                      file=sys.stderr)
                continue
            outcomes.append(outcome)
            default = outcome.default.total_cycles
            line = (f"{outcome.program:24s} {outcome.target:8s} "
                    f"default {default:7d} cy")
            if outcome.improved:
                saved = default - outcome.best_cycles
                line += (f"  tuned {outcome.best_cycles:7d} cy "
                         f"(-{saved}, -{100 * saved / default:.1f}%)"
                         f"  movers: {', '.join(outcome.movers)}")
                if db is not None:
                    from repro.cache import code_version
                    db.record(program, outcome.target, {
                        "program": outcome.program,
                        "options": outcome.best_options,
                        "tuned_cycles": outcome.best_cycles,
                        "default_cycles": default,
                        "code_version": code_version(),
                    })
            else:
                line += "  (default is best)"
            stats = (f"[{outcome.budget_used} cells, "
                     f"{outcome.cached_measurements} cached]")
            print(f"{line}  {stats}")
    if db is not None and outcomes:
        db.save()
        print(f"tuning db: {db.path} ({len(db.entries)} entries)")

    if args.json_path:
        blob = json.dumps([outcome.to_json() for outcome in outcomes],
                          indent=2, sort_keys=True)
        if args.json_path == "-":
            print(blob)
        else:
            with open(args.json_path, "w") as handle:
                handle.write(blob + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
