"""Instruction-set extraction (ISE) -- Sec. 4.3.2, Fig. 3, ref. [23].

"For each memory or register input, ISE traverses the netlist from that
input to memory or register outputs (opposite to the direction of the
data-flow).  For each traversal, it collects the transformations that
are applied to the data ... and also the control requirements ...
The net effect of ISE is to generate, for each register or memory, a
list of assignable expressions and the corresponding instruction bit
settings."

- :mod:`repro.ise.extractor` -- the traversal itself.
- :mod:`repro.ise.patterns` -- extracted patterns, and their conversion
  into a tree grammar ("ISE output to iburg input format conversion" in
  Fig. 2) plus a ready-to-use :class:`NetlistTarget` processor model.
- :mod:`repro.ise.examples` -- example netlists: the paper's Fig. 3
  datapath and MiniACC, a small accumulator machine used to demonstrate
  the full netlist-to-binary bridge.
"""

from repro.ise.extractor import InstructionPattern, PTree, extract
from repro.ise.patterns import NetlistTarget, patterns_to_grammar

__all__ = ["InstructionPattern", "PTree", "extract",
           "NetlistTarget", "patterns_to_grammar"]
