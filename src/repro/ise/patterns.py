"""From extracted patterns to a working compiler back end.

Two artifacts are derived from an ISE run:

1. :func:`patterns_to_grammar` -- the "ISE output to iburg input format
   conversion" of Fig. 2: each extracted pattern becomes a tree-grammar
   rule.  Plain registers become nonterminals (that is how tree parsing
   handles heterogeneous special registers), memory reads become ``ref``
   terminals, immediate fields become guarded ``const`` terminals.

2. :class:`NetlistTarget` -- a complete :class:`TargetModel` whose
   simulator *is* the netlist: executing an emitted instruction replays
   the extracted expression against machine state.  Together with the
   RECORD pipeline this closes the paper's headline loop: an RT netlist
   in, executable (and simulated) binary code out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.codegen.asm import AsmInstr, Imm, Mem
from repro.codegen.grammar import (
    Cost, Nt, Pat, Pattern, Rule, Term, TreeGrammar,
)
from repro.ir.ops import OpKind
from repro.ir.trees import Tree
from repro.ise.extractor import InstructionPattern, PTree, extract
from repro.rtl.components import InstructionField, Memory, Register
from repro.rtl.netlist import Netlist
from repro.sim.machine import MachineState, SimulationError
from repro.targets.model import TargetCapabilities, TargetModel


class ConversionError(Exception):
    """An extracted pattern cannot be expressed as a grammar rule."""


def _field_width(netlist: Netlist, field_name: str) -> int:
    component = netlist.components[field_name]
    if not isinstance(component, InstructionField):
        raise ConversionError(f"{field_name!r} is not an instruction "
                              "field")
    return component.width


def _to_pattern(netlist: Netlist, node: PTree) -> Pattern:
    if node.kind == "op":
        children = tuple(_to_pattern(netlist, child)
                         for child in node.children)
        return Pat(node.operator.name, children)
    if node.kind == "read":
        storage = netlist.components[node.storage]
        if isinstance(storage, Register):
            return Nt(node.storage)
        if isinstance(storage, Memory):
            return Term("ref")
        raise ConversionError(
            f"register-file read {node} not supported by the converter")
    if node.kind == "imm":
        width = _field_width(netlist, node.field_name)
        top = (1 << width) - 1
        return Term("const", lambda t, _top=top: 0 <= t.value <= _top,
                    f"#u{width}")
    if node.kind == "const":
        value = node.value
        return Term("const", lambda t, _v=value: t.value == _v,
                    f"#{node.value}")
    raise ConversionError(f"unknown PTree kind {node.kind!r}")


def _make_emit(pattern: InstructionPattern, mem_dest: bool,
               result: Optional[str]):
    def emit(ctx, args):
        operands = []
        for arg in args:
            if isinstance(arg, Mem):
                operands.append(arg)
            elif isinstance(arg, int):
                operands.append(Imm(arg))
            # register locations are implicit in the opcode
        ctx.emit(AsmInstr(opcode=pattern.name, operands=tuple(operands),
                          words=1, cycles=1))
        return result
    return emit


def patterns_to_grammar(netlist: Netlist,
                        patterns: List[InstructionPattern],
                        name: Optional[str] = None) -> TreeGrammar:
    """Convert extracted patterns into a tree grammar.

    Patterns writing a plain register R produce ``R <- pattern`` rules;
    patterns writing data memory produce ``stmt <- store(ref, pattern)``
    rules.  Patterns the converter cannot express (register-file
    operands, computed addresses) are skipped -- ISE may legitimately
    find datapath transfers the compiler never needs.
    """
    rules: List[Rule] = [
        Rule("mem", Term("ref"), Cost(0, 0),
             emit=lambda ctx, args: args[0], name="mem-ref"),
    ]
    nt_resources: Dict[str, Optional[str]] = {"mem": None}
    for pattern in patterns:
        try:
            value_pattern = _to_pattern(netlist, pattern.tree)
        except ConversionError:
            continue
        dest = netlist.components[pattern.dest_storage]
        if isinstance(dest, Register):
            nt_resources[dest.name] = dest.name
            rules.append(Rule(
                nonterm=dest.name,
                pattern=value_pattern,
                cost=Cost(1, 1),
                emit=_make_emit(pattern, mem_dest=False,
                                result=dest.name),
                name=pattern.name,
                clobbers=frozenset({dest.name}),
            ))
        elif isinstance(dest, Memory):
            if pattern.dest_addr_field is None:
                continue
            rules.append(Rule(
                nonterm="stmt",
                pattern=Pat("store", (Term("ref"), value_pattern)),
                cost=Cost(1, 1),
                emit=_make_emit(pattern, mem_dest=True, result=None),
                name=pattern.name,
            ))
        # Register-file destinations: skipped by this converter.
    grammar_name = name or f"ise:{netlist.name}"
    return TreeGrammar(grammar_name, rules, nt_resources)


class NetlistTarget(TargetModel):
    """A processor model generated entirely from an RT netlist.

    The simulator executes emitted instructions by replaying the
    extracted expression trees against machine state -- semantically
    equivalent to stepping the netlist with the justified instruction
    bits (a property the test suite checks against
    :meth:`repro.rtl.netlist.Netlist.step`).

    Netlist targets describe datapaths, not sequencers, so only
    straight-line programs can be compiled (no loop realization).
    """

    def __init__(self, netlist: Netlist,
                 patterns: Optional[List[InstructionPattern]] = None):
        self.netlist = netlist
        self.name = f"netlist:{netlist.name}"
        self.word_bits = netlist.word_bits
        super().__init__()
        self.patterns = patterns if patterns is not None \
            else extract(netlist)
        self._by_name = {p.name: p for p in self.patterns}
        self._grammar = patterns_to_grammar(netlist, self.patterns)
        memories = [c for c in netlist.components.values()
                    if isinstance(c, Memory)]
        if len(memories) != 1:
            raise ConversionError(
                "NetlistTarget expects exactly one data memory, got "
                f"{len(memories)}")
        self.memory = memories[0]
        self.capabilities = TargetCapabilities(
            address_registers=0, direct_addressing=True)

    # -- TargetModel ------------------------------------------------------

    def grammar(self) -> TreeGrammar:
        return self._grammar

    def initial_state(self) -> MachineState:
        regs = {c.name: 0 for c in self.netlist.components.values()
                if isinstance(c, Register)}
        return MachineState(regs=regs,
                            mem=[0] * self.memory.size)

    def execute(self, state: MachineState,
                instr: AsmInstr) -> Optional[str]:
        pattern = self._by_name.get(instr.opcode)
        if pattern is None:
            raise SimulationError(
                f"{self.name}: unknown opcode {instr.opcode!r}")
        operands = list(instr.operands)
        mem_dest_address: Optional[int] = None
        dest = self.netlist.components[pattern.dest_storage]
        if isinstance(dest, Memory):
            dest_operand = operands.pop(0)
            mem_dest_address = self._mem_address(state, dest_operand)
        value = self._evaluate(state, pattern.tree, operands)
        if operands:
            raise SimulationError(
                f"{instr.opcode}: too many operands")
        if mem_dest_address is not None:
            state.store(mem_dest_address, self.fpc.wrap(value))
        else:
            state.regs[pattern.dest_storage] = self.fpc.wrap(value)
        return None

    def finalize_loop(self, count, body, loop_id, depth):
        """Netlist targets model datapaths, not sequencers: reject."""
        raise SimulationError(
            f"{self.name}: netlist targets have no sequencer; only "
            "straight-line programs are supported")

    # -- helpers ------------------------------------------------------------

    def _mem_address(self, state: MachineState, operand) -> int:
        if not isinstance(operand, Mem) or operand.mode != "direct":
            raise SimulationError(
                f"unresolved memory operand {operand}")
        return operand.address

    def _evaluate(self, state: MachineState, node: PTree,
                  operands: List) -> int:
        if node.kind == "op":
            values = [self._evaluate(state, child, operands)
                      for child in node.children]
            return self.fpc.wrap(self.fpc.apply(node.operator, *values))
        if node.kind == "const":
            # The matched tree constant travelled as an operand (the
            # grammar guard already ensured it equals the wired value).
            operand = operands.pop(0)
            if not isinstance(operand, Imm) or operand.value != node.value:
                raise SimulationError(
                    f"expected wired constant {node.value}, got {operand}")
            return node.value
        if node.kind == "imm":
            operand = operands.pop(0)
            if not isinstance(operand, Imm):
                raise SimulationError(
                    f"expected immediate operand, got {operand}")
            return operand.value
        if node.kind == "read":
            storage = self.netlist.components[node.storage]
            if isinstance(storage, Register):
                return state.regs[node.storage]
            operand = operands.pop(0)
            return state.load(self._mem_address(state, operand))
        raise SimulationError(f"bad pattern node {node.kind!r}")
