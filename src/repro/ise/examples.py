"""Example netlists for ISE.

- :func:`figure3_netlist` -- the paper's Fig. 3 datapath: a register
  file feeding an ALU whose second input comes from an accumulator,
  with a constant '0' steering the ALU to ADD.  ISE extracts (among
  others) the figure's pattern ``Reg[bb] := Reg[aa] + acc`` with its
  instruction-bit settings.

- :func:`miniacc_netlist` -- MiniACC, a complete single-accumulator
  machine (data memory, ACC, ALU with add/sub/and/or/mul, immediate
  path).  Running ISE over it and feeding the result to the RECORD
  pipeline compiles and *executes* straight-line MiniDFL programs with
  no hand-written target description at all -- the paper's ECAD-to-
  compiler bridge, end to end.
"""

from __future__ import annotations

from repro.rtl.components import (
    Alu, Constant, InstructionField, Memory, Mux, Register, RegisterFile,
)
from repro.rtl.netlist import Netlist, Port


def figure3_netlist() -> Netlist:
    """The Fig. 3 example: Reg[bb] := Reg[aa] + acc (and friends)."""
    net = Netlist("figure3")
    regs = net.add(RegisterFile("Reg", size=8))
    acc = net.add(Register("acc"))
    alu = net.add(Alu("alu", {0: "add", 1: "sub"}))
    aa = net.add(InstructionField("aa", 3))
    bb = net.add(InstructionField("bb", 3))
    c1 = net.add(InstructionField("c1", 1))      # ALU control
    c2 = net.add(InstructionField("c2", 1))      # acc load enable
    we = net.add(InstructionField("we", 1))      # regfile write enable

    net.connect(Port(aa, "out"), Port(regs, "raddr"))
    net.connect(Port(bb, "out"), Port(regs, "waddr"))
    net.connect(Port(we, "out"), Port(regs, "we"))
    net.connect(Port(regs, "out"), Port(alu, "a"))
    net.connect(Port(acc, "out"), Port(alu, "b"))
    net.connect(Port(c1, "out"), Port(alu, "ctl"))
    net.connect(Port(alu, "out"), Port(regs, "in"))
    net.connect(Port(alu, "out"), Port(acc, "in"))
    net.connect(Port(c2, "out"), Port(acc, "load"))
    net.validate()
    return net


def miniacc_netlist(memory_size: int = 64,
                    immediate_bits: int = 8) -> Netlist:
    """MiniACC: a complete accumulator machine as an RT netlist.

    Datapath::

        dmem[daddr] --+--> opb_mux --> ALU.b
        imm ----------+                ALU.a <-- ACC
                                       ALU --> wb_mux --> ACC (load)
        dmem.in <-- ACC            (via load_mux) -----> dmem (we)

    Extractable instruction classes:
    ``ACC := mem | imm``, ``ACC := ACC op mem``, ``ACC := ACC op imm``,
    ``ACC := op(ACC)``, ``mem := ACC``.
    """
    net = Netlist("miniacc")
    dmem = net.add(Memory("dmem", memory_size))
    acc = net.add(Register("acc"))
    alu = net.add(Alu("alu", {
        0: "add", 1: "sub", 2: "and", 3: "or", 4: "xor", 5: "mul",
        6: "neg", 7: "not",
    }))
    daddr = net.add(InstructionField("daddr", 6))
    imm = net.add(InstructionField("imm", immediate_bits))
    aluctl = net.add(InstructionField("aluctl", 3))
    opb_sel = net.add(InstructionField("opb_sel", 1))
    wb_sel = net.add(InstructionField("wb_sel", 1))
    acc_ld = net.add(InstructionField("acc_ld", 1))
    mem_we = net.add(InstructionField("mem_we", 1))

    # Operand B: memory or immediate.
    opb = net.add(Mux("opb_mux", 2))
    net.connect(Port(daddr, "out"), Port(dmem, "addr"))
    net.connect(Port(dmem, "out"), Port(opb, "in0"))
    net.connect(Port(imm, "out"), Port(opb, "in1"))
    net.connect(Port(opb_sel, "out"), Port(opb, "sel"))

    # ALU: a = ACC, b = operand mux.
    net.connect(Port(acc, "out"), Port(alu, "a"))
    net.connect(Port(opb, "out"), Port(alu, "b"))
    net.connect(Port(aluctl, "out"), Port(alu, "ctl"))

    # ACC write-back: ALU result or pass-through of operand B (loads).
    wb = net.add(Mux("wb_mux", 2))
    net.connect(Port(alu, "out"), Port(wb, "in0"))
    net.connect(Port(opb, "out"), Port(wb, "in1"))
    net.connect(Port(wb_sel, "out"), Port(wb, "sel"))
    net.connect(Port(wb, "out"), Port(acc, "in"))
    net.connect(Port(acc_ld, "out"), Port(acc, "load"))

    # Memory write port: from ACC.
    net.connect(Port(acc, "out"), Port(dmem, "in"))
    net.connect(Port(mem_we, "out"), Port(dmem, "we"))
    net.validate()
    return net
