"""The ISE traversal: netlist -> instruction patterns.

For every storage component the extractor justifies the write enable,
resolves the write address, and enumerates every expression the data
input can compute, each with the instruction-bit assignment that steers
the datapath accordingly.  The result is the paper's "list of assignable
expressions and the corresponding instruction bit settings" (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.ops import Op
from repro.rtl.components import (
    Alu, Constant, InstructionField, Memory, Mux, Register, RegisterFile,
)
from repro.rtl.justify import (
    BitAssignment, justify_value, merge_assignments,
)
from repro.rtl.netlist import Netlist, Port


# ----------------------------------------------------------------------
# Pattern trees
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PTree:
    """A node of an extracted expression tree.

    ``kind``:
      - ``"op"``: ``operator`` applied to ``children``;
      - ``"read"``: a storage read (``storage`` plus the instruction
        field selecting the address, or None for a plain register);
      - ``"imm"``: an immediate operand taken from instruction field
        ``field_name``;
      - ``"const"``: a hard-wired constant ``value``.
    """

    kind: str
    operator: Optional[Op] = None
    children: Tuple["PTree", ...] = ()
    storage: Optional[str] = None
    addr_field: Optional[str] = None
    field_name: Optional[str] = None
    value: Optional[int] = None

    def __str__(self) -> str:
        if self.kind == "op":
            args = ", ".join(str(child) for child in self.children)
            return f"{self.operator.name}({args})"
        if self.kind == "read":
            if self.addr_field is None:
                return self.storage
            return f"{self.storage}[{self.addr_field}]"
        if self.kind == "imm":
            return f"#{self.field_name}"
        return f"#{self.value}"

    def leaves(self) -> List["PTree"]:
        """Terminal leaves (reads/immediates/constants) in preorder."""
        if self.kind == "op":
            collected: List[PTree] = []
            for child in self.children:
                collected.extend(child.leaves())
            return collected
        return [self]

    def size(self) -> int:
        """Number of nodes in the pattern tree."""
        return 1 + sum(child.size() for child in self.children)


@dataclass(frozen=True)
class InstructionPattern:
    """One extracted instruction: destination, expression, bit settings.

    ``bits`` fixes the *control* fields; fields named by ``imm`` or
    ``read``/destination address leaves remain free -- they are the
    instruction's operands.
    """

    name: str
    dest_storage: str
    dest_addr_field: Optional[str]
    dest_fixed_addr: Optional[int]
    tree: PTree
    bits: BitAssignment

    def describe(self) -> str:
        """Fig. 3-style text: destination, expression, bit settings."""
        if self.dest_addr_field is not None:
            dest = f"{self.dest_storage}[{self.dest_addr_field}]"
        elif self.dest_fixed_addr is not None:
            dest = f"{self.dest_storage}[{self.dest_fixed_addr}]"
        else:
            dest = self.dest_storage
        bits = ", ".join(f"{k}={v}" for k, v in sorted(self.bits.items()))
        return f"{dest} := {self.tree}   [{bits}]"


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------

class ExtractionLimit:
    """Bounds for the enumeration (netlists are small; generous)."""

    def __init__(self, max_alternatives: int = 256, max_depth: int = 8):
        self.max_alternatives = max_alternatives
        self.max_depth = max_depth


def extract(netlist: Netlist,
            limit: Optional[ExtractionLimit] = None
            ) -> List[InstructionPattern]:
    """Run ISE over every storage of the netlist."""
    netlist.validate()
    if limit is None:
        limit = ExtractionLimit()
    patterns: List[InstructionPattern] = []
    for storage in netlist.storages():
        patterns.extend(_extract_for_storage(netlist, storage, limit))
    return patterns


def _extract_for_storage(netlist: Netlist, storage,
                         limit: ExtractionLimit
                         ) -> List[InstructionPattern]:
    if isinstance(storage, Register):
        enable_port, addr_port = Port(storage, "load"), None
    elif isinstance(storage, RegisterFile):
        enable_port, addr_port = Port(storage, "we"), Port(storage,
                                                           "waddr")
    elif isinstance(storage, Memory):
        enable_port, addr_port = Port(storage, "we"), Port(storage,
                                                           "addr")
    else:
        return []

    enable_options = justify_value(netlist, enable_port, 1)
    if not enable_options:
        return []

    dest_addr_field: Optional[str] = None
    dest_fixed_addr: Optional[int] = None
    if addr_port is not None:
        driver = netlist.driver_of(addr_port)
        if isinstance(driver.component, InstructionField):
            dest_addr_field = driver.component.name
        elif isinstance(driver.component, Constant):
            dest_fixed_addr = driver.component.value
        else:
            # Write address computed through the datapath (AGUs etc.):
            # out of scope for this extractor.
            return []

    expressions = _expand(netlist, Port(storage, "in"), limit,
                          depth=limit.max_depth)
    patterns: List[InstructionPattern] = []
    for tree, tree_bits in expressions:
        for enable_bits in enable_options:
            bits = merge_assignments(tree_bits, enable_bits)
            if bits is None:
                continue
            bits = _quiesce_other_storages(netlist, storage, bits)
            if bits is None:
                continue
            dest = storage.name
            patterns.append(InstructionPattern(
                name=f"{dest}<-{tree}",
                dest_storage=dest,
                dest_addr_field=dest_addr_field,
                dest_fixed_addr=dest_fixed_addr,
                tree=tree,
                bits=bits,
            ))
            if len(patterns) >= limit.max_alternatives:
                return patterns
    return patterns


def _quiesce_other_storages(netlist: Netlist, active_storage,
                            bits: BitAssignment
                            ) -> Optional[BitAssignment]:
    """Extend ``bits`` so every *other* storage's write enable is 0
    (single-transfer instructions; parallel transfers are the
    compaction stage's business, not ISE's)."""
    merged = bits
    for storage in netlist.storages():
        if storage.name == active_storage.name:
            continue
        if isinstance(storage, Register):
            port = Port(storage, "load")
        else:
            port = Port(storage, "we")
        options = justify_value(netlist, port, 0)
        chosen = None
        for option in options:
            candidate = merge_assignments(merged, option)
            if candidate is not None:
                chosen = candidate
                break
        if chosen is None:
            return None
        merged = chosen
    return merged


def _expand(netlist: Netlist, sink: Port, limit: ExtractionLimit,
            depth: int) -> List[Tuple[PTree, BitAssignment]]:
    """All (expression, bits) the data input ``sink`` can receive."""
    driver = netlist.driver_of(sink)
    if driver is None:
        return []
    component = driver.component
    if depth <= 0:
        return []

    if isinstance(component, Constant):
        return [(PTree(kind="const", value=component.value), {})]
    if isinstance(component, InstructionField):
        return [(PTree(kind="imm", field_name=component.name), {})]
    if isinstance(component, Register):
        return [(PTree(kind="read", storage=component.name), {})]
    if isinstance(component, (RegisterFile, Memory)):
        addr_name = "raddr" if isinstance(component, RegisterFile) \
            else "addr"
        addr_driver = netlist.driver_of(Port(component, addr_name))
        if isinstance(addr_driver.component, InstructionField):
            return [(PTree(kind="read", storage=component.name,
                           addr_field=addr_driver.component.name), {})]
        return []      # computed read addresses: out of scope
    if isinstance(component, Mux):
        results: List[Tuple[PTree, BitAssignment]] = []
        for index in range(component.inputs):
            selector_options = justify_value(
                netlist, Port(component, "sel"), index)
            if not selector_options:
                continue
            for tree, tree_bits in _expand(
                    netlist, Port(component, f"in{index}"), limit,
                    depth - 1):
                for selector_bits in selector_options:
                    merged = merge_assignments(tree_bits, selector_bits)
                    if merged is not None:
                        results.append((tree, merged))
                        if len(results) >= limit.max_alternatives:
                            return results
        return results
    if isinstance(component, Alu):
        results = []
        a_options = _expand(netlist, Port(component, "a"), limit,
                            depth - 1)
        b_options = None
        for code, operator in component.operations.items():
            control_options = justify_value(
                netlist, Port(component, "ctl"), code)
            if not control_options:
                continue
            if operator.arity == 1:
                operand_sets = [((a,), bits) for a, bits in a_options]
            else:
                if b_options is None:
                    b_options = _expand(netlist, Port(component, "b"),
                                        limit, depth - 1)
                operand_sets = []
                for a_tree, a_bits in a_options:
                    for b_tree, b_bits in b_options:
                        merged = merge_assignments(a_bits, b_bits)
                        if merged is not None:
                            operand_sets.append(((a_tree, b_tree),
                                                 merged))
            for children, child_bits in operand_sets:
                for control_bits in control_options:
                    bits = merge_assignments(child_bits, control_bits)
                    if bits is None:
                        continue
                    results.append((PTree(kind="op", operator=operator,
                                          children=tuple(children)),
                                    bits))
                    if len(results) >= limit.max_alternatives:
                        return results
        return results
    return []
