"""Memory-bank assignment (Sudarsanam/Malik [38]; Sec. 3.3).

"A few DSPs support multiple memory banks.  Whenever the arguments of a
binary operation are available in two different memory banks, the
operation executes faster.  Assigning variables to memory banks such
that as many operations as possible will find their operands in
different banks is an optimization that can be more easily performed by
a compiler than by an assembly language programmer."

Model: a *conflict graph* whose nodes are variables and whose edge
weights count how often two variables are wanted simultaneously (one
through the X bus, one through the Y bus).  Maximizing satisfied pairs
is MAX-CUT on this graph (NP-hard), so we provide:

- :func:`greedy_assignment` -- weighted greedy placement;
- :func:`annealed_assignment` -- seeded simulated annealing refinement;
- :func:`exhaustive_assignment` -- exact optimum for small instances
  (test oracle).

``cut_value`` is the shared objective: total weight of pairs whose
endpoints landed in different banks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

Pair = Tuple[str, str]


def normalize_pairs(pairs: Iterable[Pair]) -> Dict[Pair, int]:
    """Aggregate an iterable of operand pairs into edge weights."""
    weights: Dict[Pair, int] = {}
    for first, second in pairs:
        if first == second:
            continue
        key = (first, second) if first < second else (second, first)
        weights[key] = weights.get(key, 0) + 1
    return weights


def cut_value(weights: Mapping[Pair, int],
              banks: Mapping[str, str]) -> int:
    """Total weight of pairs assigned to different banks."""
    return sum(weight for (u, v), weight in weights.items()
               if banks.get(u) != banks.get(v))


def _variables(weights: Mapping[Pair, int],
               extra: Sequence[str] = ()) -> List[str]:
    seen: Dict[str, None] = {}
    for (u, v) in weights:
        seen.setdefault(u, None)
        seen.setdefault(v, None)
    for name in extra:
        seen.setdefault(name, None)
    return list(seen)


def greedy_assignment(weights: Mapping[Pair, int],
                      variables: Sequence[str] = (),
                      banks: Tuple[str, str] = ("x", "y")
                      ) -> Dict[str, str]:
    """Place variables one at a time (by decreasing incident weight)
    into whichever bank currently separates more weight."""
    names = _variables(weights, variables)
    incident: Dict[str, int] = {name: 0 for name in names}
    for (u, v), weight in weights.items():
        incident[u] += weight
        incident[v] += weight
    assignment: Dict[str, str] = {}
    for name in sorted(names, key=lambda n: (-incident[n], n)):
        gain = {bank: 0 for bank in banks}
        for (u, v), weight in weights.items():
            other = None
            if u == name:
                other = v
            elif v == name:
                other = u
            if other is None or other not in assignment:
                continue
            for bank in banks:
                if assignment[other] != bank:
                    gain[bank] += weight
        best = max(banks, key=lambda bank: (gain[bank], bank == banks[0]))
        assignment[name] = best
    return assignment


def annealed_assignment(weights: Mapping[Pair, int],
                        variables: Sequence[str] = (),
                        banks: Tuple[str, str] = ("x", "y"),
                        seed: int = 0, steps: int = 2000,
                        start_temperature: float = 2.0
                        ) -> Dict[str, str]:
    """Simulated-annealing refinement of the greedy assignment."""
    rng = random.Random(seed)
    assignment = greedy_assignment(weights, variables, banks)
    names = list(assignment)
    if not names:
        return assignment
    best = dict(assignment)
    best_value = current_value = cut_value(weights, assignment)
    temperature = start_temperature
    cooling = 0.995
    other = {banks[0]: banks[1], banks[1]: banks[0]}
    for _ in range(steps):
        name = rng.choice(names)
        assignment[name] = other[assignment[name]]
        value = cut_value(weights, assignment)
        delta = value - current_value
        if delta >= 0 or rng.random() < pow(2.718281828,
                                            delta / max(temperature,
                                                        1e-9)):
            current_value = value
            if value > best_value:
                best_value = value
                best = dict(assignment)
        else:
            assignment[name] = other[assignment[name]]   # undo
        temperature *= cooling
    return best


def exhaustive_assignment(weights: Mapping[Pair, int],
                          variables: Sequence[str] = (),
                          banks: Tuple[str, str] = ("x", "y"),
                          max_variables: int = 14) -> Dict[str, str]:
    """Exact MAX-CUT by enumeration (test oracle; small instances)."""
    names = _variables(weights, variables)
    if len(names) > max_variables:
        raise ValueError(
            f"exhaustive bank assignment limited to {max_variables} "
            f"variables, got {len(names)}")
    best: Dict[str, str] = {name: banks[0] for name in names}
    best_value = cut_value(weights, best)
    for choice in product(banks, repeat=len(names)):
        candidate = dict(zip(names, choice))
        value = cut_value(weights, candidate)
        if value > best_value:
            best, best_value = candidate, value
    return best


def single_bank_assignment(weights: Mapping[Pair, int],
                           variables: Sequence[str] = (),
                           banks: Tuple[str, str] = ("x", "y")
                           ) -> Dict[str, str]:
    """Everything in one bank -- the ablation baseline (no parallel
    operand fetches ever)."""
    return {name: banks[0] for name in _variables(weights, variables)}
