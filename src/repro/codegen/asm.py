"""Target-neutral assembly objects.

Generated code is a :class:`CodeSeq`: a flat list of instructions,
labels, and loop markers.  Memory operands stay *symbolic* (symbol name
plus affine index) until the address-assignment stage resolves them to a
concrete addressing mode; this is what lets offset assignment
(:mod:`repro.codegen.offset`) reorder the data layout after selection,
exactly as in the paper's pipeline (Fig. 2: "compaction, address
assignment" come after instruction selection).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.ir.dfg import ArrayIndex


# ----------------------------------------------------------------------
# Operands
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Mem:
    """Symbolic memory operand: ``symbol`` plus optional affine index.

    After address assignment, ``mode`` describes how the location is
    reached: ``"direct"`` (absolute address in ``address``) or
    ``"indirect"`` (through an address register, with an optional
    post-modify step encoded by the offset-assignment stage).
    """

    symbol: str
    index: Optional[ArrayIndex] = None
    mode: str = "symbolic"            # "symbolic" | "direct" | "indirect"
    address: Optional[int] = None     # direct mode
    areg: Optional[str] = None        # indirect mode: address register
    post_modify: int = 0              # indirect mode: +1 / -1 / 0
    bank: Optional[str] = None        # memory bank ("x"/"y") when banked

    def __str__(self) -> str:
        if self.mode == "direct":
            return f"@{self.address}"
        if self.mode == "indirect":
            suffix = {1: "+", -1: "-", 0: ""}.get(self.post_modify, "?")
            return f"*{self.areg}{suffix}"
        if self.index is None:
            return self.symbol
        return f"{self.symbol}[{self.index}]"


@dataclass(frozen=True)
class Imm:
    """Immediate operand."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Reg:
    """Named concrete register operand."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LabelRef:
    """Reference to a label (branch target)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AddrOf:
    """Address-of immediate: the data address of ``symbol[offset]``.

    Used by code that computes addresses at run time (the baseline
    compiler's explicit array indexing); resolved to a plain ``Imm`` by
    the address-assignment stage once the memory map exists.
    """

    symbol: str
    offset: int = 0

    def __str__(self) -> str:
        if self.offset:
            return f"&{self.symbol}+{self.offset}"
        return f"&{self.symbol}"


Operand = Union[Mem, Imm, Reg, LabelRef, AddrOf]


# ----------------------------------------------------------------------
# Instructions and pseudo-items
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AsmInstr:
    """One machine instruction.

    ``modes`` lists machine-mode requirements (e.g. ``{"pm": 1}``: the
    product shifter must be in mode 1); the mode-minimization stage
    inserts the cheapest sequence of mode-change instructions satisfying
    them.  ``parallel`` holds move operations packed into this
    instruction's parallel slots by the compaction stage.
    """

    opcode: str
    operands: Tuple[Operand, ...] = ()
    words: int = 1
    cycles: int = 1
    modes: Mapping[str, int] = field(default_factory=dict)
    parallel: Tuple["AsmInstr", ...] = ()
    comment: str = ""

    def with_operands(self, *operands: Operand) -> "AsmInstr":
        """Copy of this instruction with the operand tuple replaced."""
        return replace(self, operands=tuple(operands))

    def render(self) -> str:
        """Assembly text, including packed moves and the comment."""
        text = self.opcode
        if self.operands:
            text += " " + ", ".join(str(op) for op in self.operands)
        for move in self.parallel:
            text += f"  || {move.render()}"
        if self.comment:
            text = f"{text:<32}; {self.comment}"
        return text

    def memory_operands(self) -> Iterator[Mem]:
        """All Mem operands, including those of packed parallel moves."""
        for operand in self.operands:
            if isinstance(operand, Mem):
                yield operand
        for move in self.parallel:
            yield from move.memory_operands()


@dataclass(frozen=True)
class Label:
    name: str

    def render(self) -> str:
        """Assembly text of the label definition."""
        return f"{self.name}:"


@dataclass(frozen=True)
class LoopBegin:
    """Marker opening a counted hardware/software loop (count iterations).

    The target back end decides how to realize it (RPTK repeat, BANZ
    decrement-and-branch, DO loop, ...) during loop finalization; until
    then the markers keep the structure explicit for the optimizers.
    """

    count: int
    loop_id: int

    def render(self) -> str:
        """Marker text (loops are not yet realized at this stage)."""
        return f".loop {self.loop_id} x{self.count}"


@dataclass(frozen=True)
class LoopEnd:
    loop_id: int

    def render(self) -> str:
        """Marker text closing a loop region."""
        return f".endloop {self.loop_id}"


CodeItem = Union[AsmInstr, Label, LoopBegin, LoopEnd]


# ----------------------------------------------------------------------
# Code sequences
# ----------------------------------------------------------------------

class CodeSeq:
    """A mutable list of code items with accounting helpers."""

    def __init__(self, items: Optional[Iterable[CodeItem]] = None):
        self.items: List[CodeItem] = list(items) if items else []

    def append(self, item: CodeItem) -> None:
        """Append one code item."""
        self.items.append(item)

    def extend(self, items: Iterable[CodeItem]) -> None:
        """Append several code items in order."""
        self.items.extend(items)

    def instructions(self) -> Iterator[AsmInstr]:
        """Iterate over instructions only (skipping labels/markers)."""
        for item in self.items:
            if isinstance(item, AsmInstr):
                yield item

    def words(self) -> int:
        """Static code size in instruction words."""
        return sum(instr.words for instr in self.instructions())

    def render(self) -> str:
        """Full assembly listing with loop-structured indentation."""
        lines: List[str] = []
        indent = 0
        for item in self.items:
            if isinstance(item, LoopEnd):
                indent = max(indent - 1, 0)
            prefix = "    " * indent
            if isinstance(item, Label):
                lines.append(item.render())
            else:
                lines.append(prefix + item.render())
            if isinstance(item, LoopBegin):
                indent += 1
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[CodeItem]:
        return iter(self.items)

    def copy(self) -> "CodeSeq":
        """Shallow copy (items are immutable; the list is fresh)."""
        return CodeSeq(self.items)
