"""Offset assignment: data layout for AGU auto-increment addressing.

Sec. 3.3 of the paper: "it is desirable to assign variables to memory
such that as many variable accesses as possible refer to adjacent
memory locations.  Bartley [6], Liao [26] and Leupers [21] have
described algorithms for this optimization."

The *simple offset assignment* (SOA) problem: given the access sequence
of a set of scalar variables, order them in memory so that consecutive
accesses are to adjacent cells as often as possible (every non-adjacent
step costs an explicit address-register load).  Liao showed SOA is
equivalent to finding a maximum-weight Hamiltonian path cover of the
*access graph* (nodes = variables, edge weight = number of adjacent
access pairs), and that Bartley's greedy edge-selection heuristic
approximates it well.

Provided solvers:

- :func:`naive_order` -- first-use order (the ablation baseline);
- :func:`liao_order` -- the Bartley/Liao greedy max-weight path cover;
- :func:`exhaustive_order` -- exact optimum by permutation search
  (small variable counts; used to validate the heuristic in tests);
- :func:`general_offset_assignment` -- GOA: partition the variables
  over k address registers (Leupers-style greedy partitioning), where
  each register serves its partition's subsequence.

The cost model (:func:`assignment_cost`) counts address-register loads
under a unit-stride AGU; it is shared by the solvers, the M56 back end
and the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------

def assignment_cost(sequence: Sequence[str], order: Sequence[str],
                    setup_cost: int = 1) -> int:
    """Address-register loads needed to walk ``sequence`` when variables
    are laid out in ``order`` (unit-stride post-increment AGU).

    The first access costs ``setup_cost``; each later access costs one
    more load iff it is not within +/-1 of the previous address (free
    post-increment/decrement/none otherwise).
    """
    if not sequence:
        return 0
    position = {name: index for index, name in enumerate(order)}
    missing = [name for name in sequence if name not in position]
    if missing:
        raise ValueError(f"sequence uses variables not in the layout: "
                         f"{sorted(set(missing))}")
    cost = setup_cost
    current = position[sequence[0]]
    for name in sequence[1:]:
        target = position[name]
        if abs(target - current) > 1:
            cost += 1
        current = target
    return cost


def access_graph(sequence: Sequence[str]) -> Dict[Tuple[str, str], int]:
    """Liao's access graph: weight[(u, v)] = number of adjacent (u, v)
    pairs in the sequence (undirected, keyed with u < v)."""
    weights: Dict[Tuple[str, str], int] = {}
    for first, second in zip(sequence, sequence[1:]):
        if first == second:
            continue
        key = (first, second) if first < second else (second, first)
        weights[key] = weights.get(key, 0) + 1
    return weights


def _variables_in_first_use_order(sequence: Sequence[str]) -> List[str]:
    seen: Dict[str, None] = {}
    for name in sequence:
        seen.setdefault(name, None)
    return list(seen)


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------

def naive_order(sequence: Sequence[str]) -> List[str]:
    """First-use order -- what a compiler with no offset assignment
    produces (declaration order, essentially)."""
    return _variables_in_first_use_order(sequence)


def liao_order(sequence: Sequence[str]) -> List[str]:
    """Bartley/Liao greedy max-weight path cover of the access graph.

    Edges are considered by decreasing weight; an edge is accepted if
    both endpoints still have degree < 2 in the chosen set and it does
    not close a cycle.  The chosen edges form disjoint paths, which are
    concatenated into the memory order.

    The greedy cover is a heuristic and can occasionally lose to the
    trivial first-use order (path concatenation order is not part of
    the theory); like practical implementations, this returns whichever
    of the two layouts costs less, so it never regresses the baseline.
    """
    variables = _variables_in_first_use_order(sequence)
    weights = access_graph(sequence)
    edges = sorted(weights.items(),
                   key=lambda item: (-item[1], item[0]))
    degree: Dict[str, int] = {name: 0 for name in variables}
    # Union-find over path components to reject cycles.
    parent: Dict[str, str] = {name: name for name in variables}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    adjacency: Dict[str, List[str]] = {name: [] for name in variables}
    for (u, v), _w in edges:
        if degree[u] >= 2 or degree[v] >= 2:
            continue
        if find(u) == find(v):
            continue
        parent[find(u)] = find(v)
        degree[u] += 1
        degree[v] += 1
        adjacency[u].append(v)
        adjacency[v].append(u)

    order: List[str] = []
    visited: Dict[str, None] = {}
    for name in variables:
        if name in visited or degree[name] > 1:
            continue
        # walk the path from this endpoint
        current, previous = name, None
        while current is not None and current not in visited:
            visited[current] = None
            order.append(current)
            next_node = None
            for neighbour in adjacency[current]:
                if neighbour != previous and neighbour not in visited:
                    next_node = neighbour
                    break
            previous, current = current, next_node
    for name in variables:       # isolated nodes with degree 2 cycles?
        if name not in visited:
            visited[name] = None
            order.append(name)
    fallback = naive_order(sequence)
    if assignment_cost(sequence, fallback) < \
            assignment_cost(sequence, order):
        return fallback
    return order


def exhaustive_order(sequence: Sequence[str],
                     max_variables: int = 8) -> List[str]:
    """Exact optimum by permutation search (test oracle)."""
    variables = _variables_in_first_use_order(sequence)
    if len(variables) > max_variables:
        raise ValueError(
            f"exhaustive search limited to {max_variables} variables, "
            f"got {len(variables)}")
    best = variables
    best_cost = assignment_cost(sequence, variables)
    for candidate in permutations(variables):
        cost = assignment_cost(sequence, candidate)
        if cost < best_cost:
            best = list(candidate)
            best_cost = cost
    return list(best)


# ----------------------------------------------------------------------
# General offset assignment (k address registers)
# ----------------------------------------------------------------------

@dataclass
class GoaResult:
    """Partition of variables over address registers plus layouts.

    ``partitions[k]`` is the variable set served by register k, and
    ``orders[k]`` its memory order; the full memory layout is the
    concatenation of the orders.  ``cost`` is the total address-load
    count (each register pays its own setup).
    """

    partitions: List[List[str]]
    orders: List[List[str]]
    cost: int

    @property
    def layout(self) -> List[str]:
        combined: List[str] = []
        for order in self.orders:
            combined.extend(order)
        return combined


def general_offset_assignment(sequence: Sequence[str], registers: int,
                              solver=liao_order) -> GoaResult:
    """GOA by greedy variable-to-register partitioning (Leupers-style).

    Variables are assigned one by one (in decreasing access frequency)
    to the register whose subsequence cost grows least; each partition's
    layout is then solved as an independent SOA instance.
    """
    if registers < 1:
        raise ValueError("need at least one address register")
    variables = _variables_in_first_use_order(sequence)
    frequency = {name: 0 for name in variables}
    for name in sequence:
        frequency[name] += 1
    by_frequency = sorted(variables,
                          key=lambda name: (-frequency[name], name))
    assignment: Dict[str, int] = {}

    def partition_cost(register: int) -> int:
        members = {name for name, reg in assignment.items()
                   if reg == register}
        subsequence = [name for name in sequence if name in members]
        if not subsequence:
            return 0
        return assignment_cost(subsequence, solver(subsequence))

    for name in by_frequency:
        best_register, best_total = 0, None
        for register in range(registers):
            assignment[name] = register
            total = partition_cost(register)
            if best_total is None or total < best_total:
                best_register, best_total = register, total
            del assignment[name]
        assignment[name] = best_register

    partitions: List[List[str]] = [[] for _ in range(registers)]
    for name in variables:
        partitions[assignment[name]].append(name)
    orders: List[List[str]] = []
    total_cost = 0
    for members in partitions:
        member_set = set(members)
        subsequence = [name for name in sequence if name in member_set]
        order = solver(subsequence) if subsequence else []
        orders.append(order)
        if subsequence:
            total_cost += assignment_cost(subsequence, order)
    return GoaResult(partitions=partitions, orders=orders,
                     cost=total_cost)
