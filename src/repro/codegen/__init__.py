"""Code generation: the RECORD pipeline and its optimization stages.

Stage map (Fig. 2 of the paper):

- :mod:`repro.codegen.asm` -- target-neutral assembly objects (operands,
  instructions, code sequences with labels and loop scaffolding).
- :mod:`repro.codegen.grammar` -- tree grammars: the "iburg input format"
  that instruction patterns are converted into.
- :mod:`repro.codegen.burg` -- the iburg-equivalent: a BURS
  dynamic-programming labeller/reducer generated from a tree grammar.
- :mod:`repro.codegen.selector` -- instruction selection: algebraic
  variant enumeration x BURS covering, with cover-or-cut DAG splitting.
- :mod:`repro.codegen.regalloc` -- heterogeneous register assignment.
- :mod:`repro.codegen.compaction` -- parallel-instruction compaction.
- :mod:`repro.codegen.offset` -- offset assignment for AGU auto-inc/dec.
- :mod:`repro.codegen.membank` -- X/Y memory-bank assignment.
- :mod:`repro.codegen.modes` -- mode-change minimization.
- :mod:`repro.codegen.pipeline` -- the full RECORD compiler driver.
"""

from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LoopBegin, LoopEnd, Mem, Reg,
)
from repro.codegen.grammar import Nt, Pat, Rule, Term, TreeGrammar, Cost
from repro.codegen.burg import BurgMatcher, CoverError

__all__ = [
    "AsmInstr", "CodeSeq", "Imm", "Label", "LoopBegin", "LoopEnd",
    "Mem", "Reg",
    "Nt", "Pat", "Rule", "Term", "TreeGrammar", "Cost",
    "BurgMatcher", "CoverError",
]
