"""Tree grammars -- the "iburg input format".

A :class:`TreeGrammar` is a set of :class:`Rule` objects, each rewriting
a tree pattern to a nonterminal at some cost.  Patterns are built from:

- :class:`Pat` -- an operator node (matches a COMPUTE tree node with the
  same operator and matching children),
- :class:`Nt` -- a nonterminal leaf (matches any subtree that derives
  that nonterminal; cost added by the DP),
- :class:`Term` -- a terminal leaf (matches a CONST or REF tree leaf,
  optionally guarded by a predicate, e.g. "fits in 8 bits").

Instruction patterns extracted from an RT netlist by :mod:`repro.ise`
are converted into rules of this form (the "ISE output to iburg input
format conversion" box in Fig. 2); hand-written instruction-set-level
target models contribute rules directly.

Every rule carries an ``emit`` function invoked during the reduce walk::

    emit(ctx, args) -> loc

``args`` lists, in pattern preorder, the payload of every leaf: the
reduced location for an ``Nt`` leaf, a :class:`repro.codegen.asm.Mem`
for a ``Term("ref")`` leaf, and an ``int`` for a ``Term("const")`` leaf.
``ctx`` is an :class:`EmitContext`; ``loc`` is the rule author's
representation of where the value now lives (by convention: the
register-class name for register nonterminals, a ``Mem`` for memory
nonterminals, an ``int`` for immediate nonterminals).

``clobbers`` declares the volatile machine resources the emitted code
destroys; the reducer uses it to find a legal evaluation order for the
children of multi-operand patterns (accumulator machines!).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.codegen.asm import AsmInstr, CodeSeq, Mem
from repro.ir.ops import OPS, OpKind
from repro.ir.trees import Tree


# ----------------------------------------------------------------------
# Costs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Cost:
    """Additive cost: code words and execution cycles."""

    words: int = 0
    cycles: int = 0

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.words + other.words, self.cycles + other.cycles)

    def key(self, metric: str) -> Tuple[int, int]:
        """Comparison key.  ``"size"`` minimizes words first (the paper's
        Table 1 metric); ``"speed"`` minimizes cycles first."""
        if metric == "size":
            return (self.words, self.cycles)
        if metric == "speed":
            return (self.cycles, self.words)
        raise ValueError(f"unknown metric {metric!r}")


ZERO_COST = Cost(0, 0)


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Nt:
    """Nonterminal leaf: matches any subtree deriving ``name``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Term:
    """Terminal leaf: matches a CONST (``kind="const"``) or REF
    (``kind="ref"``) tree leaf, optionally guarded by ``predicate``."""

    kind: str
    predicate: Optional[Callable[[Tree], bool]] = field(
        default=None, compare=False)
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("const", "ref"):
            raise ValueError(f"Term kind must be 'const' or 'ref', "
                             f"got {self.kind!r}")

    def matches(self, tree: Tree) -> bool:
        """Whether this terminal admits the given tree leaf."""
        if self.kind == "const" and tree.kind is not OpKind.CONST:
            return False
        if self.kind == "ref" and tree.kind is not OpKind.REF:
            return False
        return self.predicate is None or self.predicate(tree)

    def __str__(self) -> str:
        return self.description or self.kind


@dataclass(frozen=True)
class Pat:
    """Operator pattern node."""

    op: str
    children: Tuple[Union["Pat", Nt, Term], ...]

    def __post_init__(self) -> None:
        operator = OPS.get(self.op)
        if operator is None:
            raise ValueError(f"unknown operator {self.op!r} in pattern")
        expected = operator.arity
        if len(self.children) != expected:
            raise ValueError(
                f"pattern {self.op} expects {expected} children, "
                f"got {len(self.children)}")

    def __str__(self) -> str:
        args = ", ".join(str(child) for child in self.children)
        return f"{self.op}({args})"


Pattern = Union[Pat, Nt, Term]


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

EmitFn = Callable[["EmitContext", List[object]], object]


@dataclass(frozen=True)
class Rule:
    """One grammar production ``nonterm <- pattern`` at ``cost``.

    ``guard`` is an optional whole-subtree predicate evaluated after the
    structural match; it expresses constraints spanning several leaves
    (e.g. the TC25 ``DMOV`` rule requires source and destination to be
    adjacent cells of the same array).
    """

    nonterm: str
    pattern: Pattern
    cost: Cost
    emit: EmitFn = field(compare=False, default=None)
    name: str = ""
    clobbers: FrozenSet[str] = frozenset()
    guard: Optional[Callable[[Tree], bool]] = field(compare=False,
                                                    default=None)

    @property
    def is_chain(self) -> bool:
        return isinstance(self.pattern, Nt)

    def __str__(self) -> str:
        label = self.name or "?"
        return (f"{self.nonterm} <- {self.pattern}   "
                f"[{self.cost.words}w/{self.cost.cycles}c] ({label})")


WIDE_PREFIX = "$wide"


class EmitContext:
    """State threaded through the reduce walk."""

    def __init__(self, code: Optional[CodeSeq] = None,
                 scratch_prefix: str = "$s"):
        self.code = code if code is not None else CodeSeq()
        self._scratch_prefix = scratch_prefix
        self._scratch_counter = 0
        self._wide_counter = 0
        self.scratch_symbols: List[str] = []

    def emit(self, instr: AsmInstr) -> None:
        """Append one instruction to the output sequence."""
        self.code.append(instr)

    def scratch(self) -> Mem:
        """Allocate a fresh scratch memory cell (spill temporary)."""
        name = f"{self._scratch_prefix}{self._scratch_counter}"
        self._scratch_counter += 1
        self.scratch_symbols.append(name)
        return Mem(name)

    def wide_scratch(self) -> Mem:
        """Allocate a fresh double-width spill slot.

        The returned symbolic name stands for a high/low cell pair
        (``<name>.h`` / ``<name>.l``); targets that support wide spills
        provide a ``wstmt`` store rule and an ``acc <- wide-ref`` reload
        rule over these names.
        """
        name = f"{WIDE_PREFIX}{self._wide_counter}"
        self._wide_counter += 1
        return Mem(name)


class TreeGrammar:
    """An indexed rule set plus resource metadata for the reducer.

    ``nt_resources`` maps nonterminal names to the volatile machine
    resource holding their value (``None`` entries / missing keys mean
    the value is in memory or an immediate and cannot be clobbered).
    """

    def __init__(self, name: str, rules: Sequence[Rule],
                 nt_resources: Optional[Dict[str, Optional[str]]] = None):
        self.name = name
        self.rules: List[Rule] = list(rules)
        self.nt_resources: Dict[str, Optional[str]] = dict(nt_resources or {})
        self._by_op: Dict[str, List[Rule]] = {}
        self._leaf_rules: List[Rule] = []
        self._chain_by_source: Dict[str, List[Rule]] = {}
        self.nonterminals: List[str] = []
        self._index()

    def _index(self) -> None:
        seen_nts: Dict[str, None] = {}
        for rule in self.rules:
            seen_nts.setdefault(rule.nonterm, None)
            if rule.is_chain:
                self._chain_by_source.setdefault(
                    rule.pattern.name, []).append(rule)
            elif isinstance(rule.pattern, Term):
                self._leaf_rules.append(rule)
            else:
                self._by_op.setdefault(rule.pattern.op, []).append(rule)
        self.nonterminals = list(seen_nts)

    def rules_for_op(self, op_name: str) -> List[Rule]:
        """Pattern rules whose root operator is ``op_name``."""
        return self._by_op.get(op_name, [])

    def leaf_rules(self) -> List[Rule]:
        """Rules whose pattern is a terminal leaf."""
        return self._leaf_rules

    def chain_rules_from(self, source_nt: str) -> List[Rule]:
        """Chain rules converting from nonterminal ``source_nt``."""
        return self._chain_by_source.get(source_nt, [])

    def resource_of(self, nonterm: str) -> Optional[str]:
        """Volatile machine resource holding ``nonterm`` values."""
        return self.nt_resources.get(nonterm)

    def add_rule(self, rule: Rule) -> None:
        """Extend the grammar (used when ISE merges extracted patterns)."""
        self.rules.append(rule)
        self._by_op.clear()
        self._leaf_rules = []
        self._chain_by_source.clear()
        self._index()

    def dump(self) -> str:
        """Human-readable rule listing."""
        return "\n".join(str(rule) for rule in self.rules)
