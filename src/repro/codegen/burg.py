"""BURS tree-pattern matching by dynamic programming -- the iburg stand-in.

Implements the classic two-pass architecture of iburg / the
Aho-Ganapathi-Tjiang code generator the paper cites in Sec. 4.3.3:

1. **label** -- a bottom-up pass computes, for every subtree and every
   nonterminal, the cheapest derivation of that subtree to that
   nonterminal (rule costs are additive; chain rules are closed to a
   fixpoint per node).

2. **reduce** -- a top-down pass replays the optimal derivation for a
   goal nonterminal, calling each rule's ``emit`` function.

Heterogeneous register classes are expressed through the nonterminals,
which is exactly how tree parsing handles non-homogeneous register
architectures (Balachandran et al. [5], Araujo/Malik [4]).

One issue iburg never had to face is real here: on accumulator machines
several children of one pattern may want to travel through the same
volatile resource (ACC, T, P).  The reducer picks a child evaluation
order such that no child's code clobbers a resource holding an earlier
sibling's value, using each rule's declared ``clobbers`` set; when no
such order exists the reduction fails with :class:`CoverError` and the
selector (:mod:`repro.codegen.selector`) falls back to splitting the
tree at a temporary -- the same "cover or cut" decomposition RECORD's
heuristics perform.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.codegen.asm import Mem
from repro.codegen.grammar import (
    Cost, EmitContext, Nt, Pat, Pattern, Rule, Term, TreeGrammar,
)
from repro.ir.ops import OpKind
from repro.ir.trees import Tree


class CoverError(Exception):
    """The grammar cannot derive the requested goal for a tree (or no
    legal evaluation order exists for the optimal derivation)."""


@dataclass
class _Derivation:
    """Cheapest derivation of one (subtree, nonterminal) pair."""

    cost: Cost
    rule: Rule
    # For a pattern rule: (nt_name, subtree) per Nt leaf, in preorder.
    bindings: Tuple[Tuple[str, Tree], ...] = ()
    # Union of clobbers along the whole derivation (incl. children).
    clobbers: FrozenSet[str] = frozenset()
    # For a chain rule: the source nonterminal it converts from.
    chain_source: Optional[str] = None


_State = Dict[str, _Derivation]


def _match(pattern: Pattern, tree: Tree,
           state_of) -> Optional[List[Tuple[str, Tree]]]:
    """Structural match of ``pattern`` against ``tree``.

    Returns the list of (nonterminal, subtree) bindings for the Nt
    leaves in preorder, or ``None`` on mismatch.  ``state_of(subtree)``
    must return the already-computed label state of a subtree (children
    are labelled before parents in the bottom-up pass).
    """
    if isinstance(pattern, Nt):
        state = state_of(tree)
        if pattern.name not in state:
            return None
        return [(pattern.name, tree)]
    if isinstance(pattern, Term):
        return [] if pattern.matches(tree) else None
    # Pat
    if tree.kind is not OpKind.COMPUTE or tree.operator.name != pattern.op:
        return None
    if len(pattern.children) != len(tree.children):
        return None
    bindings: List[Tuple[str, Tree]] = []
    for sub_pattern, sub_tree in zip(pattern.children, tree.children):
        sub_bindings = _match(sub_pattern, sub_tree, state_of)
        if sub_bindings is None:
            return None
        bindings.extend(sub_bindings)
    return bindings


def _terminal_payloads(pattern: Pattern, tree: Tree) -> List[object]:
    """Payloads of Term leaves in preorder: Mem for refs, int for consts."""
    if isinstance(pattern, Nt):
        return []
    if isinstance(pattern, Term):
        if pattern.kind == "const":
            return [tree.value]
        return [Mem(tree.symbol, tree.index)]
    payloads: List[object] = []
    for sub_pattern, sub_tree in zip(pattern.children, tree.children):
        payloads.extend(_terminal_payloads(sub_pattern, sub_tree))
    return payloads


def _leaf_slots(pattern: Pattern) -> List[str]:
    """Kinds of leaves in preorder: 'nt' or 'term'."""
    if isinstance(pattern, Nt):
        return ["nt"]
    if isinstance(pattern, Term):
        return ["term"]
    slots: List[str] = []
    for child in pattern.children:
        slots.extend(_leaf_slots(child))
    return slots


class BurgMatcher:
    """A labeller/reducer generated from a tree grammar.

    ``metric`` selects the optimization objective: ``"size"`` (code
    words; the paper's Table 1 metric) or ``"speed"`` (cycles).
    """

    def __init__(self, grammar: TreeGrammar, metric: str = "size",
                 cache: bool = True):
        self.grammar = grammar
        self.metric = metric
        Cost().key(metric)   # validate metric early
        # Persistent label cache: states depend only on the (fixed)
        # grammar and the subtree, so they are shared across label()
        # calls -- the selector labels many algebraic variants that
        # overlap heavily in subtrees, and a matcher kept alive by the
        # compiler's pool shares them across whole programs.  With
        # ``cache=False`` every label() call starts cold (the
        # before/after baseline of bench_compile_speed).
        self.cache = cache
        self._states: Dict[Tree, _State] = {}
        # Cache telemetry, surfaced through SelectionStats.
        self.label_hits = 0
        self.label_misses = 0
        self.label_seconds = 0.0

    # ------------------------------------------------------------------
    # Labelling
    # ------------------------------------------------------------------

    def label(self, tree: Tree) -> Dict[Tree, _State]:
        """Compute optimal-derivation states for every distinct subtree
        (cached across calls; the grammar is immutable per matcher)."""
        states = self._states if self.cache else {}
        started = perf_counter()
        self._label_node(tree, states)
        self.label_seconds += perf_counter() - started
        return states

    def _label_node(self, tree: Tree, states: Dict[Tree, _State]) -> None:
        if tree in states:
            self.label_hits += 1
            return
        self.label_misses += 1
        for child in tree.children:
            self._label_node(child, states)
        state: _State = {}
        states[tree] = state

        def state_of(subtree: Tree) -> _State:
            return states[subtree]

        if tree.kind is OpKind.COMPUTE:
            candidates = self.grammar.rules_for_op(tree.operator.name)
        else:
            candidates = self.grammar.leaf_rules()
        for rule in candidates:
            bindings = _match(rule.pattern, tree, state_of)
            if bindings is None:
                continue
            if rule.guard is not None and not rule.guard(tree):
                continue
            cost = rule.cost
            clobbers = set(rule.clobbers)
            feasible = True
            for nt_name, subtree in bindings:
                derivation = states[subtree].get(nt_name)
                if derivation is None:
                    feasible = False
                    break
                cost = cost + derivation.cost
                clobbers |= derivation.clobbers
            if not feasible:
                continue
            self._consider(state, rule.nonterm, _Derivation(
                cost=cost, rule=rule, bindings=tuple(bindings),
                clobbers=frozenset(clobbers)))
        self._close_chains(state)

    def _consider(self, state: _State, nonterm: str,
                  derivation: _Derivation) -> None:
        existing = state.get(nonterm)
        if existing is None or \
                derivation.cost.key(self.metric) < existing.cost.key(self.metric):
            state[nonterm] = derivation

    def _close_chains(self, state: _State) -> None:
        """Relax chain rules to a fixpoint (grammars are tiny: iterate)."""
        changed = True
        while changed:
            changed = False
            for source_nt in list(state):
                source = state[source_nt]
                for rule in self.grammar.chain_rules_from(source_nt):
                    cost = rule.cost + source.cost
                    clobbers = frozenset(set(rule.clobbers) | source.clobbers)
                    existing = state.get(rule.nonterm)
                    if existing is None or \
                            cost.key(self.metric) < existing.cost.key(self.metric):
                        state[rule.nonterm] = _Derivation(
                            cost=cost, rule=rule, clobbers=clobbers,
                            chain_source=source_nt)
                        changed = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def cover_cost(self, tree: Tree, goal: str) -> Optional[Cost]:
        """Cheapest cost of deriving ``tree`` to ``goal``, or None."""
        states = self.label(tree)
        derivation = states[tree].get(goal)
        return derivation.cost if derivation else None

    def cover_rules(self, tree: Tree, goal: str) -> List[Rule]:
        """The rules of the optimal cover in reduce order (for display,
        e.g. regenerating Fig. 5)."""
        states = self.label(tree)
        rules: List[Rule] = []

        def walk(node: Tree, nonterm: str) -> None:
            derivation = states[node].get(nonterm)
            if derivation is None:
                raise CoverError(
                    f"no derivation of {node} to {nonterm!r}")
            if derivation.chain_source is not None:
                walk(node, derivation.chain_source)
            else:
                for nt_name, subtree in derivation.bindings:
                    walk(subtree, nt_name)
            rules.append(derivation.rule)

        walk(tree, goal)
        return rules

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------

    def reduce(self, tree: Tree, goal: str, ctx: EmitContext) -> object:
        """Emit code for the optimal cover of ``tree`` to ``goal``.

        Returns the location object produced by the root rule's emit.
        Raises :class:`CoverError` when no derivation exists or when no
        legal child evaluation order exists.
        """
        states = self.label(tree)
        if goal not in states[tree]:
            raise CoverError(
                f"grammar {self.grammar.name!r} cannot derive {tree} "
                f"to goal {goal!r}")
        return self._reduce_node(tree, goal, states, ctx)

    def _reduce_node(self, tree: Tree, nonterm: str,
                     states: Dict[Tree, _State],
                     ctx: EmitContext) -> object:
        derivation = states[tree][nonterm]
        rule = derivation.rule
        if derivation.chain_source is not None:
            source_loc = self._reduce_node(tree, derivation.chain_source,
                                           states, ctx)
            return rule.emit(ctx, [source_loc])

        order = self._evaluation_order(derivation, states)
        locs: Dict[int, object] = {}
        for binding_index in order:
            nt_name, subtree = derivation.bindings[binding_index]
            locs[binding_index] = self._reduce_node(subtree, nt_name,
                                                    states, ctx)
        args = self._build_args(rule, tree, derivation, locs)
        return rule.emit(ctx, args)

    def _evaluation_order(self, derivation: _Derivation,
                          states: Dict[Tree, _State]) -> List[int]:
        """Order of Nt bindings such that no later child clobbers an
        earlier child's delivery resource."""
        bindings = derivation.bindings
        if len(bindings) <= 1:
            return list(range(len(bindings)))
        info = []
        for index, (nt_name, subtree) in enumerate(bindings):
            child = states[subtree][nt_name]
            delivers = self.grammar.resource_of(nt_name)
            info.append((index, delivers, child.clobbers))
        for order in itertools.permutations(range(len(bindings))):
            valid = True
            for i_position in range(len(order)):
                delivers = info[order[i_position]][1]
                if delivers is None:
                    continue
                for j_position in range(i_position + 1, len(order)):
                    if delivers in info[order[j_position]][2]:
                        valid = False
                        break
                if not valid:
                    break
            if valid:
                return list(order)
        raise CoverError(
            f"no legal evaluation order for rule {derivation.rule.name!r}")

    def _build_args(self, rule: Rule, tree: Tree, derivation: _Derivation,
                    locs: Dict[int, object]) -> List[object]:
        """Interleave Nt locations and Term payloads in pattern preorder."""
        payloads = _terminal_payloads(rule.pattern, tree)
        slots = _leaf_slots(rule.pattern)
        args: List[object] = []
        nt_index = 0
        term_index = 0
        for slot in slots:
            if slot == "nt":
                args.append(locs[nt_index])
                nt_index += 1
            else:
                args.append(payloads[term_index])
                term_index += 1
        return args
