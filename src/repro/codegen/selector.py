"""Instruction selection: algebraic variants x BURS covering.

Implements RECORD's selection strategy (Sec. 4.3.3): "RECORD uses
algebraic rules for transforming the original data flow tree into
equivalent ones and calls the iburg-matcher with each tree.  The tree
requiring the smallest number of covering patterns is then selected."

Two extra mechanisms make selection total on real input:

- **store wrapping**: an assignment ``dest := tree`` is matched as the
  tree ``store(ref dest, tree)`` against the ``stmt`` goal, so stores are
  ordinary grammar rules (SACL, DMOV, parallel moves, ...);
- **cover-or-cut**: when no variant of a tree is coverable (or the
  optimal cover has no legal evaluation order on an accumulator
  machine), the selector cuts a coverable subtree out into a compiler
  temporary and retries -- the "heuristic decomposition" the paper
  describes for graphs that tree covering cannot digest directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from repro.codegen.burg import BurgMatcher, CoverError
from repro.codegen.grammar import Cost, EmitContext, TreeGrammar
from repro.ir.algebraic import DEFAULT_RULES, RewriteRule, enumerate_variants
from repro.ir.dfg import ArrayIndex
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.ops import OpKind
from repro.ir.ranges import fits_word
from repro.ir.trees import Tree, TreeAssignment


class SelectionError(Exception):
    """No derivation exists for an assignment, even after cutting."""


@dataclass
class SelectionStats:
    """Aggregated statistics across all selected assignments."""

    assignments: int = 0
    variants_tried: int = 0
    variants_won: int = 0        # times a non-original variant was cheaper
    cuts: int = 0
    # cuts whose value may exceed the machine word: the spill wraps it,
    # which is only safe when the consumer port wraps anyway -- counted
    # so wide spills are observable (see ir.ranges)
    wide_spills: int = 0
    # times the coverage-only variant rescue was needed (algebraic=False)
    rescues: int = 0
    total_cost: Cost = field(default_factory=Cost)
    # BURS label-cache telemetry (deltas of the matcher's counters over
    # this selector's lifetime; the matcher may be shared/pooled).
    label_hits: int = 0
    label_misses: int = 0
    # wall-clock spent enumerating algebraic variants / labelling
    variant_seconds: float = 0.0
    label_seconds: float = 0.0

    @property
    def label_hit_rate(self) -> float:
        """Fraction of subtree labelings answered by the cache."""
        total = self.label_hits + self.label_misses
        return self.label_hits / total if total else 0.0


def wrap_store(symbol: str, index: Optional[ArrayIndex],
               tree: Tree) -> Tree:
    """Build the ``store(ref dest, value)`` tree used for matching."""
    return Tree.compute("store", Tree.ref(symbol, index), tree)


class Selector:
    """Selects instructions for tree assignments into an EmitContext."""

    GOAL = "stmt"

    def __init__(self, grammar: TreeGrammar, metric: str = "size",
                 algebraic: bool = True,
                 rewrite_rules: Optional[Sequence[RewriteRule]] = None,
                 variant_limit: int = 64,
                 fpc: Optional[FixedPointContext] = None,
                 matcher: Optional[BurgMatcher] = None,
                 label_cache: bool = True):
        """``matcher`` shares an existing (pooled) labeller -- it must
        have been built from the same grammar and metric; its label
        cache then persists across selectors and compiles."""
        if matcher is not None:
            self.matcher = matcher
        else:
            self.matcher = BurgMatcher(grammar, metric, cache=label_cache)
        self.metric = metric
        self.algebraic = algebraic
        self.rewrite_rules = list(rewrite_rules) if rewrite_rules is not None \
            else list(DEFAULT_RULES)
        self.variant_limit = variant_limit
        self.fpc = fpc if fpc is not None else FixedPointContext(16)
        self.stats = SelectionStats()
        self._label_base = (self.matcher.label_hits,
                            self.matcher.label_misses,
                            self.matcher.label_seconds)

    # ------------------------------------------------------------------

    def select_block(self, assignments: Sequence[TreeAssignment],
                     ctx: EmitContext) -> None:
        """Select instructions for a decomposed block, in order."""
        for assignment in assignments:
            self.select_assignment(assignment, ctx)

    def select_assignment(self, assignment: TreeAssignment,
                          ctx: EmitContext) -> Cost:
        """Emit code for one assignment; returns the chosen cover cost."""
        self.stats.assignments += 1
        cost = self._select(assignment.symbol, assignment.index,
                            assignment.tree, ctx)
        self.stats.total_cost = self.stats.total_cost + cost
        self._sync_label_stats()
        return cost

    def _sync_label_stats(self) -> None:
        """Fold the matcher's cache counters (delta since this selector
        was created -- the matcher may be shared) into the stats."""
        hits0, misses0, seconds0 = self._label_base
        self.stats.label_hits = self.matcher.label_hits - hits0
        self.stats.label_misses = self.matcher.label_misses - misses0
        self.stats.label_seconds = self.matcher.label_seconds - seconds0

    # ------------------------------------------------------------------

    def _variants(self, tree: Tree) -> List[Tree]:
        if not self.algebraic:
            return [tree]
        return self._enumerate(tree)

    def _enumerate(self, tree: Tree) -> List[Tree]:
        started = perf_counter()
        variants = enumerate_variants(tree, self.rewrite_rules,
                                      self.variant_limit)
        self.stats.variant_seconds += perf_counter() - started
        return variants

    def _select(self, symbol: str, index: Optional[ArrayIndex],
                tree: Tree, ctx: EmitContext,
                goal: Optional[str] = None) -> Cost:
        goal = goal or self.GOAL
        variants = self._variants(tree)
        self.stats.variants_tried += len(variants)
        scored: List[Tuple[Tuple[int, int], int, Tree]] = []
        for position, variant in enumerate(variants):
            wrapped = wrap_store(symbol, index, variant)
            cost = self.matcher.cover_cost(wrapped, goal)
            if cost is not None:
                scored.append((cost.key(self.metric), position, variant))
        if not scored and not self.algebraic:
            # Correctness rescue: even a compiler that does not *search*
            # algebraic variants for cost must still know that e.g.
            # ``a - b`` can be built as ``a + (-b)`` when the direct
            # form has no cover.  Enumerate rewrites once, coverage-only.
            for position, variant in enumerate(self._enumerate(tree)):
                wrapped = wrap_store(symbol, index, variant)
                cost = self.matcher.cover_cost(wrapped, goal)
                if cost is not None:
                    scored.append((cost.key(self.metric), position,
                                   variant))
            if scored:
                self.stats.rescues += 1
        scored.sort()
        for _, position, variant in scored:
            wrapped = wrap_store(symbol, index, variant)
            checkpoint = len(ctx.code.items)
            try:
                self.matcher.reduce(wrapped, goal, ctx)
            except CoverError:
                # Roll back partial emission and try the next variant.
                del ctx.code.items[checkpoint:]
                continue
            if position != 0:
                self.stats.variants_won += 1
            return self.matcher.cover_cost(wrapped, goal)
        return self._cut_and_retry(symbol, index, tree, ctx, goal)

    def _cut_and_retry(self, symbol: str, index: Optional[ArrayIndex],
                       tree: Tree, ctx: EmitContext,
                       goal: str) -> Cost:
        """Cut a coverable compute subtree into a temporary and retry.

        A cut value that may exceed the machine word first tries the
        target's double-width spill path (``wstmt`` goal + wide-reload
        rule), which preserves the extended-precision semantics; only
        when the target has none -- or the wide slot cannot be consumed
        where the subtree sat -- does the cut fall back to a word-sized
        cell (counted in ``stats.wide_spills``: the value wraps there,
        which is only harmless for wrap-consuming positions).
        """
        candidate = self._find_cut(tree)
        if candidate is None:
            raise SelectionError(
                f"no derivation for '{symbol} := {tree}' in grammar "
                f"{self.matcher.grammar.name!r}, and no subtree is "
                "independently coverable")
        self.stats.cuts += 1
        wide = not fits_word(candidate, self.fpc)
        if wide and "wstmt" in self.matcher.grammar.nonterminals:
            result = self._try_wide_cut(symbol, index, tree, candidate,
                                        ctx, goal)
            if result is not None:
                return result
        if wide:
            self.stats.wide_spills += 1
        temp = ctx.scratch()
        cut_cost = self._select(temp.symbol, None, candidate, ctx)
        replaced = _replace_subtree(tree, candidate, Tree.ref(temp.symbol))
        rest_cost = self._select(symbol, index, replaced, ctx, goal)
        return cut_cost + rest_cost

    def _try_wide_cut(self, symbol: str, index: Optional[ArrayIndex],
                      tree: Tree, candidate: Tree, ctx: EmitContext,
                      goal: str) -> Optional[Cost]:
        checkpoint = len(ctx.code.items)
        slot = ctx.wide_scratch()
        try:
            cut_cost = self._select(slot.symbol, None, candidate, ctx,
                                    goal="wstmt")
            replaced = _replace_subtree(tree, candidate,
                                        Tree.ref(slot.symbol))
            rest_cost = self._select(symbol, index, replaced, ctx, goal)
        except SelectionError:
            del ctx.code.items[checkpoint:]
            return None
        return cut_cost + rest_cost

    def _probe_coverable(self, subtree: Tree) -> bool:
        """Whether a cut of ``subtree`` into a temporary could be
        selected: the raw tree is checked first (cheap, and the
        historical behaviour), then its algebraic variants -- ``_select``
        on the cut searches variants too, so a subtree whose *rewritten*
        form is coverable (e.g. ``mul(#k, x)`` on a machine whose
        multiply wants the constant on the right) is a valid cut."""
        if self.matcher.cover_cost(wrap_store("$probe", None, subtree),
                                   self.GOAL) is not None:
            return True
        for variant in self._enumerate(subtree):
            wrapped = wrap_store("$probe", None, variant)
            if self.matcher.cover_cost(wrapped, self.GOAL) is not None:
                return True
        return False

    def _find_cut(self, tree: Tree) -> Optional[Tree]:
        """Largest proper compute subtree coverable as a statement;
        falls back to cutting a constant leaf into a memory cell (for
        targets without the needed immediate instruction)."""
        candidates: List[Tuple[int, int, Tree]] = []
        constants: List[Tree] = []
        order = 0
        for subtree in tree.postorder():
            order += 1
            if subtree is tree:
                continue
            if subtree.kind is OpKind.CONST:
                constants.append(subtree)
                continue
            if subtree.kind is not OpKind.COMPUTE:
                continue
            if self._probe_coverable(subtree):
                # prefer cut points whose value provably fits the word:
                # a spill wraps, so word-sized cuts are always safe
                candidates.append((fits_word(subtree, self.fpc),
                                   subtree.size(), -order, subtree))
        if candidates:
            candidates.sort(key=lambda entry: entry[:3], reverse=True)
            return candidates[0][3]
        for constant in constants:
            wrapped = wrap_store("$probe", None, constant)
            if self.matcher.cover_cost(wrapped, self.GOAL) is not None:
                return constant
        return None


def _replace_subtree(tree: Tree, target: Tree, replacement: Tree) -> Tree:
    """Replace every occurrence of ``target`` (structural equality)."""
    if tree == target:
        return replacement
    if not tree.children:
        return tree
    children = tuple(_replace_subtree(child, target, replacement)
                     for child in tree.children)
    if children == tree.children:
        return tree
    return Tree(tree.kind, operator=tree.operator, children=children,
                value=tree.value, symbol=tree.symbol, index=tree.index)
