"""Static execution-time analysis of generated code.

Requirement 4 of the paper's Sec. 3.2: embedded software must meet
hard real-time constraints, and "current compilers have no notion of
time-constraints ... We believe that it would be better to design
smarter compilers.  Such compilers should be able to calculate the
speed of the code they produce."

This module does exactly that for the code this repository's compilers
produce.  Because MiniDFL loops have compile-time trip counts and the
generated code is branch-free apart from loop closings, the analysis is
*exact*, not a bound: :func:`predict_cycles` recovers the loop
structure from the finalized instruction stream (hardware repeat,
decrement-and-branch, DO/LOOPEND) and sums cycle counts symbolically.
The test suite asserts prediction == simulation for every kernel,
compiler and target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codegen.asm import AsmInstr, CodeSeq, Imm, Label, LabelRef, Reg

# Opcodes that close a counted loop by branching back to a label.
_BACK_BRANCHES = {"BANZ", "BNEZ", "LOOPEND", "LOOPJNZ"}
# Opcodes that initialize a loop counter register with an immediate.
_COUNTER_LOADS = {"LARK", "LRLK", "LI", "LOOPSET"}


class TimingError(Exception):
    """The code's loop structure cannot be recovered statically."""


@dataclass
class TimingReport:
    """Result of the static analysis."""

    total_cycles: int
    loop_count: int
    per_loop: List[Tuple[str, int, int]] = field(default_factory=list)
    # (label, iterations, cycles-per-iteration)

    def describe(self) -> str:
        """Human-readable timing summary with per-loop breakdown."""
        lines = [f"predicted execution time: {self.total_cycles} cycles"
                 f" ({self.loop_count} loops)"]
        for label, iterations, body in self.per_loop:
            lines.append(f"  loop {label}: {iterations} x {body} cycles")
        return "\n".join(lines)


def _branch_target(instr: AsmInstr) -> Optional[str]:
    if instr.opcode not in _BACK_BRANCHES:
        return None
    for operand in instr.operands:
        if isinstance(operand, LabelRef):
            return operand.name
    return None


def _counter_of(instr: AsmInstr) -> Optional[Tuple[str, int]]:
    """(register, value) for counter-load instructions."""
    if instr.opcode not in _COUNTER_LOADS:
        return None
    register: Optional[str] = None
    value: Optional[int] = None
    for operand in instr.operands:
        if isinstance(operand, Reg):
            register = operand.name
        elif isinstance(operand, Imm):
            value = operand.value
    if register is None or value is None:
        return None
    return register, value


def _iterations_for(items: List, label_position: int,
                    branch: AsmInstr) -> int:
    """Trip count of the loop closed by ``branch`` at ``label``."""
    if branch.opcode == "LOOPEND":
        # DO #n immediately precedes the loop label.
        for position in range(label_position - 1, -1, -1):
            item = items[position]
            if isinstance(item, AsmInstr):
                if item.opcode == "DO":
                    return item.operands[0].value
                break
        raise TimingError("LOOPEND without a preceding DO")
    # BANZ/BNEZ: find the counter register's immediate load above.
    counter = None
    for operand in branch.operands:
        if isinstance(operand, Reg):
            counter = operand.name
    if counter is None:
        raise TimingError(f"{branch.opcode} without a counter register")
    for position in range(label_position - 1, -1, -1):
        item = items[position]
        if isinstance(item, AsmInstr):
            loaded = _counter_of(item)
            if loaded and loaded[0] == counter:
                value = loaded[1]
                # BANZ counts value+1 iterations (decrement through 0);
                # BNEZ/LOOPJNZ count value (decrement-then-test).
                return value + 1 if branch.opcode == "BANZ" else value
    raise TimingError(f"no static trip count for counter {counter!r}")


def predict_cycles(code: CodeSeq) -> TimingReport:
    """Exact static cycle count of a finalized code sequence."""
    items = list(code.items)
    labels: Dict[str, int] = {}
    for position, item in enumerate(items):
        if isinstance(item, Label):
            labels[item.name] = position

    report = TimingReport(total_cycles=0, loop_count=0)

    def analyze(start: int, stop: int) -> int:
        """Cycles of items[start:stop], consuming inner loops."""
        cycles = 0
        position = start
        while position < stop:
            item = items[position]
            if isinstance(item, Label):
                # does a later back branch target this label?
                closing = None
                depth_guard = 0
                for later in range(position + 1, stop):
                    inner = items[later]
                    if isinstance(inner, AsmInstr):
                        target = _branch_target(inner)
                        if target == item.name:
                            closing = later
                            break
                if closing is not None:
                    branch = items[closing]
                    iterations = _iterations_for(items, position, branch)
                    body = analyze(position + 1, closing) + branch.cycles
                    report.loop_count += 1
                    report.per_loop.append((item.name, iterations, body))
                    cycles += iterations * body
                    position = closing + 1
                    continue
                position += 1
                continue
            if isinstance(item, AsmInstr):
                if item.opcode == "RPTK":
                    repeats = item.operands[0].value + 1
                    cycles += item.cycles
                    # the repeated instruction is the next one
                    position += 1
                    if position >= stop or \
                            not isinstance(items[position], AsmInstr):
                        raise TimingError("RPTK with nothing to repeat")
                    repeated = items[position]
                    cycles += repeats * repeated.cycles
                    report.loop_count += 1
                    report.per_loop.append(
                        (f"RPTK {repeated.opcode}", repeats,
                         repeated.cycles))
                    position += 1
                    continue
                if _branch_target(item) is not None:
                    raise TimingError(
                        f"unstructured branch {item.render()!r}")
                cycles += item.cycles
            position += 1
        return cycles

    report.total_cycles = analyze(0, len(items))
    return report
