"""Register assignment.

Two flavours, matching the paper's discussion (Sec. 3.3):

- **Heterogeneous register sets** (Wess, Araujo, Rimey, Bradlee,
  Hartmann): on the DSP targets this is handled *by tree parsing* --
  special registers are grammar nonterminals (``acc``, ``treg``,
  ``preg``, ``xr``, ``yr``), so the BURS cover *is* the register
  assignment.  Nothing to do here; see the target grammars.

- **Homogeneous register files** (the RISC corner of the processor
  cube): the selector emits three-address code over virtual registers
  ``v0, v1, ...`` and this module assigns physical registers by linear
  scan with furthest-next-use spilling.

Virtual-register live ranges in this compiler never cross control-flow
boundaries (every statement starts and ends in memory), so liveness and
allocation work on straight-line runs -- which keeps the allocator
exact rather than heuristic over a CFG.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codegen.asm import AsmInstr, CodeSeq, Mem, Reg


class AllocationError(Exception):
    """A virtual register escapes its run, or no spill space available."""


def _is_virtual(name: str) -> bool:
    return name.startswith("v") and name[1:].isdigit()


def virtual_registers(instr: AsmInstr) -> List[str]:
    """Names of the virtual-register operands, in operand order."""
    return [op.name for op in instr.operands
            if isinstance(op, Reg) and _is_virtual(op.name)]


@dataclass
class RunAllocation:
    """Result of allocating one straight-line run."""

    instrs: List[AsmInstr]
    spills: int


def allocate_registers(code: CodeSeq, pool: Sequence[str],
                       non_defining_opcodes: frozenset = frozenset({
                           "SW", "BNEZ"}),
                       spill_cells: Optional[List[Mem]] = None,
                       spill_maker=None) -> Tuple[CodeSeq, int]:
    """Linear-scan allocation of virtual registers over ``pool``.

    Convention: the first virtual-register operand of an instruction is
    its definition and the rest are uses (three-address form; loads
    define), except for opcodes in ``non_defining_opcodes``, which only
    read.  A definition may reuse the register of an operand dying at
    the same instruction (the machine reads before it writes).

    Spilling: when the pool is exhausted the live virtual with the
    furthest next use is spilled; ``spill_maker(cell, reg, is_store)``
    must build the store/reload instruction.  Returns the rewritten
    code and the number of spill operations inserted.
    """
    result: List = []
    run: List[AsmInstr] = []
    total_spills = 0

    def flush() -> None:
        nonlocal total_spills
        if run:
            allocated = _allocate_run(run, pool, non_defining_opcodes,
                                      spill_cells, spill_maker)
            result.extend(allocated.instrs)
            total_spills += allocated.spills
            run.clear()

    for item in code:
        if isinstance(item, AsmInstr):
            run.append(item)
        else:
            flush()
            result.append(item)
    flush()
    return CodeSeq(result), total_spills


def _allocate_run(instrs: List[AsmInstr], pool: Sequence[str],
                  non_defining_opcodes: frozenset,
                  spill_cells: Optional[List[Mem]],
                  spill_maker) -> RunAllocation:
    last_use: Dict[str, int] = {}
    for index, instr in enumerate(instrs):
        for name in virtual_registers(instr):
            last_use[name] = index

    mapping: Dict[str, str] = {}          # virtual -> physical
    free: List[str] = list(pool)
    spilled: Dict[str, Mem] = {}          # virtual -> spill cell
    spills = 0
    out: List[AsmInstr] = []

    def next_use_after(name: str, position: int) -> int:
        for later in range(position + 1, len(instrs)):
            if name in virtual_registers(instrs[later]):
                return later
        return len(instrs) + 1

    def take_register(name: str, position: int,
                      protected: frozenset = frozenset()) -> str:
        nonlocal spills
        if free:
            register = free.pop(0)
            mapping[name] = register
            return register
        if spill_maker is None or not spill_cells:
            raise AllocationError(
                f"register pressure exceeds pool {list(pool)} and no "
                "spill support configured")
        # Spill the live virtual with the furthest next use, never one
        # of the current instruction's own operands.
        candidates = [live for live in mapping if live not in protected]
        if not candidates:
            raise AllocationError("all live registers pinned by the "
                                  "current instruction")
        victim = max(candidates,
                     key=lambda live: next_use_after(live, position))
        cell = spill_cells.pop(0)
        out.append(spill_maker(cell, Reg(mapping[victim]),
                               is_store=True))
        spilled[victim] = cell
        register = mapping.pop(victim)
        spills += 1
        mapping[name] = register
        return register

    for index, instr in enumerate(instrs):
        virtuals = virtual_registers(instr)
        defines = None
        if virtuals and instr.opcode not in non_defining_opcodes:
            candidate = virtuals[0]
            if candidate not in mapping and candidate not in spilled:
                defines = candidate

        protected = frozenset(virtuals)
        # 1) make sure every *use* is in a register (reload if spilled)
        for name in virtuals:
            if name == defines:
                continue
            if name in spilled:
                register = take_register(name, index, protected)
                cell = spilled.pop(name)
                out.append(spill_maker(cell, Reg(register),
                                       is_store=False))
                spills += 1
                if spill_cells is not None:
                    spill_cells.append(cell)
            elif name not in mapping:
                raise AllocationError(
                    f"virtual register {name} used before definition "
                    "(escapes its straight-line run?)")

        # 2) snapshot use bindings, then release registers dying here --
        #    the definition may reuse them (read-before-write machines).
        bindings = dict(mapping)
        for name in list(mapping):
            if last_use.get(name, -1) <= index and name != defines:
                free.append(mapping.pop(name))

        # 3) assign the definition
        if defines is not None:
            take_register(defines, index, protected)
            bindings[defines] = mapping[defines]

        new_operands = tuple(
            Reg(bindings[op.name])
            if isinstance(op, Reg) and _is_virtual(op.name) else op
            for op in instr.operands)
        out.append(replace(instr, operands=new_operands))
    return RunAllocation(instrs=out, spills=spills)
