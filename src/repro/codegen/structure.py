"""Structured view of marker-delimited code.

Between selection and loop finalization, code sequences carry
``LoopBegin``/``LoopEnd`` markers.  Several stages (accumulator
promotion, idiom recognition, address assignment, mode minimization)
want to reason about loops as nested regions; this module parses the
flat item list into a tree and flattens it back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Union

from repro.codegen.asm import CodeItem, CodeSeq, LoopBegin, LoopEnd


@dataclass
class Run:
    """A maximal run of non-loop items."""

    items: List[CodeItem] = field(default_factory=list)


@dataclass
class LoopNode:
    """One loop region with its (structured) body."""

    begin: LoopBegin
    end: LoopEnd
    body: List[Union["LoopNode", Run]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return self.begin.count

    @property
    def loop_id(self) -> int:
        return self.begin.loop_id

    def is_innermost(self) -> bool:
        """True when the body contains no nested loop."""
        return all(isinstance(child, Run) for child in self.body)

    def direct_items(self) -> List[CodeItem]:
        """Items directly in this loop's body (not in nested loops)."""
        items: List[CodeItem] = []
        for child in self.body:
            if isinstance(child, Run):
                items.extend(child.items)
        return items


Node = Union[Run, LoopNode]


def parse(code: CodeSeq) -> List[Node]:
    """Parse a marker-delimited code sequence into a region tree."""
    stack: List[List[Node]] = [[]]
    begins: List[LoopBegin] = []
    for item in code:
        if isinstance(item, LoopBegin):
            begins.append(item)
            stack.append([])
        elif isinstance(item, LoopEnd):
            if not begins:
                raise ValueError("LoopEnd without matching LoopBegin")
            begin = begins.pop()
            if begin.loop_id != item.loop_id:
                raise ValueError(
                    f"mismatched loop markers: begin {begin.loop_id}, "
                    f"end {item.loop_id}")
            body = stack.pop()
            stack[-1].append(LoopNode(begin=begin, end=item, body=body))
        else:
            top = stack[-1]
            if top and isinstance(top[-1], Run):
                top[-1].items.append(item)
            else:
                top.append(Run(items=[item]))
    if begins:
        raise ValueError("unclosed LoopBegin markers")
    return stack[0]


def flatten(nodes: List[Node]) -> CodeSeq:
    """Flatten a region tree back to a marker-delimited code sequence."""
    code = CodeSeq()

    def walk(node_list: List[Node]) -> None:
        for node in node_list:
            if isinstance(node, Run):
                code.extend(node.items)
            else:
                code.append(node.begin)
                walk(node.body)
                code.append(node.end)

    walk(nodes)
    return code


def iter_loops(nodes: List[Node]) -> Iterator[LoopNode]:
    """All loops, innermost-first."""
    for node in nodes:
        if isinstance(node, LoopNode):
            yield from iter_loops(node.body)
            yield node
