"""Code compaction: packing parallel move slots (Sec. 3.3).

"Many of the popular DSPs include so-called parallel instructions.  For
example, the Motorola MC 56000 allows parallel move operations ...  Not
taking advantage of this parallelism means loosing a factor of two in
the performance."  The paper notes both heuristic compactors (Timmer,
Strik, Nicolau) and the newer exact formulations (Leupers/Marwedel
[24]: "optimal algorithms have become feasible").

This module provides both:

- :func:`greedy_compaction` -- upward move packing (the classic list-
  scheduling flavour): each move instruction is hoisted over
  independent instructions into the latest earlier ALU instruction with
  a free slot of the right bus;
- :func:`optimal_compaction` -- exhaustive branch-and-bound over
  packing decisions for small straight-line blocks (the ablation
  oracle; falls back to greedy above ``max_block``).

Parallel-move semantics (and hence the legality rules) follow the 56k:
the host operation and all its packed moves *read the pre-instruction
state*, then all results commit.  Packing a later move M into host H is
therefore legal iff M is independent of every instruction it hoists
over, M does not read anything H writes, and M and H write disjoint
locations.

The target supplies a :class:`SlotModel` describing its buses and its
def/use sets; compaction itself is target-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.codegen.asm import AsmInstr, CodeSeq


class SlotModel:
    """Target description consumed by the compactor.

    Subclasses implement:

    - :meth:`slot_of` -- the move bus an instruction occupies (e.g.
      ``"xmove"``/``"ymove"``), or ``None`` for non-move instructions;
    - :meth:`can_host` -- whether an instruction accepts parallel moves;
    - :meth:`defs` / :meth:`uses` -- written / read location tokens.

    Memory tokens: ``m:<bank>:<addr>`` for a direct access and
    ``m:<bank>`` for an access whose address is not statically known
    (the bank token conflicts with every token of that bank).
    """

    slots: Tuple[str, ...] = ()

    def slot_of(self, instr: AsmInstr) -> Optional[str]:
        """The move bus ``instr`` occupies, or None for non-moves."""
        raise NotImplementedError

    def can_host(self, instr: AsmInstr) -> bool:
        """Whether ``instr`` accepts parallel moves in its slots."""
        raise NotImplementedError

    def defs(self, instr: AsmInstr) -> Set[str]:
        """Location tokens written by ``instr`` (see class docs)."""
        raise NotImplementedError

    def uses(self, instr: AsmInstr) -> Set[str]:
        """Location tokens read by ``instr`` (see class docs)."""
        raise NotImplementedError


def tokens_conflict(first: Set[str], second: Set[str]) -> bool:
    """Conflict test aware of whole-bank memory tokens."""
    if first & second:
        return True
    for token in first:
        if token.startswith("m:") and token.count(":") == 1:
            prefix = token + ":"
            if any(other == token or other.startswith(prefix)
                   for other in second):
                return True
    for token in second:
        if token.startswith("m:") and token.count(":") == 1:
            prefix = token + ":"
            if any(other == token or other.startswith(prefix)
                   for other in first):
                return True
    return False


def _aggregate_defs(model: SlotModel, instr: AsmInstr) -> Set[str]:
    """defs of an instruction including its packed parallel moves."""
    tokens = set(model.defs(instr))
    for packed in instr.parallel:
        tokens |= model.defs(packed)
    return tokens


def _aggregate_uses(model: SlotModel, instr: AsmInstr) -> Set[str]:
    """uses of an instruction including its packed parallel moves."""
    tokens = set(model.uses(instr))
    for packed in instr.parallel:
        tokens |= model.uses(packed)
    return tokens


def _independent(model: SlotModel, move: AsmInstr,
                 other: AsmInstr) -> bool:
    """True when ``move`` may be reordered across ``other`` (including
    everything already packed into ``other``)."""
    move_defs, move_uses = model.defs(move), model.uses(move)
    other_defs = _aggregate_defs(model, other)
    other_uses = _aggregate_uses(model, other)
    return not (tokens_conflict(move_uses, other_defs)
                or tokens_conflict(move_defs, other_defs)
                or tokens_conflict(move_defs, other_uses))


def _can_pack(model: SlotModel, move: AsmInstr, host: AsmInstr) -> bool:
    """Legality of executing ``move`` in parallel with ``host`` when
    ``move`` originally came after ``host``."""
    move_defs, move_uses = model.defs(move), model.uses(move)
    host_defs = model.defs(host)
    for packed in host.parallel:
        if tokens_conflict(move_defs, model.defs(packed)) \
                or tokens_conflict(move_uses, model.defs(packed)) \
                or tokens_conflict(move_defs, model.uses(packed)):
            return False
    return not (tokens_conflict(move_uses, host_defs)
                or tokens_conflict(move_defs, host_defs))


def _used_slots(model: SlotModel, host: AsmInstr) -> Set[str]:
    return {model.slot_of(packed) for packed in host.parallel}


def greedy_compaction(instrs: Sequence[AsmInstr],
                      model: SlotModel) -> List[AsmInstr]:
    """Upward move packing over one straight-line block."""
    result: List[AsmInstr] = []
    for instr in instrs:
        slot = model.slot_of(instr)
        if slot is None:
            result.append(instr)
            continue
        host_index: Optional[int] = None
        for candidate in range(len(result) - 1, -1, -1):
            occupant = result[candidate]
            if model.can_host(occupant) \
                    and slot not in _used_slots(model, occupant) \
                    and _can_pack(model, instr, occupant):
                host_index = candidate
                break
            if not _independent(model, instr, occupant):
                break
        if host_index is None:
            result.append(instr)
        else:
            host = result[host_index]
            result[host_index] = AsmInstr(
                opcode=host.opcode, operands=host.operands,
                words=host.words, cycles=host.cycles, modes=host.modes,
                parallel=host.parallel + (instr,),
                comment=host.comment)
    return result


def optimal_compaction(instrs: Sequence[AsmInstr], model: SlotModel,
                       max_block: int = 16) -> List[AsmInstr]:
    """Branch-and-bound over packing decisions (exact for small blocks).

    Explores, for every move, all legal hosts plus the standalone
    choice, minimizing the resulting instruction count; prunes branches
    that cannot beat the incumbent (each remaining move can at best
    disappear into a slot).  Falls back to :func:`greedy_compaction`
    beyond ``max_block`` instructions.
    """
    if len(instrs) > max_block:
        return greedy_compaction(instrs, model)
    best: List[List[AsmInstr]] = [greedy_compaction(instrs, model)]
    remaining_non_moves = [0] * (len(instrs) + 1)
    for position in range(len(instrs) - 1, -1, -1):
        remaining_non_moves[position] = remaining_non_moves[position + 1] \
            + (0 if model.slot_of(instrs[position]) is not None else 1)

    def search(index: int, result: List[AsmInstr]) -> None:
        # Sound lower bound: placed instructions never disappear and
        # non-move instructions each need their own word; only moves
        # may vanish into slots.
        if len(result) + remaining_non_moves[index] >= len(best[0]):
            return
        if index == len(instrs):
            best[0] = list(result)
            return
        instr = instrs[index]
        slot = model.slot_of(instr)
        if slot is None:
            result.append(instr)
            search(index + 1, result)
            result.pop()
            return
        # Option A: every legal host.
        for candidate in range(len(result) - 1, -1, -1):
            occupant = result[candidate]
            if model.can_host(occupant) \
                    and slot not in _used_slots(model, occupant) \
                    and _can_pack(model, instr, occupant):
                packed = AsmInstr(
                    opcode=occupant.opcode, operands=occupant.operands,
                    words=occupant.words, cycles=occupant.cycles,
                    modes=occupant.modes,
                    parallel=occupant.parallel + (instr,),
                    comment=occupant.comment)
                result[candidate] = packed
                search(index + 1, result)
                result[candidate] = occupant
            if not _independent(model, instr, occupant):
                break
        # Option B: standalone.
        result.append(instr)
        search(index + 1, result)
        result.pop()

    search(0, [])
    return best[0]


def compact_code(code: CodeSeq, model: SlotModel,
                 strategy: str = "greedy") -> CodeSeq:
    """Compact every straight-line run of a code sequence.

    Runs are delimited by anything that is not a plain instruction
    (labels, loop markers) -- moves never migrate across control flow.
    """
    compactors = {"greedy": greedy_compaction,
                  "optimal": optimal_compaction,
                  "none": lambda instrs, _model: list(instrs)}
    compactor = compactors.get(strategy)
    if compactor is None:
        # The tuner (and the service) feed strategy names
        # programmatically; a raw KeyError here would read as an
        # internal crash rather than a bad configuration.
        from repro.codegen.pipeline import CompileError
        raise CompileError(
            f"unknown compaction strategy {strategy!r}; "
            f"choose from {', '.join(sorted(compactors))}")
    result = CodeSeq()
    run: List[AsmInstr] = []

    def flush() -> None:
        if run:
            result.extend(compactor(run, model))
            run.clear()

    for item in code:
        if isinstance(item, AsmInstr):
            run.append(item)
        else:
            flush()
            result.append(item)
    flush()
    return result
