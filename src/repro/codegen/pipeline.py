"""The RECORD compiler pipeline (Fig. 2 of the paper).

Stage order::

    Program (from the MiniDFL frontend or built programmatically)
      |  per block: DAG -> tree decomposition (repro.ir.trees)
      |  per tree:  algebraic variants x BURS covering (selector)
      v
    marker-structured symbolic code
      |  loop optimizations  (accumulator promotion, RPT/MAC idiom)
      |  peephole fusions    (LTA/LTP, parallel-move packing hooks)
      |  address assignment  (streams -> AGU registers, scalars -> direct)
      |  mode minimization   (Liao-style)
      |  loop finalization   (RPTK / BANZ / DO, target-specific)
      v
    CompiledProgram (simulatable, measurable)

Every stage is switchable through :class:`RecordOptions` so the
ablation benchmarks can quantify each design choice separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.codegen.addressing import AddressAssigner
from repro.codegen.burg import BurgMatcher
from repro.codegen.asm import AsmInstr, CodeSeq, Label, LoopBegin, LoopEnd, Mem
from repro.codegen.compiled import (
    CompiledProgram, MemoryMap, PmemTable, build_memory_map,
)
from repro.codegen.grammar import EmitContext
from repro.codegen.modes import minimize_mode_changes
from repro.codegen.selector import Selector
from repro.codegen.structure import LoopNode, Run, parse
from repro.ir.program import Block, Loop, Program, ProgramItem
from repro.ir.trees import decompose

if TYPE_CHECKING:   # pragma: no cover
    from repro.targets.model import TargetModel


@dataclass(frozen=True)
class RecordOptions:
    """Switchboard for the RECORD pipeline (ablation points)."""

    metric: str = "size"
    algebraic: bool = True
    variant_limit: int = 64
    promote_accumulators: bool = True
    repeat_idioms: bool = True
    # Fuse a MAC sum loop with the following delay-line shift loop into
    # one RPT/MACD (the hand-written FIR idiom).  OFF by default: 1997
    # RECORD did not have it, and Table 1's shape depends on that --
    # see benchmarks/bench_ablation_opts.py for the measured effect.
    fuse_shift_idioms: bool = False
    peephole: bool = True
    minimize_modes: bool = True
    scalar_order: Optional[Tuple[str, ...]] = None   # offset assignment
    offset_assignment: str = "liao"    # banked/indirect targets
    bank_assignment: str = "greedy"    # banked targets
    compaction: str = "greedy"         # targets with parallel slots
    # Share one BURS labeller (and its label cache) across compile()
    # calls of the same compiler instance.  OFF reproduces the cold
    # per-compile path (the bench_compile_speed baseline).
    label_cache: bool = True

    def to_dict(self) -> dict:
        """Canonical JSON-able form: every field, plain types only.

        This is *the* serialization of a RECORD configuration: the
        artifact-cache key, the tuner's measurement records and
        tuning database, and farm job payloads all go through it, so
        an options value written by any one subsystem is readable --
        and hashes identically -- in every other.
        """
        payload: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RecordOptions":
        """Inverse of :meth:`to_dict`; rejects unknown fields loudly.

        Unknown keys raise (rather than being dropped) because a
        silently ignored knob would make a tuning-database entry or a
        measurement record lie about what was measured.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown RecordOptions field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}")
        kwargs = dict(payload)
        if kwargs.get("scalar_order") is not None:
            kwargs["scalar_order"] = tuple(kwargs["scalar_order"])
        return cls(**kwargs)


class CompileError(Exception):
    """A program cannot be compiled for the chosen target."""


class RecordCompiler:
    """The retargetable compiler: consumes only the explicit target model."""

    name = "record"

    def __init__(self, target: "TargetModel",
                 options: Optional[RecordOptions] = None):
        self.target = target
        self.options = options or RecordOptions()
        # Matcher pool, keyed by metric: BURS label states depend only
        # on the (immutable) grammar and the subtree, so one labeller --
        # and its label cache -- serves every compile() of this
        # compiler.  Kernels of a suite share many subtrees (MAC sums,
        # delay-line shifts), which the cache turns into O(1) lookups.
        self._matchers: Dict[str, BurgMatcher] = {}

    def _matcher_for(self, metric: str) -> BurgMatcher:
        matcher = self._matchers.get(metric)
        if matcher is None:
            matcher = BurgMatcher(self.target.grammar(), metric)
            self._matchers[metric] = matcher
        return matcher

    # ------------------------------------------------------------------

    def compile(self, program: Program) -> CompiledProgram:
        """Compile a lowered program (artifact-cached when a cache is on).

        When :func:`repro.cache.configure` has installed an artifact
        cache, a content-addressed hit skips the pipeline entirely and
        returns the stored :class:`CompiledProgram` (its ``stats`` then
        carry an ``"artifact_cache": "hit"`` marker); otherwise -- and
        always when no cache is active -- the full pipeline runs.
        """
        from repro.cache import cached_compile
        return cached_compile(self, program, self._compile_uncached)

    def _compile_uncached(self, program: Program) -> CompiledProgram:
        """Run the full RECORD pipeline on a lowered program."""
        options = self.options
        timings: Dict[str, float] = {}
        started = perf_counter()
        selector = Selector(self.target.grammar(), metric=options.metric,
                            algebraic=options.algebraic,
                            variant_limit=options.variant_limit,
                            fpc=self.target.fpc,
                            matcher=self._matcher_for(options.metric)
                            if options.label_cache else None,
                            label_cache=options.label_cache)
        ctx = EmitContext()
        temp_counter = [0]
        loop_counter = [0]
        self._select_items(program.body, selector, ctx, temp_counter,
                           loop_counter)
        code = ctx.code
        timings["selection"] = perf_counter() - started

        started = perf_counter()
        read_only = read_only_input_arrays(program)
        code, tables = self.target.loop_optimizations(
            code, read_only,
            promote_accumulators=options.promote_accumulators,
            repeat_idioms=options.repeat_idioms,
            fuse_shift_idioms=options.fuse_shift_idioms)
        timings["loop_opt"] = perf_counter() - started

        started = perf_counter()
        if options.peephole:
            code = self.target.peephole(code)
        timings["peephole"] = perf_counter() - started

        started = perf_counter()
        extra_scalars = collect_extra_scalars(code, program)
        address_hook = getattr(self.target, "assign_addresses", None)
        if address_hook is not None:
            # Banked / indirect-only targets own their address story
            # (bank assignment, offset assignment, repricing).
            code, memory_map = address_hook(code, program, extra_scalars,
                                            options)
        else:
            memory_map = build_memory_map(
                program.symbols, extra_scalars,
                scalar_order=list(options.scalar_order)
                if options.scalar_order else None)
            code = AddressAssigner(self.target, memory_map,
                                   code).run(code)
        timings["addressing"] = perf_counter() - started

        started = perf_counter()
        compaction_hook = getattr(self.target, "compact", None)
        if compaction_hook is not None:
            code = compaction_hook(code, options)

        code = minimize_mode_changes(code, self.target,
                                     naive=not options.minimize_modes)
        timings["modes"] = perf_counter() - started

        started = perf_counter()
        code = finalize_loops(code, self.target)
        timings["finalize"] = perf_counter() - started

        # Sub-stage detail measured inside selection:
        timings["variants"] = selector.stats.variant_seconds
        timings["labeling"] = selector.stats.label_seconds

        return CompiledProgram(
            name=program.name,
            target=self.target,
            code=code,
            memory_map=memory_map,
            symbols=dict(program.symbols),
            pmem_tables=list(tables),
            compiler=self.name,
            stats={
                "selection": selector.stats,
                "words": code.words(),
                "timings": timings,
            },
        )

    # ------------------------------------------------------------------

    def _select_items(self, items: List[ProgramItem], selector: Selector,
                      ctx: EmitContext, temp_counter: List[int],
                      loop_counter: List[int]) -> None:
        for item in items:
            if isinstance(item, Block):
                assignments = decompose(item.dfg,
                                        temp_counter_start=temp_counter[0],
                                        fpc=self.target.fpc)
                temp_counter[0] += sum(1 for a in assignments if a.is_temp)
                selector.select_block(assignments, ctx)
            elif isinstance(item, Loop):
                loop_id = loop_counter[0]
                loop_counter[0] += 1
                ctx.code.append(LoopBegin(count=item.count,
                                          loop_id=loop_id))
                self._select_items(item.body, selector, ctx, temp_counter,
                                   loop_counter)
                ctx.code.append(LoopEnd(loop_id=loop_id))
            else:
                raise CompileError(f"unexpected program item {item!r}")


# ----------------------------------------------------------------------
# Shared helpers (used by the baseline compiler as well)
# ----------------------------------------------------------------------

def read_only_input_arrays(program: Program) -> Dict[str, int]:
    """Input arrays the program never writes (pmem-table candidates)."""
    written: Set[str] = set()

    def scan(items: List[ProgramItem]) -> None:
        for item in items:
            if isinstance(item, Block):
                for output in item.dfg.outputs:
                    written.add(output.symbol)
            elif isinstance(item, Loop):
                scan(item.body)

    scan(program.body)
    return {
        name: symbol.size
        for name, symbol in program.symbols.items()
        if symbol.is_array and symbol.role == "input"
        and name not in written
    }


def collect_extra_scalars(code: CodeSeq, program: Program) -> List[str]:
    """Compiler-generated scalars referenced by the code but not declared
    (decomposition temporaries, selector scratch cells, induction
    variables of the baseline)."""
    seen: List[str] = []          # discovery order (memory-map layout)
    seen_set: Set[str] = set()    # membership test stays O(1)
    known = set(program.symbols)
    for item in code:
        if not isinstance(item, AsmInstr):
            continue
        for operand in item.memory_operands():
            if operand.mode == "symbolic" and operand.symbol not in known \
                    and operand.symbol not in seen_set:
                seen.append(operand.symbol)
                seen_set.add(operand.symbol)
    return seen


def finalize_loops(code: CodeSeq, target: "TargetModel") -> CodeSeq:
    """Realize loop markers as target instructions, innermost-first."""
    nodes = parse(code)
    out = CodeSeq()

    def emit(node_list, depth: int) -> None:
        for node in node_list:
            if isinstance(node, Run):
                out.extend(node.items)
                continue
            body = CodeSeq()
            saved = out.items
            try:
                out.items = body.items
                emit(node.body, depth + 1)
            finally:
                out.items = saved
            prologue, epilogue = target.finalize_loop(
                node.count, list(body.items), node.loop_id, depth)
            out.extend(prologue)
            out.extend(body.items)
            out.extend(epilogue)

    emit(nodes, depth=0)
    return out
