"""Mode-change minimization (Liao-style; Sec. 3.3 of the paper).

Many DSPs carry *residual control*: machine modes (saturating vs.
wrap-around arithmetic, product-shift factors, sign extension) that
instructions depend on but that are switched by separate mode-change
instructions.  "The issue for compilers is to minimize the number of
mode-changing instructions.  Liao has designed an algorithm for this
purpose."  [26]

Instructions carry their mode *requirements* in ``AsmInstr.modes``; this
pass inserts target-provided mode-change instructions so that every
requirement is met at execution time, minimizing the number inserted.

For a straight-line region this is solved exactly by dynamic programming
over (position, mode value) -- Liao's formulation.  Loops are handled
with the standard region rule: a loop body is processed with an entry
mode equal to what reaches the loop head from *both* the preheader and
the back edge; when the two disagree for a mode the body needs, the
change is placed inside the body (re-established every iteration);
otherwise a single hoisted change suffices.

``naive=True`` gives the baseline behaviour (a mode-change before every
requiring instruction whenever the *statically tracked* value differs,
with tracking invalidated at loop boundaries) -- this is both a
correctness fallback and the ablation point for the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.codegen.asm import AsmInstr, CodeSeq, Label, LoopBegin, LoopEnd

if TYPE_CHECKING:   # pragma: no cover
    from repro.targets.model import TargetModel


def minimize_mode_changes(code: CodeSeq, target: "TargetModel",
                          naive: bool = False) -> CodeSeq:
    """Insert mode-change instructions satisfying all requirements."""
    items = list(code.items)
    reset = dict(target.mode_reset_values())
    if naive:
        result = _naive(items, target, reset)
    else:
        result = _optimized(items, target, dict(reset))
    return hoist_mode_changes_from_loop_heads(CodeSeq(result), target)


def mode_change_opcodes(target: "TargetModel") -> set:
    """Opcodes of the target's mode-change instructions."""
    opcodes = set()
    for mode, values in target.capabilities.modes.items():
        opcodes.add(target.mode_change_instruction(mode,
                                                   values[0]).opcode)
    return opcodes


def hoist_mode_changes_from_loop_heads(code: CodeSeq,
                                       target: "TargetModel") -> CodeSeq:
    """Move mode changes leading a loop body into the preheader.

    This is not only an optimization: on hardware-repeat targets a
    single-instruction body must *stay* single-instruction or the
    RPTK realization (and with it MAC coefficient streaming) is lost.
    Hoisting is sound when the rest of the body contains no other
    mode-change instruction: the mode then survives the back edge.
    """
    from repro.codegen.structure import LoopNode, Run, flatten, parse

    changers = mode_change_opcodes(target)
    if not changers:
        return code
    nodes = parse(code)

    def hoist(node_list: List) -> List:
        result: List = []
        for node in node_list:
            if not isinstance(node, LoopNode):
                result.append(node)
                continue
            node.body = hoist(node.body)
            leading: List[AsmInstr] = []
            while node.body and isinstance(node.body[0], Run) \
                    and node.body[0].items \
                    and isinstance(node.body[0].items[0], AsmInstr) \
                    and node.body[0].items[0].opcode in changers:
                leading.append(node.body[0].items.pop(0))
                if not node.body[0].items:
                    node.body.pop(0)
            def contains_changer(children) -> bool:
                for child in children:
                    if isinstance(child, Run):
                        if any(isinstance(item, AsmInstr)
                               and item.opcode in changers
                               for item in child.items):
                            return True
                    elif contains_changer(child.body):
                        return True
                return False

            others = contains_changer(node.body)
            if leading and not others:
                result.append(Run(items=list(leading)))
            elif leading:
                # unsafe to hoist: put them back
                if node.body and isinstance(node.body[0], Run):
                    node.body[0].items[0:0] = leading
                else:
                    node.body.insert(0, Run(items=list(leading)))
            result.append(node)
        return result

    return flatten(hoist(nodes))


# ----------------------------------------------------------------------
# Naive insertion (baseline / ablation)
# ----------------------------------------------------------------------

def _naive(items: List, target: "TargetModel",
           reset: Dict[str, int]) -> List:
    current: Dict[str, Optional[int]] = dict(reset)
    result: List = []
    for item in items:
        if isinstance(item, (LoopBegin, LoopEnd)):
            # Tracking is invalidated across loop boundaries: the naive
            # compiler cannot reason about back edges.
            current = {mode: None for mode in current}
            result.append(item)
            continue
        if isinstance(item, AsmInstr) and item.modes:
            for mode, value in sorted(item.modes.items()):
                if current.get(mode) != value:
                    result.append(
                        target.mode_change_instruction(mode, value))
                    current[mode] = value
        result.append(item)
    return result


# ----------------------------------------------------------------------
# Optimized insertion
# ----------------------------------------------------------------------

@dataclass
class _Region:
    """A maximal straight-line run of items, or one loop."""

    items: List
    loop: Optional[Tuple[LoopBegin, List, LoopEnd]] = None


def _split_regions(items: List) -> List[_Region]:
    """Top-level split into straight-line runs and (nested) loops."""
    regions: List[_Region] = []
    run: List = []
    index = 0
    while index < len(items):
        item = items[index]
        if isinstance(item, LoopBegin):
            if run:
                regions.append(_Region(items=run))
                run = []
            depth = 1
            body: List = []
            index += 1
            while index < len(items) and depth > 0:
                inner = items[index]
                if isinstance(inner, LoopBegin):
                    depth += 1
                elif isinstance(inner, LoopEnd):
                    depth -= 1
                    if depth == 0:
                        break
                body.append(inner)
                index += 1
            if depth != 0:
                raise ValueError("unbalanced loop markers")
            regions.append(_Region(items=[], loop=(item, body,
                                                   items[index])))
            index += 1
        else:
            run.append(item)
            index += 1
    if run:
        regions.append(_Region(items=run))
    return regions


def _mode_requirements(items: List) -> Dict[str, List[int]]:
    """All required values per mode, in execution order (loops inline)."""
    requirements: Dict[str, List[int]] = {}
    for item in items:
        if isinstance(item, AsmInstr) and item.modes:
            for mode, value in item.modes.items():
                requirements.setdefault(mode, []).append(value)
    return requirements


def _optimized(items: List, target: "TargetModel",
               entry: Dict[str, Optional[int]]) -> List:
    """Process a body recursively; mutates ``entry`` to the exit modes."""
    result: List = []
    for region in _split_regions(items):
        if region.loop is None:
            result.extend(_straight_line(region.items, target, entry))
            continue
        begin, body, end = region.loop
        requirements = _mode_requirements(body)
        hoisted: List[AsmInstr] = []
        body_entry: Dict[str, Optional[int]] = dict(entry)
        for mode, values in sorted(requirements.items()):
            if all(value == values[0] for value in values):
                # Uniform requirement: one hoisted change (if needed)
                # satisfies both the preheader path and the back edge,
                # because the body never changes the mode.
                if entry.get(mode) != values[0]:
                    hoisted.append(
                        target.mode_change_instruction(mode, values[0]))
                body_entry[mode] = values[0]
                entry[mode] = values[0]
            else:
                # Conflicting requirements inside the body: the value
                # reaching the head via the back edge is the body's exit
                # value, which differs from the first requirement; the
                # change must live inside the body.  Entry value unknown.
                body_entry[mode] = None
        new_body = _optimized(body, target, body_entry)
        # body_entry now holds the body's exit modes; a second iteration
        # entering with those must still satisfy the first requirement,
        # which _straight_line guaranteed by inserting changes whenever
        # the tracked value was None or different.
        for mode in requirements:
            entry[mode] = body_entry.get(mode)
        result.extend(hoisted)
        result.append(begin)
        result.extend(new_body)
        result.append(end)
    return result


def _straight_line(items: List, target: "TargetModel",
                   current: Dict[str, Optional[int]]) -> List:
    """Exact DP is equivalent to greedy here: with change costs uniform
    per mode and no branching, changing lazily right before each
    requiring instruction is optimal (Liao's single-mode DP reduces to
    this for linear sequences)."""
    result: List = []
    for item in items:
        if isinstance(item, AsmInstr) and item.modes:
            for mode, value in sorted(item.modes.items()):
                if current.get(mode) != value:
                    result.append(
                        target.mode_change_instruction(mode, value))
                    current[mode] = value
        result.append(item)
    return result
