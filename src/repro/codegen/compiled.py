"""The artifact both compilers produce: a finalized, runnable program.

A :class:`CompiledProgram` bundles everything the simulator and the
benchmark harness need: the finalized code, the data memory map, any
program-memory coefficient tables (the TC25 ``MAC`` idiom), and
compilation statistics for the reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, TYPE_CHECKING

from repro.codegen.asm import CodeSeq
from repro.ir.program import Program, Symbol

if TYPE_CHECKING:   # pragma: no cover
    from repro.targets.model import TargetModel


@dataclass(frozen=True)
class PmemTable:
    """A coefficient table placed in program memory.

    The table image is built from the data of ``symbol``: entry ``k``
    holds ``symbol[start + stride * k]`` for ``k in 0..count-1``.  This
    models burning de-facto constant input arrays into program memory,
    which is what hand-written TMS320C25 FIR code does (see DESIGN.md,
    substitutions).
    """

    label: str
    symbol: str
    start: int
    stride: int
    count: int

    def build(self, values: List[int]) -> List[int]:
        """Materialize the table image from the symbol's data."""
        image = []
        for k in range(self.count):
            index = self.start + self.stride * k
            if not 0 <= index < len(values):
                raise ValueError(
                    f"table {self.label}: index {index} out of range "
                    f"for {self.symbol}[{len(values)}]")
            image.append(values[index])
        return image


@dataclass
class MemoryMap:
    """Data-memory layout: symbol -> base address (arrays contiguous)."""

    addresses: Dict[str, int] = field(default_factory=dict)
    sizes: Dict[str, int] = field(default_factory=dict)
    total: int = 0

    def address_of(self, symbol: str, offset: int = 0) -> int:
        """Absolute data address of ``symbol[offset]`` (bounds-checked)."""
        if symbol not in self.addresses:
            raise KeyError(f"symbol {symbol!r} not in memory map")
        size = self.sizes[symbol]
        if not 0 <= offset < size:
            raise IndexError(
                f"offset {offset} out of range for {symbol}[{size}]")
        return self.addresses[symbol] + offset

    def contains(self, symbol: str) -> bool:
        """Whether the map allocated storage for ``symbol``."""
        return symbol in self.addresses


def build_memory_map(symbols: Mapping[str, Symbol],
                     extra_scalars: List[str],
                     scalar_order: Optional[List[str]] = None,
                     bank_of: Optional[Mapping[str, str]] = None,
                     ) -> MemoryMap:
    """Lay out data memory.

    Scalars (declared and compiler temporaries) come first -- in
    ``scalar_order`` if the offset-assignment stage computed one --
    followed by arrays in declaration order.  ``bank_of`` is recorded
    for banked targets (bank assignment keeps per-bank address spaces;
    our banked machine model uses disjoint address ranges per bank, so a
    single linear map still works: bank simply selects the range).
    """
    memory_map = MemoryMap()
    scalars = [name for name, sym in symbols.items() if not sym.is_array]
    scalars += [name for name in extra_scalars if name not in symbols]
    if scalar_order is not None:
        missing = [name for name in scalars if name not in scalar_order]
        unknown = [name for name in scalar_order if name not in scalars]
        if unknown:
            raise ValueError(f"scalar_order names unknown symbols: "
                             f"{unknown}")
        ordered = list(scalar_order) + missing
    else:
        ordered = scalars
    address = 0
    for name in ordered:
        memory_map.addresses[name] = address
        memory_map.sizes[name] = 1
        address += 1
    for name, symbol in symbols.items():
        if symbol.is_array:
            memory_map.addresses[name] = address
            memory_map.sizes[name] = symbol.size
            address += symbol.size
    memory_map.total = address
    return memory_map


@dataclass
class CompiledProgram:
    """A finalized, simulatable compilation result."""

    name: str
    target: "TargetModel"
    code: CodeSeq
    memory_map: MemoryMap
    symbols: Dict[str, Symbol]
    pmem_tables: List[PmemTable] = field(default_factory=list)
    compiler: str = ""
    stats: Dict[str, object] = field(default_factory=dict)

    def words(self) -> int:
        """Static code size in instruction words (Table 1's metric)."""
        return self.code.words()

    def listing(self) -> str:
        """Annotated assembly listing with a header line."""
        header = (f"; {self.name}  [{self.compiler} -> {self.target.name}]"
                  f"  {self.words()} words")
        return header + "\n" + self.code.render()
