"""Address assignment: symbolic memory operands -> addressing modes.

Runs after instruction selection and loop-level optimizations:

- scalars and constant-index array elements resolve to *direct*
  addresses from the memory map;
- induction-variable array walks inside loops become *indirect* accesses
  through an AGU address register with a free post-modify step ("with
  these, incrementing an address register does not require an extra
  instruction or cycle", Sec. 3.3) -- one register per access stream,
  initialized by an address-register load in the loop preheader;
- on targets without direct addressing (M56-style), scalars are also
  reached indirectly; the layout then matters and is optimized by
  :mod:`repro.codegen.offset` (offset assignment), which feeds its
  result back here through ``scalar_order`` in the memory map.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.codegen.asm import AddrOf, AsmInstr, CodeSeq, Imm, Mem, Reg
from repro.codegen.compiled import MemoryMap
from repro.codegen.structure import LoopNode, Node, Run, flatten, parse

if TYPE_CHECKING:   # pragma: no cover
    from repro.targets.model import TargetModel


class AddressingError(Exception):
    """Unsupported access shape (too many streams, stride too large, ...)."""


@dataclass(frozen=True)
class _StreamKey:
    symbol: str
    coeff: int
    offset: int


def transform_instr_mems(instr: AsmInstr, fn, addr_fn=None) -> AsmInstr:
    """Rebuild an instruction with every Mem operand mapped through
    ``fn`` and every AddrOf operand through ``addr_fn`` (including
    operands of packed parallel moves)."""

    def map_operand(operand):
        if isinstance(operand, Mem):
            return fn(operand)
        if isinstance(operand, AddrOf) and addr_fn is not None:
            return addr_fn(operand)
        return operand

    new_operands = tuple(map_operand(op) for op in instr.operands)
    new_parallel = tuple(transform_instr_mems(move, fn, addr_fn)
                         for move in instr.parallel)
    if new_operands == instr.operands and new_parallel == instr.parallel:
        return instr
    return replace(instr, operands=new_operands, parallel=new_parallel)


class AddressAssigner:
    """Resolves all symbolic memory operands in a code sequence."""

    def __init__(self, target: "TargetModel", memory_map: MemoryMap,
                 code: "Optional[CodeSeq]" = None):
        self.target = target
        self.memory_map = memory_map
        chooser = getattr(target, "stream_registers_for", None)
        if chooser is not None and code is not None:
            self.stream_registers = list(chooser(code))
        else:
            self.stream_registers = list(
                getattr(target, "STREAM_ADDRESS_REGISTERS", []))

    # ------------------------------------------------------------------

    def run(self, code: CodeSeq) -> CodeSeq:
        """Resolve every symbolic memory operand in the sequence."""
        nodes = parse(code)
        self._process(nodes, used_registers=set())
        return flatten(nodes)

    # ------------------------------------------------------------------

    def _process(self, nodes: List[Node], used_registers: set) -> None:
        index = 0
        while index < len(nodes):
            node = nodes[index]
            if isinstance(node, Run):
                node.items = [
                    transform_instr_mems(item, self._resolve_scalar,
                                         self._resolve_addr_of)
                    if isinstance(item, AsmInstr) else item
                    for item in node.items
                ]
            else:
                prologue = self._process_loop(node, used_registers)
                if prologue:
                    nodes.insert(index, Run(items=list(prologue)))
                    index += 1
            index += 1

    def _process_loop(self, loop: LoopNode,
                      used_registers: set) -> List[AsmInstr]:
        occurrences = self._collect_occurrences(loop)
        counts: Dict[_StreamKey, int] = {}
        for key in occurrences:
            counts[key] = counts.get(key, 0) + 1

        # Chain merging: several single-site accesses to the same array
        # with the same stride (a[2i], a[2i+1], ...) share one register
        # when their textual order matches their offset order; each
        # access post-modifies by the gap to the next one, and the last
        # access completes the per-iteration stride.
        merged: Dict[_StreamKey, Tuple[str, int]] = {}   # key->(group,post)
        merge_groups: Dict[str, Tuple[_StreamKey, ...]] = {}
        grouped: Dict[Tuple[str, int], List[_StreamKey]] = {}
        for key in counts:
            grouped.setdefault((key.symbol, key.coeff), []).append(key)
        max_post = self.target.capabilities.max_post_modify
        for (symbol, coeff), keys in grouped.items():
            if len(keys) < 2 or any(counts[k] > 1 for k in keys):
                continue
            ordered = sorted(keys, key=lambda k: k.offset)
            actual = [k for k in occurrences if k in set(keys)]
            if actual != ordered:
                continue
            steps = [ordered[i + 1].offset - ordered[i].offset
                     for i in range(len(ordered) - 1)]
            steps.append(coeff - (ordered[-1].offset - ordered[0].offset))
            if any(abs(step) > max_post for step in steps):
                continue
            group_name = f"{symbol}/{coeff}"
            merge_groups[group_name] = tuple(ordered)
            for key, step in zip(ordered, steps):
                merged[key] = (group_name, step)

        # Register allocation: one per merge group + one per loose key.
        available = [reg for reg in self.stream_registers
                     if reg not in used_registers]
        group_register: Dict[str, str] = {}
        allocation: Dict[_StreamKey, str] = {}
        post_of: Dict[_StreamKey, int] = {}
        multi_access: Set[_StreamKey] = set()

        def take_register(what: str) -> str:
            if not available:
                raise AddressingError(
                    f"loop {loop.loop_id}: out of address registers "
                    f"while assigning {what} "
                    f"({len(self.stream_registers)} registers total)")
            return available.pop(0)

        # When the conservative plan wants more registers than the loop
        # has left, fall back to generalized chain merging: *all* sites
        # of one (array, stride) pair share a single register that hops
        # between sites via post-modify.  Fallback-only, so programs
        # that fit keep their historical register assignment.
        loose_count = sum(1 for key in counts if key not in merged)
        chains = None
        if len(merge_groups) + loose_count > len(available):
            chains = self._plan_site_chains(occurrences, max_post)
            if chains is not None and len(chains) > len(available):
                chains = None       # still too many: report exhaustion

        if chains is not None:
            chain_register = {
                group: take_register(f"{group[0]} stride {group[1]}")
                for group in chains
            }
            site_queues: Dict[Tuple[str, int],
                              Deque[Tuple[_StreamKey, int]]] = {
                group: deque(sites) for group, sites in chains.items()
            }

            def resolve(operand: Mem) -> Mem:
                key = self._stream_key(operand)
                if key is not None:
                    group = (key.symbol, key.coeff)
                    site_key, step = site_queues[group].popleft()
                    if site_key != key:   # traversal out of step: a bug
                        raise AddressingError(
                            f"loop {loop.loop_id}: access-site order "
                            f"mismatch ({site_key} != {key})")
                    return replace(operand, mode="indirect",
                                   areg=chain_register[group],
                                   post_modify=step)
                return self._resolve_scalar(operand)

            inner_used = used_registers | set(chain_register.values())
        else:
            for group_name in merge_groups:
                group_register[group_name] = take_register(group_name)
            for key in counts:
                if key in merged:
                    group_name, step = merged[key]
                    allocation[key] = group_register[group_name]
                    post_of[key] = step
                    continue
                if abs(key.coeff) > max_post:
                    raise AddressingError(
                        f"stride {key.coeff} exceeds target post-modify "
                        f"capability ({max_post})")
                allocation[key] = take_register(
                    f"{key.symbol}[{key.coeff}*i+{key.offset}]")
                if counts[key] > 1:
                    # Several access sites per iteration: accesses leave
                    # the register untouched; a single pointer-bump at
                    # the end of the body advances the stream.
                    multi_access.add(key)
                    post_of[key] = 0
                else:
                    post_of[key] = key.coeff

            def resolve(operand: Mem) -> Mem:
                key = self._stream_key(operand)
                if key is not None and key in allocation:
                    return replace(operand, mode="indirect",
                                   areg=allocation[key],
                                   post_modify=post_of[key])
                return self._resolve_scalar(operand)

            inner_used = used_registers | set(allocation.values())
        index = 0
        while index < len(loop.body):
            child = loop.body[index]
            if isinstance(child, Run):
                child.items = [
                    transform_instr_mems(item, resolve,
                                         self._resolve_addr_of)
                    if isinstance(item, AsmInstr) else item
                    for item in child.items
                ]
            else:
                inner_prologue = self._process_loop(child, inner_used)
                if inner_prologue:
                    loop.body.insert(index, Run(items=list(inner_prologue)))
                    index += 1
            index += 1

        # Multi-access streams: one pointer-bump per iteration, at the
        # end of the body (every access site has executed by then).
        bumps = [self._pointer_bump(allocation[key], key.coeff)
                 for key in sorted(multi_access,
                                   key=lambda k: allocation[k])]
        if bumps:
            if loop.body and isinstance(loop.body[-1], Run):
                loop.body[-1].items.extend(bumps)
            else:
                loop.body.append(Run(items=bumps))

        # Preheader: initialize each stream register to the address of
        # its first-iteration element (merge groups / site chains: the
        # first access).  Returned to the caller, which places the
        # loads before this loop's LoopBegin.
        prologue: List[AsmInstr] = []
        if chains is not None:
            for group, sites in chains.items():
                first = sites[0][0]
                address = self.memory_map.address_of(first.symbol,
                                                     first.offset)
                prologue.append(self._load_address_register(
                    chain_register[group], address))
            return prologue
        initialized: Set[str] = set()
        for group_name, keys in merge_groups.items():
            register = group_register[group_name]
            first = keys[0]
            address = self.memory_map.address_of(first.symbol, first.offset)
            prologue.append(self._load_address_register(register, address))
            initialized.add(register)
        for key, register in allocation.items():
            if register in initialized:
                continue
            initialized.add(register)
            address = self.memory_map.address_of(key.symbol, key.offset)
            prologue.append(self._load_address_register(register, address))
        return prologue

    def _plan_site_chains(
            self, occurrences: List[_StreamKey], max_post: int
    ) -> Optional[Dict[Tuple[str, int],
                       List[Tuple[_StreamKey, int]]]]:
        """Generalized chain merging (register-exhaustion fallback).

        Groups the loop's access sites by (array, stride); within a
        group the shared register visits the sites in textual order,
        each access post-modifying by the hop to the next site (the
        last one returns to the next iteration's first site).  Returns
        ``{group: [(site key, post-modify), ...]}`` -- one entry per
        access *site*, aligned with the body's traversal order -- or
        ``None`` when some hop exceeds the target's post-modify reach.
        """
        groups: Dict[Tuple[str, int], List[_StreamKey]] = {}
        for key in occurrences:
            groups.setdefault((key.symbol, key.coeff), []).append(key)
        chains: Dict[Tuple[str, int],
                     List[Tuple[_StreamKey, int]]] = {}
        for (symbol, coeff), sites in groups.items():
            steps = [after.offset - site.offset
                     for site, after in zip(sites, sites[1:])]
            steps.append(coeff + sites[0].offset - sites[-1].offset)
            if any(abs(step) > max_post for step in steps):
                return None
            chains[(symbol, coeff)] = list(zip(sites, steps))
        return chains

    def _pointer_bump(self, register: str, stride: int) -> AsmInstr:
        maker = getattr(self.target, "make_pointer_bump", None)
        if maker is not None:
            return maker(register, stride)
        # Default: TC25 MAR shape -- modify AR as an access side effect.
        return AsmInstr(opcode="MAR",
                        operands=(Mem(symbol=f"<{register}>",
                                      mode="indirect", areg=register,
                                      post_modify=stride),),
                        words=1, cycles=1,
                        comment=f"advance {register} by {stride}")

    def _load_address_register(self, register: str,
                               address: int) -> AsmInstr:
        maker = getattr(self.target, "make_address_register_load", None)
        if maker is not None:
            return maker(register, address)
        # Default: a 2-word immediate load (TC25 LRLK shape).
        return AsmInstr(opcode="LRLK", operands=(Reg(register),
                                                 Imm(address)),
                        words=2, cycles=2)

    # ------------------------------------------------------------------

    def _stream_key(self, operand: Mem) -> Optional[_StreamKey]:
        if operand.mode != "symbolic" or operand.index is None:
            return None
        if operand.index.coeff == 0:
            return None
        return _StreamKey(operand.symbol, operand.index.coeff,
                          operand.index.offset)

    def _collect_occurrences(self, loop: LoopNode) -> List[_StreamKey]:
        """Stream accesses of this loop's direct body, in textual order
        (one entry per access site)."""
        occurrences: List[_StreamKey] = []
        for item in loop.direct_items():
            if not isinstance(item, AsmInstr):
                continue
            for operand in item.memory_operands():
                key = self._stream_key(operand)
                if key is not None:
                    occurrences.append(key)
        return occurrences

    def _resolve_addr_of(self, operand: AddrOf) -> Imm:
        return Imm(self.memory_map.address_of(operand.symbol,
                                              operand.offset))

    def _resolve_scalar(self, operand: Mem) -> Mem:
        if operand.mode != "symbolic":
            return operand
        if operand.index is not None and operand.index.coeff != 0:
            raise AddressingError(
                f"induction access {operand} outside any loop")
        offset = operand.index.offset if operand.index is not None else 0
        address = self.memory_map.address_of(operand.symbol, offset)
        return replace(operand, mode="direct", address=address)
