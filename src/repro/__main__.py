"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``                      -- kernels, targets, compilers
- ``compile <kernel>``          -- show a kernel's listing
                                  (``--target``, ``--compiler``)
- ``run <kernel>``              -- compile, simulate with seeded inputs,
                                  print outputs / cycles / prediction
- ``table1``                    -- regenerate the paper's Table 1
- ``cube``                      -- the Fig. 1 processor cube
- ``selftest``                  -- Sec. 4.5 fault-coverage run
- ``verify``                    -- differential conformance fuzzing
                                  (forwards to ``python -m repro.verify``;
                                  ``verify campaign`` runs the sharded,
                                  resumable conformance campaign engine)
- ``serve``                     -- long-running compile service
                                  (forwards to ``python -m repro.serve``)
- ``tune``                      -- measurement-driven knob autotuner
                                  (forwards to ``python -m repro.tune``)
"""

from __future__ import annotations

import argparse
import sys


def _add_target_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--target", default="tc25",
                        choices=("tc25", "m56", "risc16", "asip"),
                        help="processor model (default: tc25)")


def cmd_list(_args) -> int:
    """List kernels, targets and compilers."""
    from repro import available_kernels, available_targets
    from repro.dspstone import kernel
    print("kernels (Table 1 rows):")
    for name in available_kernels():
        print(f"  {name:26s} {kernel(name).description}")
    print()
    print("targets:", ", ".join(available_targets()))
    print("compilers: record (retargetable), baseline "
          "(target-specific, tc25 only), hand (reference, tc25 only)")
    return 0


def _print_compile_stats(compiled) -> None:
    """Verbose footer: per-stage wall clock + selection telemetry."""
    timings = compiled.stats.get("timings")
    if timings:
        total = sum(seconds for stage, seconds in timings.items()
                    if stage not in ("variants", "labeling"))
        print(f"compile time: {total * 1e3:.2f} ms")
        for stage, seconds in timings.items():
            nested = "  (within selection)" \
                if stage in ("variants", "labeling") else ""
            print(f"  {stage:10s} {seconds * 1e3:8.3f} ms{nested}")
    selection = compiled.stats.get("selection")
    if selection is not None:
        print(f"selection: {selection.assignments} assignments, "
              f"{selection.variants_tried} variants tried, "
              f"{selection.cuts} cuts")
        print(f"label cache: {selection.label_hits} hits / "
              f"{selection.label_misses} misses "
              f"({selection.label_hit_rate:.1%})")


def cmd_compile(args) -> int:
    """Compile a kernel and print its listing."""
    from repro import compile_kernel
    result = compile_kernel(args.kernel, target=args.target,
                            compiler=args.compiler)
    print(result.listing())
    if args.verbose:
        print()
        _print_compile_stats(result.compiled)
    return 0


def cmd_run(args) -> int:
    """Compile, simulate, and report timing for a kernel."""
    from repro import compile_kernel
    from repro.codegen.timing import predict_cycles
    from repro.dspstone import kernel
    spec = kernel(args.kernel)
    result = compile_kernel(args.kernel, target=args.target,
                            compiler=args.compiler)
    inputs = spec.inputs(seed=args.seed)
    outputs, cycles = result.run(inputs)
    print(result.listing())
    if args.verbose:
        print()
        _print_compile_stats(result.compiled)
    print()
    print(f"inputs (seed {args.seed}): {inputs}")
    print(f"outputs: {outputs}")
    print(f"simulated cycles: {cycles}")
    report = predict_cycles(result.compiled.code)
    print(report.describe())
    status = "MATCHES" if report.total_cycles == cycles else "DIFFERS"
    print(f"static prediction {status} simulation")
    return 0


def cmd_table1(_args) -> int:
    """Regenerate the paper's Table 1."""
    from repro.evalx.table1 import compute_table1, format_table1
    print(format_table1(compute_table1()))
    return 0


def cmd_cube(_args) -> int:
    """Print the Fig. 1 processor cube for the shipped targets."""
    from repro.targets.asip import Asip
    from repro.targets.cube import cube_table
    from repro.targets.m56 import M56
    from repro.targets.risc import Risc16
    from repro.targets.tc25 import TC25
    print(cube_table([TC25(), M56(), Risc16(), Asip()]))
    return 0


def cmd_report(_args) -> int:
    """Regenerate all measured results as one markdown report."""
    from repro.evalx.report import full_report
    print(full_report())
    return 0


def cmd_selftest(args) -> int:
    """Generate self-test programs and grade fault coverage."""
    from repro.selftest import run_self_test
    from repro.targets.risc import Risc16
    from repro.targets.tc25 import TC25
    target = Risc16() if args.target == "risc16" else TC25()
    report = run_self_test(target, programs=args.programs)
    print(report.summary())
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # ``verify`` and ``serve`` own their whole argument tails (argparse
    # subparsers cannot pass through unknown options); forward verbatim.
    if argv and argv[0] == "verify":
        from repro.verify.__main__ import main as verify_main
        return verify_main(list(argv[1:]))
    if argv and argv[0] == "serve":
        from repro.serve.__main__ import main as serve_main
        return serve_main(list(argv[1:]))
    if argv and argv[0] == "tune":
        from repro.tune.__main__ import main as tune_main
        return tune_main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Retargetable code generation for embedded core "
                    "processors (Marwedel, DAC 1997 -- reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="kernels, targets, compilers")

    compile_parser = commands.add_parser("compile",
                                         help="show a kernel's listing")
    compile_parser.add_argument("kernel")
    _add_target_option(compile_parser)
    compile_parser.add_argument("--compiler", default="record",
                                choices=("record", "baseline", "hand"))
    compile_parser.add_argument("-v", "--verbose", action="store_true",
                                help="print per-stage compile timings "
                                     "and selection statistics")

    run_parser = commands.add_parser("run",
                                     help="compile + simulate a kernel")
    run_parser.add_argument("kernel")
    _add_target_option(run_parser)
    run_parser.add_argument("--compiler", default="record",
                            choices=("record", "baseline", "hand"))
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("-v", "--verbose", action="store_true",
                            help="print per-stage compile timings "
                                 "and selection statistics")

    commands.add_parser("table1", help="regenerate the paper's Table 1")
    commands.add_parser("cube", help="the Fig. 1 processor cube")
    commands.add_parser("report",
                        help="all measured results, as markdown")

    selftest_parser = commands.add_parser(
        "selftest", help="Sec. 4.5 fault-coverage run")
    _add_target_option(selftest_parser)
    selftest_parser.add_argument("--programs", type=int, default=12)

    commands.add_parser(
        "verify", help="differential conformance fuzzing; 'verify "
                       "campaign' runs sharded resumable campaigns "
                       "(see python -m repro.verify --help)")
    commands.add_parser(
        "serve", help="long-running compile/simulate/verify service "
                      "(see python -m repro serve --help)")
    commands.add_parser(
        "tune", help="measurement-driven knob autotuner "
                     "(see python -m repro tune --help)")

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "compile": cmd_compile,
        "run": cmd_run,
        "table1": cmd_table1,
        "cube": cmd_cube,
        "report": cmd_report,
        "selftest": cmd_selftest,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
