"""repro -- retargetable code generation for embedded core processors.

A from-scratch Python reproduction of the system described in:

    Peter Marwedel, "Code Generation for Core Processors",
    Proc. 34th Design Automation Conference (DAC), 1997.

The package implements the RECORD retargetable compiler pipeline
(instruction-set extraction from RT netlists, BURS tree-covering code
selection with algebraic variants, the Sec. 3.3 DSP optimizations), the
substrates it needs (the MiniDFL source language, explicit target
processor models, a cycle-counting instruction-set simulator), a
conventional target-specific baseline compiler, and the DSPStone kernel
suite with hand-written assembly references used in the paper's
Table 1.

Quickstart::

    from repro import compile_kernel
    result = compile_kernel("fir", target="tc25", compiler="record")
    print(result.listing())

Package map (see DESIGN.md for the full inventory):

- ``repro.dfl``      -- MiniDFL frontend (lexer/parser/semantics/lowering)
- ``repro.ir``       -- DFGs, expression trees, algebraic rewrites
- ``repro.rtl``      -- RT-level netlists + justification (ECAD side)
- ``repro.ise``      -- instruction-set extraction, netlist targets
- ``repro.codegen``  -- BURS matcher, selector, optimizers, pipeline
- ``repro.baseline`` -- the conventional target-specific compiler
- ``repro.targets``  -- TC25, M56, Risc16, Asip, processor cube
- ``repro.sim``      -- instruction-set simulator + harness
- ``repro.dspstone`` -- the ten Table 1 kernels + hand references
- ``repro.selftest`` -- self-test program generation (Sec. 4.5)
- ``repro.evalx``    -- table/figure regeneration harness
"""

__version__ = "1.0.0"

from repro.api import (
    CompilationResult,
    available_kernels,
    available_targets,
    compile_kernel,
    compile_program,
    compile_source,
)

__all__ = [
    "CompilationResult",
    "available_kernels",
    "available_targets",
    "compile_kernel",
    "compile_program",
    "compile_source",
    "__version__",
]
