"""Target processor models.

Each target is an *explicit* machine description (the paper's definition
of retargetability, Sec. 4.1): a tree grammar for the code selector, an
``execute`` method for the simulator, resource metadata for the
optimizers, and loop/addressing hooks for the back-end stages.  Both
compilers in this repository -- the RECORD-style retargetable pipeline
and the conventional baseline -- consume only these objects.

Shipped targets:

- :class:`repro.targets.tc25.TC25` -- a TI TMS320C25-flavoured
  accumulator DSP (the processor of the paper's Table 1).
- :class:`repro.targets.m56.M56` -- a Motorola 56000-flavoured dual-bank
  DSP with parallel move slots (exercises compaction and memory-bank
  assignment).
- :class:`repro.targets.risc.Risc16` -- a small general-purpose RISC
  core with a homogeneous register file (the MiniRISC/ARM corner of the
  processor cube).
- :class:`repro.targets.asip.Asip` -- a parameterizable ASIP generator
  (generic parameters: register count, optional MAC/shift hardware,
  address registers), as discussed in Sec. 4.2.
"""

from repro.targets.model import TargetModel, TargetCapabilities

__all__ = ["TargetModel", "TargetCapabilities"]


def all_targets():
    """Instantiate one of each shipped target (default configurations)."""
    from repro.targets.tc25 import TC25
    from repro.targets.m56 import M56
    from repro.targets.risc import Risc16
    from repro.targets.asip import Asip

    return [TC25(), M56(), Risc16(), Asip()]
