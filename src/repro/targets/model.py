"""The explicit target-model interface.

Sec. 4.1 of the paper: "A design automation tool is said to be
retargetable if ... the target model cannot be an implicit part of the
tool's algorithm, but must be explicit."  :class:`TargetModel` is that
explicit model.  Everything a pipeline stage needs to know about a
processor -- its instruction patterns, its addressing capabilities, its
parallel slots, its machine modes, how a counted loop is realized, and
the bit-true meaning of each instruction -- is answered by this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.codegen.asm import AsmInstr, CodeSeq
from repro.codegen.grammar import TreeGrammar
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.machine import MachineState


@dataclass(frozen=True)
class TargetCapabilities:
    """Feature summary used by the optimizers and the processor cube.

    Attributes:
        address_registers: number of AGU address registers usable for
            array walks (0 means no indirect addressing).
        max_post_modify: largest |stride| the AGU applies for free as an
            access side effect.
        direct_addressing: scalars reachable by absolute address without
            an address register.
        memory_banks: names of parallel data memory banks ("x", "y") or
            a single unnamed bank.
        parallel_slots: move slots that can be packed alongside an ALU
            instruction (0 on pure accumulator machines).
        modes: machine mode registers and their legal values, e.g.
            ``{"pm": (0, 15)}``.
        has_repeat: single-instruction hardware repeat (RPTK-style).
        has_hardware_loop: zero-overhead multi-instruction loop (DO-style).
    """

    address_registers: int = 0
    max_post_modify: int = 1
    direct_addressing: bool = True
    memory_banks: Tuple[str, ...] = ()
    parallel_slots: int = 0
    modes: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    has_repeat: bool = False
    has_hardware_loop: bool = False


class TargetModel:
    """Base class of all processor models.

    Subclasses must provide:

    - :meth:`grammar` -- the tree grammar (instruction patterns + costs);
    - :meth:`initial_state` -- a fresh :class:`MachineState`;
    - :meth:`execute` -- bit-true semantics of one instruction;
    - :meth:`emit_counted_loop` -- realize a counted-loop marker;
    - ``capabilities`` -- a :class:`TargetCapabilities`.

    Optional hooks (default: no-ops) let targets contribute
    target-specific peepholes without the pipelines knowing about them.
    """

    name: str = "abstract"
    word_bits: int = 16
    capabilities: TargetCapabilities = TargetCapabilities()

    def __init__(self) -> None:
        self.fpc = FixedPointContext(self.word_bits)

    # -- code selection --------------------------------------------------

    def grammar(self) -> TreeGrammar:
        """The target's tree grammar: instruction patterns + costs.

        Built once per model instance by :meth:`_build_grammar` and
        memoized -- rules and emit closures are immutable, and grammar
        construction used to be paid on *every* ``compile()`` call.
        """
        cached = self.__dict__.get("_grammar_cache")
        if cached is None:
            cached = self._build_grammar()
            self.__dict__["_grammar_cache"] = cached
        return cached

    def _build_grammar(self) -> TreeGrammar:
        """Construct the tree grammar (subclass hook; called once)."""
        raise NotImplementedError

    def __getstate__(self) -> dict:
        """Pickle support for the compile farm: the grammar cache holds
        emit closures, which do not pickle -- drop it and rebuild lazily
        on the other side."""
        state = dict(self.__dict__)
        state.pop("_grammar_cache", None)
        return state

    # -- simulation -------------------------------------------------------

    def initial_state(self) -> MachineState:
        """A fresh machine state (registers zeroed, memory cleared)."""
        raise NotImplementedError

    def execute(self, state: MachineState,
                instr: AsmInstr) -> Optional[str]:
        """Execute one instruction; return a label name to branch to."""
        raise NotImplementedError

    def repeat_count(self, state: MachineState, instr: AsmInstr) -> int:
        """How many times the simulator runs ``instr`` (hardware repeat)."""
        return 1

    # -- back-end hooks -----------------------------------------------------

    def finalize_loop(self, count: int, body: List, loop_id: int,
                      depth: int) -> Tuple[List, List]:
        """Realize a counted-loop marker: return (prologue, epilogue)
        items placed around the already-emitted body.  ``depth`` is the
        loop nesting depth (for targets with dedicated counters)."""
        raise NotImplementedError

    def make_address_register_load(self, register: str,
                                   address: int) -> "AsmInstr":
        """Instruction loading an AGU register with an absolute address
        (stream preheaders).  Default: a 2-word immediate load."""
        from repro.codegen.asm import Imm, Reg
        return AsmInstr(opcode="LRLK",
                        operands=(Reg(register), Imm(address)),
                        words=2, cycles=2)

    def make_pointer_bump(self, register: str, stride: int) -> "AsmInstr":
        """Instruction advancing an AGU register by ``stride`` (streams
        with several access sites per iteration).  Default: a MAR-shaped
        modify-as-side-effect instruction."""
        from repro.codegen.asm import Mem
        return AsmInstr(opcode="MAR",
                        operands=(Mem(symbol=f"<{register}>",
                                      mode="indirect", areg=register,
                                      post_modify=stride),),
                        words=1, cycles=1,
                        comment=f"advance {register} by {stride}")

    def mode_change_instruction(self, mode: str, value: int) -> AsmInstr:
        """Instruction that sets machine mode ``mode`` to ``value``."""
        raise NotImplementedError

    def mode_reset_values(self) -> Dict[str, int]:
        """Machine modes at program entry (before any mode-change)."""
        return {}

    def peephole(self, code: CodeSeq) -> CodeSeq:
        """Target-specific peephole pass (fusions, idioms); default none."""
        return code

    def loop_optimizations(self, code: CodeSeq,
                           read_only_arrays: Mapping[str, int],
                           promote_accumulators: bool = True,
                           repeat_idioms: bool = True,
                           fuse_shift_idioms: bool = False):
        """Target-specific loop-level optimizations.

        Returns ``(code, pmem_tables)``.  ``read_only_arrays`` maps input
        arrays that the program never writes to their sizes (candidates
        for program-memory coefficient tables).  Default: no change.
        """
        return code, []

    # -- misc ---------------------------------------------------------------

    def describe(self) -> str:
        """One-line human-readable summary of the model's features."""
        caps = self.capabilities
        features = []
        if caps.has_repeat:
            features.append("repeat")
        if caps.has_hardware_loop:
            features.append("hw-loop")
        if caps.parallel_slots:
            features.append(f"{caps.parallel_slots} move slots")
        if caps.memory_banks:
            features.append("banks " + "/".join(caps.memory_banks))
        return (f"{self.name}: {self.word_bits}-bit, "
                f"{caps.address_registers} ARs"
                + (", " + ", ".join(features) if features else ""))


@dataclass(frozen=True)
class LoopShape:
    """How a loop was realized (for accounting and the simulator).

    ``kind`` is ``"repeat"`` (hardware repeat of a single instruction),
    ``"hardware"`` (zero-overhead loop) or ``"branch"`` (decrement and
    branch with per-iteration overhead cycles).
    """

    kind: str
    overhead_words: int
    per_iteration_cycles: int
