"""The explicit target-model interface.

Sec. 4.1 of the paper: "A design automation tool is said to be
retargetable if ... the target model cannot be an implicit part of the
tool's algorithm, but must be explicit."  :class:`TargetModel` is that
explicit model.  Everything a pipeline stage needs to know about a
processor -- its instruction patterns, its addressing capabilities, its
parallel slots, its machine modes, how a counted loop is realized, and
the bit-true meaning of each instruction -- is answered by this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.codegen.asm import AsmInstr, CodeSeq
from repro.codegen.grammar import TreeGrammar
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.decode import DecodeFallback
from repro.sim.machine import MachineState, SimulationError


def semantics(*opcodes: str, branch: bool = False):
    """Register a method as the bit-true handler for ``opcodes``.

    Handlers take ``(state, instr)`` (targets with a different driver,
    e.g. the M56 parallel-move commit, may define their own handler
    signature) and return a label name to branch to, or ``None``.
    ``branch=True`` marks opcodes that may redirect control flow --
    the fast simulator uses this to end basic blocks at decode time.

    The registry is collected along the MRO by
    ``TargetModel.__init_subclass__``, so a subclass can override a
    single opcode's handler (or add new ones, as ``Asip`` does) without
    touching the inherited dispatch chain.
    """

    def register(fn):
        fn.__semantics__ = tuple(opcodes)
        fn.__semantics_branch__ = branch
        return fn

    return register


def binder(*opcodes: str):
    """Register a decode-time specializer for ``opcodes``.

    A binder takes an :class:`AsmInstr` and returns a closure
    ``step(state)`` with operands pre-extracted (or ``None`` to decline,
    falling back to the generic dispatch step).  Binders are the fast
    simulator's translation layer; they must be observationally
    identical to the :func:`semantics` handler for the same opcode.
    """

    def register(fn):
        fn.__binds__ = tuple(opcodes)
        return fn

    return register


def emitter(*opcodes: str):
    """Register a JIT source template for ``opcodes``.

    An emitter takes ``(instr, ctx)`` -- the decoded instruction view
    and a :class:`repro.sim.jit.BlockEmitter` -- and appends specialized
    Python source lines to the block being generated.  Return ``True``
    when the instruction was emitted; any falsy return declines (the
    JIT inlines a call to the instruction's bound closure instead), and
    a raised exception abandons the whole block (it runs through its
    already-decoded FastMachine closures).  Emitters must be
    observationally identical to the :func:`semantics` handler for the
    same opcode.
    """

    def register(fn):
        fn.__emits__ = tuple(opcodes)
        return fn

    return register


@dataclass(frozen=True)
class TargetCapabilities:
    """Feature summary used by the optimizers and the processor cube.

    Attributes:
        address_registers: number of AGU address registers usable for
            array walks (0 means no indirect addressing).
        max_post_modify: largest |stride| the AGU applies for free as an
            access side effect.
        direct_addressing: scalars reachable by absolute address without
            an address register.
        memory_banks: names of parallel data memory banks ("x", "y") or
            a single unnamed bank.
        parallel_slots: move slots that can be packed alongside an ALU
            instruction (0 on pure accumulator machines).
        modes: machine mode registers and their legal values, e.g.
            ``{"pm": (0, 15)}``.
        has_repeat: single-instruction hardware repeat (RPTK-style).
        has_hardware_loop: zero-overhead multi-instruction loop (DO-style).
    """

    address_registers: int = 0
    max_post_modify: int = 1
    direct_addressing: bool = True
    memory_banks: Tuple[str, ...] = ()
    parallel_slots: int = 0
    modes: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)
    has_repeat: bool = False
    has_hardware_loop: bool = False


class TargetModel:
    """Base class of all processor models.

    Subclasses must provide:

    - :meth:`grammar` -- the tree grammar (instruction patterns + costs);
    - :meth:`initial_state` -- a fresh :class:`MachineState`;
    - :meth:`execute` -- bit-true semantics of one instruction;
    - :meth:`emit_counted_loop` -- realize a counted-loop marker;
    - ``capabilities`` -- a :class:`TargetCapabilities`.

    Optional hooks (default: no-ops) let targets contribute
    target-specific peepholes without the pipelines knowing about them.
    """

    name: str = "abstract"
    word_bits: int = 16
    capabilities: TargetCapabilities = TargetCapabilities()

    #: opcode -> attribute name of the @semantics handler (per class,
    #: collected along the MRO so subclasses inherit and may override).
    _SEMANTICS_ATTRS: Mapping[str, str] = {}
    #: opcodes whose handler may return a branch-target label.
    _BRANCH_OPCODES: frozenset = frozenset()
    #: opcode -> attribute name of the @binder specializer.
    _BINDER_ATTRS: Mapping[str, str] = {}
    #: opcode -> attribute name of the @emitter JIT template.
    _EMITTER_ATTRS: Mapping[str, str] = {}

    def __init__(self) -> None:
        self.fpc = FixedPointContext(self.word_bits)

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        handlers: Dict[str, str] = {}
        branches = set()
        binders: Dict[str, str] = {}
        emitters: Dict[str, str] = {}
        for klass in reversed(cls.__mro__):
            for attr, fn in vars(klass).items():
                for opcode in getattr(fn, "__semantics__", ()):
                    handlers[opcode] = attr
                    if fn.__semantics_branch__:
                        branches.add(opcode)
                    else:
                        branches.discard(opcode)
                for opcode in getattr(fn, "__binds__", ()):
                    binders[opcode] = attr
                for opcode in getattr(fn, "__emits__", ()):
                    emitters[opcode] = attr
        cls._SEMANTICS_ATTRS = handlers
        cls._BRANCH_OPCODES = frozenset(branches)
        cls._BINDER_ATTRS = binders
        cls._EMITTER_ATTRS = emitters

    # -- code selection --------------------------------------------------

    def grammar(self) -> TreeGrammar:
        """The target's tree grammar: instruction patterns + costs.

        Built once per model instance by :meth:`_build_grammar` and
        memoized -- rules and emit closures are immutable, and grammar
        construction used to be paid on *every* ``compile()`` call.
        """
        cached = self.__dict__.get("_grammar_cache")
        if cached is None:
            cached = self._build_grammar()
            self.__dict__["_grammar_cache"] = cached
        return cached

    def _build_grammar(self) -> TreeGrammar:
        """Construct the tree grammar (subclass hook; called once)."""
        raise NotImplementedError

    def __getstate__(self) -> dict:
        """Pickle support for the compile farm: the grammar cache holds
        emit closures (and the dispatch/binder caches hold bound
        methods), none of which pickle -- drop them and rebuild lazily
        on the other side."""
        state = dict(self.__dict__)
        state.pop("_grammar_cache", None)
        state.pop("_dispatch_cache", None)
        state.pop("_binder_cache", None)
        state.pop("_emitter_cache", None)
        return state

    # -- simulation -------------------------------------------------------

    def initial_state(self) -> MachineState:
        """A fresh machine state (registers zeroed, memory cleared)."""
        raise NotImplementedError

    def dispatch_table(self) -> Dict[str, Callable]:
        """opcode -> bound @semantics handler (built once per instance)."""
        table = self.__dict__.get("_dispatch_cache")
        if table is None:
            table = {opcode: getattr(self, attr)
                     for opcode, attr in type(self)._SEMANTICS_ATTRS.items()}
            self.__dict__["_dispatch_cache"] = table
        return table

    def binder_table(self) -> Dict[str, Callable]:
        """opcode -> bound @binder specializer (built once per instance)."""
        table = self.__dict__.get("_binder_cache")
        if table is None:
            table = {opcode: getattr(self, attr)
                     for opcode, attr in type(self)._BINDER_ATTRS.items()}
            self.__dict__["_binder_cache"] = table
        return table

    def emitter_table(self) -> Dict[str, Callable]:
        """opcode -> bound @emitter JIT template (built once per instance)."""
        table = self.__dict__.get("_emitter_cache")
        if table is None:
            table = {opcode: getattr(self, attr)
                     for opcode, attr in type(self)._EMITTER_ATTRS.items()}
            self.__dict__["_emitter_cache"] = table
        return table

    def emit_py(self, instr: AsmInstr, ctx) -> bool:
        """Append specialized Python source for ``instr`` to ``ctx``.

        Tries the @emitter registry; returns ``True`` when source was
        emitted, ``False`` when the JIT should inline a call to the
        instruction's bound closure instead.  A raised exception makes
        the JIT degrade the enclosing block to its FastMachine closures.
        """
        emit = self.emitter_table().get(instr.opcode)
        if emit is None:
            return False
        return bool(emit(instr, ctx))

    def emit_pre_py(self, instr: AsmInstr, ctx) -> bool:
        """Emit the per-dispatch fixup (:meth:`pre_dispatch`) inline.

        Returns ``True`` when nothing is needed or the fixup was
        emitted as source; ``False`` makes the JIT call the
        ``pre_dispatch`` closure (flushing its locals around it).
        """
        return self.pre_dispatch(instr) is None

    def execute(self, state: MachineState,
                instr: AsmInstr) -> Optional[str]:
        """Execute one instruction; return a label name to branch to.

        The default driver dispatches on the @semantics registry; a
        target with instruction-level parallelism (M56) overrides this
        to add its commit discipline around the same handlers.
        """
        handler = self.dispatch_table().get(instr.opcode)
        if handler is None:
            raise SimulationError(
                f"{self.name}: unknown opcode {instr.opcode!r}")
        return handler(state, instr)

    def repeat_count(self, state: MachineState, instr: AsmInstr) -> int:
        """How many times the simulator runs ``instr`` (hardware repeat)."""
        return 1

    # -- fast-simulator decode hooks ---------------------------------------

    def decode_instr(self, instr: AsmInstr) -> AsmInstr:
        """The instruction the simulator should decode for ``instr``.

        Identity here; fault-injection wrappers (``FaultySim``) swap
        opcodes at this point so mutations cost nothing at run time.
        """
        return instr

    def is_branch(self, instr: AsmInstr) -> bool:
        """May ``instr`` redirect control flow?  (Ends a basic block.)"""
        return instr.opcode in type(self)._BRANCH_OPCODES

    def static_repeat(self, instr: AsmInstr) -> Optional[int]:
        """If ``instr`` arms a hardware repeat whose count is known at
        decode time, return the iteration count applied to the *next*
        instruction; else ``None``.  Lets the decoder fuse the pair into
        one specialized step with statically-known cycles."""
        return None

    def pre_dispatch(self, instr: AsmInstr) -> Optional[Callable]:
        """Per-dispatch state fixup the reference interpreter performs in
        ``repeat_count`` (e.g. TC25 resets its MAC table cursor).  The
        decoder prepends the returned closure -- once per dispatch, not
        once per repeat iteration -- to the bound step.  ``None`` when
        the opcode needs no fixup (the common case)."""
        return None

    def bind_step(self, instr: AsmInstr) -> Callable:
        """Decode ``instr`` into a ``step(state)`` closure.

        Tries the @binder registry first (operand-pre-extracted fast
        closures); falls back to a thin wrapper over the reference
        ``execute`` so every opcode is decodable even before it has a
        specialized binder.  Unknown opcodes fail here, at decode time,
        with the same error the reference interpreter raises.
        """
        bind = self.binder_table().get(instr.opcode)
        if bind is not None:
            step = bind(instr)
            if step is not None:
                return step
        return self._default_step(instr)

    def _default_step(self, instr: AsmInstr) -> Callable:
        """Generic step: resolve the handler now, bind the instruction."""
        handler = self.dispatch_table().get(instr.opcode)
        if handler is None:
            if type(self).execute is not TargetModel.execute:
                # The target defines semantics in an overridden
                # ``execute`` that the registry knows nothing about
                # (e.g. synthesized netlist targets); the block decoder
                # cannot soundly specialize that, so run the reference
                # interpreter.
                raise DecodeFallback(
                    f"{self.name}: no registered semantics for "
                    f"{instr.opcode!r}")

            # Registry targets: defer the error to run time so an
            # unknown opcode behind a never-taken branch behaves
            # exactly like the reference interpreter.
            def unknown(state: MachineState) -> Optional[str]:
                raise SimulationError(
                    f"{self.name}: unknown opcode {instr.opcode!r}")
            return unknown

        def step(state: MachineState) -> Optional[str]:
            return handler(state, instr)

        return step

    # -- back-end hooks -----------------------------------------------------

    def finalize_loop(self, count: int, body: List, loop_id: int,
                      depth: int) -> Tuple[List, List]:
        """Realize a counted-loop marker: return (prologue, epilogue)
        items placed around the already-emitted body.  ``depth`` is the
        loop nesting depth (for targets with dedicated counters)."""
        raise NotImplementedError

    def make_address_register_load(self, register: str,
                                   address: int) -> "AsmInstr":
        """Instruction loading an AGU register with an absolute address
        (stream preheaders).  Default: a 2-word immediate load."""
        from repro.codegen.asm import Imm, Reg
        return AsmInstr(opcode="LRLK",
                        operands=(Reg(register), Imm(address)),
                        words=2, cycles=2)

    def make_pointer_bump(self, register: str, stride: int) -> "AsmInstr":
        """Instruction advancing an AGU register by ``stride`` (streams
        with several access sites per iteration).  Default: a MAR-shaped
        modify-as-side-effect instruction."""
        from repro.codegen.asm import Mem
        return AsmInstr(opcode="MAR",
                        operands=(Mem(symbol=f"<{register}>",
                                      mode="indirect", areg=register,
                                      post_modify=stride),),
                        words=1, cycles=1,
                        comment=f"advance {register} by {stride}")

    def mode_change_instruction(self, mode: str, value: int) -> AsmInstr:
        """Instruction that sets machine mode ``mode`` to ``value``."""
        raise NotImplementedError

    def mode_reset_values(self) -> Dict[str, int]:
        """Machine modes at program entry (before any mode-change)."""
        return {}

    def peephole(self, code: CodeSeq) -> CodeSeq:
        """Target-specific peephole pass (fusions, idioms); default none."""
        return code

    def loop_optimizations(self, code: CodeSeq,
                           read_only_arrays: Mapping[str, int],
                           promote_accumulators: bool = True,
                           repeat_idioms: bool = True,
                           fuse_shift_idioms: bool = False):
        """Target-specific loop-level optimizations.

        Returns ``(code, pmem_tables)``.  ``read_only_arrays`` maps input
        arrays that the program never writes to their sizes (candidates
        for program-memory coefficient tables).  Default: no change.
        """
        return code, []

    # -- misc ---------------------------------------------------------------

    def describe(self) -> str:
        """One-line human-readable summary of the model's features."""
        caps = self.capabilities
        features = []
        if caps.has_repeat:
            features.append("repeat")
        if caps.has_hardware_loop:
            features.append("hw-loop")
        if caps.parallel_slots:
            features.append(f"{caps.parallel_slots} move slots")
        if caps.memory_banks:
            features.append("banks " + "/".join(caps.memory_banks))
        return (f"{self.name}: {self.word_bits}-bit, "
                f"{caps.address_registers} ARs"
                + (", " + ", ".join(features) if features else ""))


@dataclass(frozen=True)
class LoopShape:
    """How a loop was realized (for accounting and the simulator).

    ``kind`` is ``"repeat"`` (hardware repeat of a single instruction),
    ``"hardware"`` (zero-overhead loop) or ``"branch"`` (decrement and
    branch with per-iteration overhead cycles).
    """

    kind: str
    overhead_words: int
    per_iteration_cycles: int
