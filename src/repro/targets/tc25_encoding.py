"""Binary encoding for the TC25: assembler and disassembler.

RECORD "compiles programs ... into binary code" (Sec. 4.3.1); this
module is that last step for the TC25 family.  The instruction format
is our own compact 16-bit layout (the real TMS320C25 opcode map is
byte-exact silicon history we do not claim), but it is *complete and
reversible*: every instruction either of this repository's compilers or
the hand references emit assembles to exactly its declared word count,
and disassembling the image yields a program the simulator executes to
the same results -- both properties are enforced by the test suite.

Word layout::

    word 0   [15:10] opcode   [9] indirect   [8:0] payload
             payload, direct access   : 9-bit data address
             payload, indirect access : [8:6] AR number  [5:3] post code
             payload, short immediate : 9 bits
    word 1   (2-word instructions) 16-bit extension: long immediate,
             absolute address, branch target (instruction word address),
             or program-memory table index (MAC/MACD)

    special  MPYK uses the reserved opcode prefix 0b111 with a 13-bit
             signed immediate in [12:0], matching the 13-bit immediate
             the real part gives MPYK (and the selector's operand
             predicate)

Post-modify codes index ``POST_CODES`` (the AGU stride table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, Mem, Reg,
)
from repro.codegen.compiled import CompiledProgram

# stable opcode numbering (order is part of the format)
OPCODES: List[str] = [
    "NOP", "ZAC", "LAC", "LACK", "LALK", "ADD", "SUB", "ADDK", "SUBK",
    "ADLK", "SBLK", "AND", "OR", "XOR", "ANDK", "ORK", "XORK", "CMPL",
    "NEG", "ABS", "SATL", "SFL", "SFR", "SACL", "SACH", "ZALH", "ADDS",
    "DMOV", "LT", "MPY", "PAC", "APAC", "SPAC", "SPM", "LARK", "LRLK",
    "LAR", "SAR", "MAR", "RPTK", "MAC", "MACD", "LTA", "LTP", "LTS",
    "LACS", "B", "BANZ",
]
OPCODE_OF = {name: number for number, name in enumerate(OPCODES)}
MPYK_PREFIX = 0b111 << 13

POST_CODES = [-8, -4, -2, -1, 0, 1, 2, 4]

TWO_WORD = {"LALK", "ADLK", "SBLK", "ANDK", "ORK", "XORK", "LRLK",
            "B", "BANZ", "MAC", "MACD"}
IMMEDIATE_OPS = {"LACK", "ADDK", "SUBK", "RPTK", "SPM"}
REGISTER_OPS = {"LARK", "LRLK", "LAR", "SAR", "BANZ"}


class EncodingError(Exception):
    """An operand does not fit the format."""


@dataclass
class MachineImage:
    """An assembled program: code words + the metadata an embedded
    loader would carry alongside (label map, pmem table directory)."""

    words: List[int] = field(default_factory=list)
    # instruction index (word address of first word) per code item
    table_names: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.words)

    def hex_dump(self, per_line: int = 8) -> str:
        """Classic address-prefixed hex listing of the image."""
        lines = []
        for start in range(0, len(self.words), per_line):
            chunk = self.words[start:start + per_line]
            body = " ".join(f"{word:04X}" for word in chunk)
            lines.append(f"{start:04X}: {body}")
        return "\n".join(lines)


def _register_number(name: str) -> int:
    if not name.startswith("AR") or not name[2:].isdigit():
        raise EncodingError(f"not an address register: {name!r}")
    number = int(name[2:])
    if not 0 <= number <= 7:
        raise EncodingError(f"address register out of range: {name!r}")
    return number


def _post_code(stride: int) -> int:
    try:
        return POST_CODES.index(stride)
    except ValueError:
        raise EncodingError(f"unsupported post-modify stride {stride}")


def _mem_payload(operand: Mem) -> Tuple[int, int]:
    """(indirect flag, payload) for a resolved memory operand."""
    if operand.mode == "direct":
        if not 0 <= operand.address < 512:
            raise EncodingError(
                f"direct address {operand.address} exceeds 9 bits")
        return 0, operand.address
    if operand.mode == "indirect":
        payload = (_register_number(operand.areg) << 6) \
            | (_post_code(operand.post_modify) << 3)
        return 1, payload
    raise EncodingError(f"unresolved memory operand {operand}")


def assemble(compiled: CompiledProgram) -> MachineImage:
    """Assemble finalized TC25 code into a binary image."""
    items = list(compiled.code.items)
    # layout pass: word address of each instruction / label
    addresses: Dict[int, int] = {}
    label_addresses: Dict[str, int] = {}
    cursor = 0
    for position, item in enumerate(items):
        if isinstance(item, Label):
            label_addresses[item.name] = cursor
        elif isinstance(item, AsmInstr):
            addresses[position] = cursor
            cursor += item.words
    table_index = {table.label: number
                   for number, table in enumerate(compiled.pmem_tables)}

    image = MachineImage(
        table_names=[table.label for table in compiled.pmem_tables])
    for position, item in enumerate(items):
        if isinstance(item, Label):
            continue
        if not isinstance(item, AsmInstr):
            raise EncodingError(f"unfinalized item {item!r}")
        image.words.extend(
            _encode(item, label_addresses, table_index))
    if len(image.words) != compiled.words():
        raise EncodingError(
            f"encoded length {len(image.words)} disagrees with declared "
            f"size {compiled.words()}")
    return image


def _encode(instr: AsmInstr, labels: Dict[str, int],
            tables: Dict[str, int]) -> List[int]:
    opcode = instr.opcode
    if opcode == "MPYK":
        value = instr.operands[0].value
        if not -4096 <= value <= 4095:
            raise EncodingError(f"MPYK immediate {value} exceeds 13 bits")
        return [MPYK_PREFIX | (value & 0x1FFF)]
    if opcode not in OPCODE_OF:
        raise EncodingError(f"no encoding for opcode {opcode!r}")
    word = OPCODE_OF[opcode] << 10
    extension: Optional[int] = None

    operands = list(instr.operands)
    if opcode in ("MAC", "MACD"):
        table, data = operands
        extension = tables[table.name]
        indirect, payload = _mem_payload(data)
        word |= (indirect << 9) | payload
    elif opcode in ("B",):
        extension = labels[operands[0].name]
    elif opcode == "BANZ":
        extension = labels[operands[0].name]
        word |= _register_number(operands[1].name) << 6
    elif opcode in ("LARK", "LRLK"):
        word |= _register_number(operands[0].name) << 6
        value = operands[1].value
        if opcode == "LARK":
            if not 0 <= value <= 63:
                # 6 payload bits remain beside the register number
                raise EncodingError(
                    f"LARK immediate {value} exceeds 6 bits")
            word |= value
        else:
            extension = value & 0xFFFF
    elif opcode in ("LAR", "SAR"):
        word |= _register_number(operands[0].name) << 6
        indirect, payload = _mem_payload(operands[1])
        word |= (indirect << 9) | (payload & 0x3F)
        if indirect:
            raise EncodingError(f"{opcode} requires a direct operand")
        if payload > 63:
            raise EncodingError(
                f"{opcode} direct address {payload} exceeds 6 bits")
    elif opcode == "LACS":
        indirect, payload = _mem_payload(operands[0])
        shift = operands[1].value
        if indirect:
            raise EncodingError("LACS encodes direct operands only")
        if payload > 31:
            raise EncodingError("LACS address exceeds 5 bits")
        if not 0 <= shift <= 15:
            raise EncodingError(f"LACS shift {shift} exceeds 4 bits")
        word |= (shift << 5) | payload
    elif operands and isinstance(operands[0], Mem):
        indirect, payload = _mem_payload(operands[0])
        word |= (indirect << 9) | payload
    elif operands and isinstance(operands[0], Imm):
        value = operands[0].value
        if opcode in TWO_WORD:
            extension = value & 0xFFFF
        else:
            if not 0 <= value <= 511:
                raise EncodingError(
                    f"{opcode} immediate {value} exceeds 9 bits")
            word |= value
    result = [word]
    if opcode in TWO_WORD:
        result.append(extension if extension is not None else 0)
    return result


# ----------------------------------------------------------------------
# Disassembly
# ----------------------------------------------------------------------

def disassemble(image: MachineImage) -> CodeSeq:
    """Decode a binary image back into executable (simulatable) code.

    Branch targets become synthetic labels ``W<address>`` placed at the
    corresponding instruction; pmem table operands map back through the
    image's table directory.
    """
    decoded: List[Tuple[int, AsmInstr]] = []     # (word address, instr)
    referenced: List[int] = []
    cursor = 0
    while cursor < len(image.words):
        address = cursor
        word = image.words[cursor]
        cursor += 1
        if (word >> 13) == 0b111:
            value = word & 0x1FFF
            if value >= 4096:
                value -= 8192
            decoded.append((address,
                            AsmInstr(opcode="MPYK",
                                     operands=(Imm(value),))))
            continue
        opcode = OPCODES[word >> 10]
        indirect = (word >> 9) & 1
        payload = word & 0x1FF
        extension = None
        words = 2 if opcode in TWO_WORD else 1
        if words == 2:
            extension = image.words[cursor]
            cursor += 1
        instr = _decode(opcode, indirect, payload, extension, image,
                        referenced, words)
        decoded.append((address, instr))

    code = CodeSeq()
    targets = set(referenced)
    for address, instr in decoded:
        if address in targets:
            code.append(Label(f"W{address}"))
        code.append(instr)
    return code


def _decode_mem(indirect: int, payload: int) -> Mem:
    if indirect:
        register = f"AR{(payload >> 6) & 0x7}"
        stride = POST_CODES[(payload >> 3) & 0x7]
        return Mem(symbol=f"<{register}>", mode="indirect",
                   areg=register, post_modify=stride)
    return Mem(symbol=f"@{payload}", mode="direct", address=payload)


def _decode(opcode: str, indirect: int, payload: int,
            extension: Optional[int], image: MachineImage,
            referenced: List[int], words: int) -> AsmInstr:
    def signed16(value: int) -> int:
        return value - 0x10000 if value >= 0x8000 else value

    cycles = words
    if opcode in ("MAC", "MACD"):
        cycles = 2
    if opcode in ("B", "BANZ"):
        cycles = 2

    if opcode in ("MAC", "MACD"):
        table = image.table_names[extension]
        return AsmInstr(opcode=opcode,
                        operands=(LabelRef(table),
                                  _decode_mem(indirect, payload)),
                        words=2, cycles=cycles)
    if opcode == "B":
        referenced.append(extension)
        return AsmInstr(opcode="B", operands=(LabelRef(f"W{extension}"),),
                        words=2, cycles=cycles)
    if opcode == "BANZ":
        referenced.append(extension)
        register = f"AR{(payload >> 6) & 0x7}"
        return AsmInstr(opcode="BANZ",
                        operands=(LabelRef(f"W{extension}"),
                                  Reg(register)),
                        words=2, cycles=cycles)
    if opcode == "LARK":
        register = f"AR{(payload >> 6) & 0x7}"
        return AsmInstr(opcode="LARK",
                        operands=(Reg(register), Imm(payload & 0x3F)),
                        words=1, cycles=1)
    if opcode == "LRLK":
        register = f"AR{(payload >> 6) & 0x7}"
        return AsmInstr(opcode="LRLK",
                        operands=(Reg(register), Imm(extension)),
                        words=2, cycles=2)
    if opcode in ("LAR", "SAR"):
        register = f"AR{(payload >> 6) & 0x7}"
        return AsmInstr(opcode=opcode,
                        operands=(Reg(register),
                                  _decode_mem(0, payload & 0x3F)),
                        words=1, cycles=1)
    if opcode == "LACS":
        shift = (payload >> 5) & 0xF
        return AsmInstr(opcode="LACS",
                        operands=(_decode_mem(0, payload & 0x1F),
                                  Imm(shift)),
                        words=1, cycles=1)
    if opcode in IMMEDIATE_OPS:
        return AsmInstr(opcode=opcode, operands=(Imm(payload),),
                        words=1, cycles=1)
    if opcode in ("LALK", "ADLK", "SBLK", "ANDK", "ORK", "XORK"):
        return AsmInstr(opcode=opcode,
                        operands=(Imm(signed16(extension)),),
                        words=2, cycles=2)
    if opcode in ("LAC", "ADD", "SUB", "AND", "OR", "XOR", "SACL",
                  "SACH", "ZALH", "ADDS", "DMOV", "LT", "MPY", "LTA",
                  "LTP", "LTS", "MAR"):
        return AsmInstr(opcode=opcode,
                        operands=(_decode_mem(indirect, payload),),
                        words=1, cycles=1)
    # zero-operand instructions
    return AsmInstr(opcode=opcode, words=1, cycles=1)
