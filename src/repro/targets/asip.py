"""Asip: an application-specific instruction-set processor generator.

Sec. 2.2 / 4.2 of the paper: "ASIPs frequently come with generic
parameters ... The user should at least be able to retarget a compiler
to every set of parameter values.  A larger range of target
architectures would be desirable to support experimentation with
different hardware options, especially for partitioning in
hardware/software codesign."

:class:`AsipParams` are exactly such generic parameters; an
:class:`Asip` is a TC25-family accumulator core whose instruction set
is assembled from them.  Because the RECORD pipeline consumes only the
explicit target model, every parameter combination yields a working
compiler immediately -- the retargeting story the paper demands,
exercised by ``benchmarks/bench_retarget.py`` (sweeping parameters and
watching code size/cycles respond is the codesign loop).

Parameters:

- ``has_multiplier`` / ``has_mac``: a T*mem multiplier, and whether the
  P register can accumulate into ACC (APAC/SPAC) or only transfer (PAC);
- ``has_repeat``: RPTK-style hardware repeat;
- ``has_product_shifter``: the pm=15 fractional product shift path;
- ``has_barrel_shifter``: k-bit accumulator shifts in one instruction
  (otherwise SFL/SFR chains);
- ``address_registers``: how many AGU registers serve array streams;
- ``immediate_bits``: width of the short-immediate path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.codegen.asm import AsmInstr, Imm
from repro.codegen.grammar import Cost, Nt, Pat, Rule, Term, TreeGrammar
from repro.ir.trees import Tree
from repro.sim.machine import MachineState
from repro.targets.model import (
    TargetCapabilities, binder, emitter, semantics,
)
from repro.targets.tc25 import TC25, _ins, _wrap32


@dataclass(frozen=True)
class AsipParams:
    """Generic parameters of the ASIP family."""

    word_bits: int = 16
    has_multiplier: bool = True
    has_mac: bool = True
    has_repeat: bool = True
    has_product_shifter: bool = True
    has_barrel_shifter: bool = False
    address_registers: int = 8
    immediate_bits: int = 8

    def describe(self) -> str:
        """Compact one-line parameter summary (used in target names)."""
        flags = []
        for attribute in ("has_multiplier", "has_mac", "has_repeat",
                          "has_product_shifter", "has_barrel_shifter"):
            if getattr(self, attribute):
                flags.append(attribute[4:])
        return (f"asip[{self.word_bits}b, {self.address_registers}AR, "
                f"imm{self.immediate_bits}"
                + ("".join(", " + f for f in flags)) + "]")


class Asip(TC25):
    """A TC25-family core specialized by :class:`AsipParams`."""

    def __init__(self, params: AsipParams = AsipParams()):
        self.params = params
        self.name = f"asip({params.describe()})"
        self.word_bits = params.word_bits
        stream_count = max(1, params.address_registers)
        self.STREAM_ADDRESS_REGISTERS = [
            f"AR{i}" for i in range(stream_count)]
        self.LOOP_ADDRESS_REGISTERS = [f"AR{stream_count}",
                                       f"AR{stream_count + 1}"]
        self.capabilities = TargetCapabilities(
            address_registers=stream_count,
            max_post_modify=8,
            direct_addressing=True,
            memory_banks=(),
            parallel_slots=0,
            modes={"pm": (0, 15)} if params.has_product_shifter else {},
            has_repeat=params.has_repeat,
            has_hardware_loop=False,
        )
        super().__init__()

    # ------------------------------------------------------------------

    def _build_grammar(self) -> TreeGrammar:
        """Prune / extend the TC25 grammar according to the parameters."""
        base = super()._build_grammar()
        params = self.params
        rules: List[Rule] = []
        imm_top = (1 << params.immediate_bits) - 1
        for rule in base.rules:
            name = rule.name
            if not params.has_multiplier and name in (
                    "MPY", "MPYK", "PAC/pm0", "PAC/pm15", "APAC/pm0",
                    "APAC/pm15", "SPAC/pm0", "SPAC/pm15", "LT"):
                continue
            if not params.has_mac and name in (
                    "APAC/pm0", "APAC/pm15", "SPAC/pm0", "SPAC/pm15"):
                continue
            if not params.has_product_shifter and name.endswith("/pm15"):
                continue
            if name == "LACK" and params.immediate_bits != 8:
                # re-guard the short-immediate rule to the chosen width
                rules.append(Rule(
                    rule.nonterm,
                    Term("const",
                         lambda t, top=imm_top: 0 <= t.value <= top,
                         f"#u{params.immediate_bits}"),
                    rule.cost, emit=rule.emit, name=rule.name,
                    clobbers=rule.clobbers))
                continue
            rules.append(rule)
        if params.has_barrel_shifter:
            def barrel(opcode):
                def emit(ctx, args):
                    ctx.emit(_ins(opcode, Imm(args[1])))
                    return "acc"
                return emit

            def shift_pred(tree: Tree) -> bool:
                return 1 <= tree.value <= params.word_bits - 1

            rules.append(Rule(
                "acc", Pat("shl", (Nt("acc"),
                                   Term("const", shift_pred, "#k"))),
                Cost(1, 1), emit=barrel("SFLK"), name="SFLK",
                clobbers=frozenset({"acc"})))
            rules.append(Rule(
                "acc", Pat("shr", (Nt("acc"),
                                   Term("const", shift_pred, "#k"))),
                Cost(1, 1), emit=barrel("SFRK"), name="SFRK",
                clobbers=frozenset({"acc"})))
        return TreeGrammar(self.name, rules,
                           nt_resources=base.nt_resources)

    # ------------------------------------------------------------------

    def loop_optimizations(self, code, read_only_arrays,
                           promote_accumulators=True, repeat_idioms=True,
                           fuse_shift_idioms=False):
        if not self.params.has_repeat:
            repeat_idioms = False
            fuse_shift_idioms = False
        return super().loop_optimizations(
            code, read_only_arrays,
            promote_accumulators=promote_accumulators,
            repeat_idioms=repeat_idioms,
            fuse_shift_idioms=fuse_shift_idioms)

    def finalize_loop(self, count: int, body: List, loop_id: int,
                      depth: int) -> Tuple[List, List]:
        if not self.params.has_repeat and len(body) == 1:
            # Defeat the RPTK special case: hand the parent a body that
            # looks multi-instruction (only the length is inspected; the
            # pipeline emits the real body regardless).
            body = list(body) + [_ins("NOP")]
        return super().finalize_loop(count, body, loop_id, depth)

    # ------------------------------------------------------------------

    def initial_state(self) -> MachineState:
        state = super().initial_state()
        stream_count = max(1, self.params.address_registers)
        for index in range(stream_count + 2):
            state.regs.setdefault(f"AR{index}", 0)
        return state

    # The barrel-shifter instructions extend the inherited TC25
    # semantics registry; everything else dispatches through the same
    # handlers (and fast-simulator binders) as the parent.

    @semantics("SFLK")
    def _exec_sflk(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["acc"] = _wrap32(
            state.regs["acc"] << instr.operands[0].value)

    @semantics("SFRK")
    def _exec_sfrk(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["acc"] >>= instr.operands[0].value

    @binder("SFLK", "SFRK")
    def _bind_barrel_shift(self, instr: AsmInstr):
        amount = instr.operands[0].value
        if instr.opcode == "SFLK":
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = _wrap32(regs["acc"] << amount)
        else:
            def step(state: MachineState) -> None:
                state.regs["acc"] >>= amount
        return step

    @emitter("SFLK", "SFRK")
    def _emit_barrel_shift(self, instr: AsmInstr, ctx) -> bool:
        amount = instr.operands[0].value
        acc = ctx.reg("acc")
        if instr.opcode == "SFLK":
            ctx.set_reg("acc", ctx.wrap32(f"{acc} << {amount}"))
        else:
            ctx.set_reg("acc", f"{acc} >> {amount}")
        return True
