"""Risc16: a small general-purpose RISC core.

The "core version of a general-purpose processor" corner of the
processor cube (MiniRISC / ARM in the paper's Sec. 2.2).  Included to
demonstrate *retargeting breadth*: the same RECORD pipeline that feeds
accumulator and dual-bank DSPs also feeds a three-address load/store
machine -- only the target model changes.

Model: 16-bit memory words with 32-bit registers (loads sign-extend,
stores truncate -- the usual RISC arrangement, and the reason the Q15
kernels' wide products survive); general registers R1..R6 (allocated by linear scan
over the selector's virtual registers -- the homogeneous case of
Sec. 3.3's register-assignment discussion); pointer registers P0..P3
for array walks; counter registers C0/C1 for loops; absolute 1-word
addressing (a small embedded core with a 16-bit address in the second
instruction half -- see DESIGN.md for the encoding hand-waves).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.codegen.addressing import transform_instr_mems
from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, Mem, Reg,
)
from repro.codegen.compiled import MemoryMap
from repro.codegen.grammar import (
    Cost, EmitContext, Nt, Pat, Rule, Term, TreeGrammar,
)
from repro.codegen.regalloc import allocate_registers
from repro.ir.trees import Tree
from repro.sim.machine import MachineState, SimulationError
from repro.targets.model import (
    TargetCapabilities, TargetModel, binder, emitter, semantics,
)

_MASK16 = (1 << 16) - 1
_MASK32 = (1 << 32) - 1


def _wrap16(value: int) -> int:
    value &= _MASK16
    return value - (1 << 16) if value >= (1 << 15) else value


def _wrap32(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def _ins(opcode: str, *operands, words: int = 1, cycles: int = 1,
         comment: str = "") -> AsmInstr:
    return AsmInstr(opcode=opcode, operands=tuple(operands), words=words,
                    cycles=cycles, comment=comment)


class Risc16(TargetModel):
    """A 16-bit general-purpose RISC core (see module docstring)."""

    name = "risc16"
    word_bits = 16
    capabilities = TargetCapabilities(
        address_registers=4,
        max_post_modify=8,           # ADDI expands any stride anyway
        direct_addressing=True,
        memory_banks=(),
        parallel_slots=0,
        modes={},
        has_repeat=False,
        has_hardware_loop=False,
    )

    GENERAL_REGISTERS = ["R1", "R2", "R3", "R4", "R5", "R6"]
    STREAM_ADDRESS_REGISTERS = ["P0", "P1", "P2", "P3", "P4", "P5",
                                "P6", "P7"]
    LOOP_ADDRESS_REGISTERS = ["C0", "C1"]
    SPILL_CELLS = 8

    # ------------------------------------------------------------------
    # Grammar: three-address code over virtual registers
    # ------------------------------------------------------------------

    def _build_grammar(self) -> TreeGrammar:
        rules: List[Rule] = []
        add = rules.append

        add(Rule("mem", Term("ref"), Cost(0, 0),
                 emit=lambda ctx, args: args[0], name="mem-ref"))

        def fresh(ctx: EmitContext) -> Reg:
            counter = getattr(ctx, "_vreg_counter", 0)
            ctx._vreg_counter = counter + 1
            return Reg(f"v{counter}")

        def emit_lw(ctx, args):
            dest = fresh(ctx)
            ctx.emit(_ins("LW", dest, args[0]))
            return dest

        add(Rule("reg", Nt("mem"), Cost(1, 1), emit=emit_lw, name="LW"))

        def emit_li(ctx, args):
            dest = fresh(ctx)
            ctx.emit(_ins("LI", dest, Imm(args[0])))
            return dest

        add(Rule("reg", Term("const"), Cost(1, 1), emit=emit_li,
                 name="LI"))

        def three_address(opcode):
            def emit(ctx, args):
                dest = fresh(ctx)
                ctx.emit(_ins(opcode, dest, args[0], args[1]))
                return dest
            return emit

        for op_name, opcode in (("add", "ADD"), ("sub", "SUB"),
                                ("mul", "MUL"), ("and", "AND"),
                                ("or", "OR"), ("xor", "XOR"),
                                ("min", "MIN"), ("max", "MAX")):
            add(Rule("reg", Pat(op_name, (Nt("reg"), Nt("reg"))),
                     Cost(1, 1), emit=three_address(opcode),
                     name=opcode))

        def shift_imm(opcode):
            def emit(ctx, args):
                dest = fresh(ctx)
                ctx.emit(_ins(opcode, dest, args[0], Imm(args[1])))
                return dest
            return emit

        add(Rule("reg", Pat("shl", (Nt("reg"), Term("const"))),
                 Cost(1, 1), emit=shift_imm("SLLI"), name="SLLI"))
        add(Rule("reg", Pat("shr", (Nt("reg"), Term("const"))),
                 Cost(1, 1), emit=shift_imm("SRAI"), name="SRAI"))

        def two_address(opcode):
            def emit(ctx, args):
                dest = fresh(ctx)
                ctx.emit(_ins(opcode, dest, args[0]))
                return dest
            return emit

        for op_name, opcode in (("neg", "NEG"), ("not", "NOTR"),
                                ("abs", "ABSR"), ("sat", "SATR")):
            add(Rule("reg", Pat(op_name, (Nt("reg"),)), Cost(1, 1),
                     emit=two_address(opcode), name=opcode))

        def emit_addi(ctx, args):
            dest = fresh(ctx)
            ctx.emit(_ins("ADDI", dest, args[0], Imm(args[1])))
            return dest

        add(Rule("reg", Pat("add", (Nt("reg"), Term("const"))),
                 Cost(1, 1), emit=emit_addi, name="ADDI"))

        def emit_sw(ctx, args):
            ctx.emit(_ins("SW", args[1], args[0]))
            return None

        add(Rule("stmt", Pat("store", (Term("ref"), Nt("reg"))),
                 Cost(1, 1), emit=emit_sw, name="SW"))

        # Virtual registers are renamed apart, so nothing clobbers:
        # the allocator serializes the pressure instead.
        return TreeGrammar("risc16", rules,
                           nt_resources={"reg": None, "mem": None})

    # ------------------------------------------------------------------
    # Back-end hooks
    # ------------------------------------------------------------------

    def make_address_register_load(self, register: str,
                                   address: int) -> AsmInstr:
        return _ins("LI", Reg(register), Imm(address),
                    comment=f"point {register}")

    def make_pointer_bump(self, register: str, stride: int) -> AsmInstr:
        return _ins("ADDI", Reg(register), Reg(register), Imm(stride))

    def assign_addresses(self, code: CodeSeq, program, extra_scalars,
                         options) -> Tuple[CodeSeq, MemoryMap]:
        """Default addressing, then post-modify expansion (a RISC has no
        AGU) and register allocation -- done here so spill cells get
        real addresses from the same memory map."""
        from repro.codegen.addressing import AddressAssigner
        from repro.codegen.compiled import build_memory_map

        spill_names = [f"$spill{i}" for i in range(self.SPILL_CELLS)]
        memory_map = build_memory_map(
            program.symbols, list(extra_scalars) + spill_names)
        code = AddressAssigner(self, memory_map).run(code)
        code = self._expand_post_modify(code)
        spill_cells = [
            Mem(name, mode="direct",
                address=memory_map.address_of(name))
            for name in spill_names
        ]

        def spill_maker(cell, register, is_store):
            if is_store:
                return _ins("SW", register, cell, comment="spill")
            return _ins("LW", register, cell, comment="reload")

        code, _spills = allocate_registers(
            code, self.GENERAL_REGISTERS,
            spill_cells=spill_cells, spill_maker=spill_maker)
        return code, memory_map

    def _expand_post_modify(self, code: CodeSeq) -> CodeSeq:
        items: List = []
        for item in code:
            if not isinstance(item, AsmInstr):
                items.append(item)
                continue
            bumps: List[AsmInstr] = []

            def strip(operand: Mem) -> Mem:
                if operand.mode == "indirect" and operand.post_modify:
                    bumps.append(self.make_pointer_bump(
                        operand.areg, operand.post_modify))
                    return replace(operand, post_modify=0)
                return operand

            items.append(transform_instr_mems(item, strip))
            items.extend(bumps)
        return CodeSeq(items)

    def finalize_loop(self, count: int, body: List, loop_id: int,
                      depth: int) -> Tuple[List, List]:
        if depth >= len(self.LOOP_ADDRESS_REGISTERS):
            raise ValueError("risc16: loop nesting too deep")
        counter = self.LOOP_ADDRESS_REGISTERS[depth]
        label = f"L{loop_id}"
        prologue = [_ins("LI", Reg(counter), Imm(count)), Label(label)]
        epilogue = [
            _ins("ADDI", Reg(counter), Reg(counter), Imm(-1)),
            _ins("BNEZ", Reg(counter), LabelRef(label), cycles=2),
        ]
        return prologue, epilogue

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def initial_state(self) -> MachineState:
        regs: Dict[str, int] = {"R0": 0}
        for name in (self.GENERAL_REGISTERS
                     + self.STREAM_ADDRESS_REGISTERS
                     + self.LOOP_ADDRESS_REGISTERS):
            regs[name] = 0
        return MachineState(regs=regs, mem=[0] * 1024)

    def _address(self, state: MachineState, operand: Mem) -> int:
        if operand.mode == "direct":
            return operand.address
        if operand.mode == "indirect":
            return state.reg(operand.areg)
        raise SimulationError(f"unresolved operand {operand}")

    # -- instruction semantics (reference interpreter) ------------------

    _ALU_OPS = {
        "ADD": lambda a, b: a + b, "SUB": lambda a, b: a - b,
        "MUL": lambda a, b: a * b, "AND": lambda a, b: a & b,
        "OR": lambda a, b: a | b, "XOR": lambda a, b: a ^ b,
        "MIN": min, "MAX": max,
    }

    @semantics("LW")
    def _exec_lw(self, state: MachineState, instr: AsmInstr) -> None:
        dest, source = instr.operands
        state.regs[dest.name] = state.load(self._address(state, source))

    @semantics("SW")
    def _exec_sw(self, state: MachineState, instr: AsmInstr) -> None:
        value_reg, dest = instr.operands
        state.store(self._address(state, dest),
                    _wrap16(state.reg(value_reg.name)))

    @semantics("LI")
    def _exec_li(self, state: MachineState, instr: AsmInstr) -> None:
        dest, imm = instr.operands
        state.regs[dest.name] = imm.value

    @semantics("ADD", "SUB", "MUL", "AND", "OR", "XOR", "MIN", "MAX")
    def _exec_alu(self, state: MachineState, instr: AsmInstr) -> None:
        op = instr.opcode
        dest, left, right = instr.operands
        a, b = state.reg(left.name), state.reg(right.name)
        if op not in ("ADD", "SUB"):
            # multiplier / logic / compare ports are 16 bits wide
            a, b = _wrap16(a), _wrap16(b)
        state.regs[dest.name] = _wrap32(self._ALU_OPS[op](a, b))

    @semantics("ADDI")
    def _exec_addi(self, state: MachineState, instr: AsmInstr) -> None:
        dest, source, imm = instr.operands
        state.regs[dest.name] = _wrap32(
            state.reg(source.name) + imm.value)

    @semantics("SLLI", "SRAI")
    def _exec_shift_imm(self, state: MachineState,
                        instr: AsmInstr) -> None:
        dest, source, imm = instr.operands
        value = state.reg(source.name)
        state.regs[dest.name] = _wrap32(value << imm.value) \
            if instr.opcode == "SLLI" else (value >> imm.value)

    @semantics("NEG")
    def _exec_neg(self, state: MachineState, instr: AsmInstr) -> None:
        dest, source = instr.operands
        state.regs[dest.name] = _wrap32(-state.reg(source.name))

    @semantics("NOTR")
    def _exec_notr(self, state: MachineState, instr: AsmInstr) -> None:
        dest, source = instr.operands
        state.regs[dest.name] = ~_wrap16(state.reg(source.name))

    @semantics("ABSR")
    def _exec_absr(self, state: MachineState, instr: AsmInstr) -> None:
        dest, source = instr.operands
        state.regs[dest.name] = _wrap32(abs(state.reg(source.name)))

    @semantics("SATR")
    def _exec_satr(self, state: MachineState, instr: AsmInstr) -> None:
        dest, source = instr.operands
        state.regs[dest.name] = max(
            -(1 << 15), min((1 << 15) - 1, state.reg(source.name)))

    @semantics("BNEZ", branch=True)
    def _exec_bnez(self, state: MachineState,
                   instr: AsmInstr) -> Optional[str]:
        counter, label = instr.operands
        if state.reg(counter.name) != 0:
            return label.name
        return None

    @semantics("NOP")
    def _exec_nop(self, state: MachineState, instr: AsmInstr) -> None:
        pass

    # -- fast-simulator binders ----------------------------------------

    def _bind_address(self, operand: Mem):
        if operand.mode == "direct":
            address = operand.address
            return lambda state: address
        if operand.mode == "indirect":
            areg = operand.areg
            return lambda state: state.reg(areg)

        def unresolved(state: MachineState) -> int:
            raise SimulationError(f"unresolved operand {operand}")
        return unresolved

    @binder("LW")
    def _bind_lw(self, instr: AsmInstr):
        dest = instr.operands[0].name
        addr = self._bind_address(instr.operands[1])

        def step(state: MachineState) -> None:
            state.regs[dest] = state.load(addr(state))
        return step

    @binder("SW")
    def _bind_sw(self, instr: AsmInstr):
        source = instr.operands[0].name
        addr = self._bind_address(instr.operands[1])

        def step(state: MachineState) -> None:
            state.store(addr(state), _wrap16(state.reg(source)))
        return step

    @binder("LI")
    def _bind_li(self, instr: AsmInstr):
        dest = instr.operands[0].name
        value = instr.operands[1].value

        def step(state: MachineState) -> None:
            state.regs[dest] = value
        return step

    @binder("ADD", "SUB")
    def _bind_add_sub(self, instr: AsmInstr):
        dest, left, right = (operand.name for operand in instr.operands)
        if instr.opcode == "ADD":
            def step(state: MachineState) -> None:
                state.regs[dest] = _wrap32(
                    state.reg(left) + state.reg(right))
        else:
            def step(state: MachineState) -> None:
                state.regs[dest] = _wrap32(
                    state.reg(left) - state.reg(right))
        return step

    @binder("MUL", "AND", "OR", "XOR", "MIN", "MAX")
    def _bind_alu16(self, instr: AsmInstr):
        dest, left, right = (operand.name for operand in instr.operands)
        combine = self._ALU_OPS[instr.opcode]

        def step(state: MachineState) -> None:
            state.regs[dest] = _wrap32(
                combine(_wrap16(state.reg(left)),
                        _wrap16(state.reg(right))))
        return step

    @binder("ADDI")
    def _bind_addi(self, instr: AsmInstr):
        dest = instr.operands[0].name
        source = instr.operands[1].name
        value = instr.operands[2].value

        def step(state: MachineState) -> None:
            state.regs[dest] = _wrap32(state.reg(source) + value)
        return step

    @binder("SLLI", "SRAI")
    def _bind_shift_imm(self, instr: AsmInstr):
        dest = instr.operands[0].name
        source = instr.operands[1].name
        amount = instr.operands[2].value
        if instr.opcode == "SLLI":
            def step(state: MachineState) -> None:
                state.regs[dest] = _wrap32(state.reg(source) << amount)
        else:
            def step(state: MachineState) -> None:
                state.regs[dest] = state.reg(source) >> amount
        return step

    @binder("BNEZ")
    def _bind_bnez(self, instr: AsmInstr):
        counter = instr.operands[0].name
        label = instr.operands[1].name

        def step(state: MachineState) -> Optional[str]:
            if state.reg(counter) != 0:
                return label
            return None
        return step

    @binder("NOP")
    def _bind_nop(self, instr: AsmInstr):
        return lambda state: None

    # -- JIT source templates ------------------------------------------
    #
    # Post-modification is expanded into explicit ADDI during address
    # assignment, so (like the binders) these ignore it and use the
    # bare effective address.

    _ALU_EXPRS = {
        "MUL": "{a} * {b}", "AND": "{a} & {b}", "OR": "{a} | {b}",
        "XOR": "{a} ^ {b}", "MIN": "min({a}, {b})",
        "MAX": "max({a}, {b})",
    }

    @emitter("LW")
    def _emit_lw(self, instr: AsmInstr, ctx) -> bool:
        dest, source = instr.operands
        ctx.set_reg(dest.name, ctx.load(ctx.mem_addr(source)))
        return True

    @emitter("SW")
    def _emit_sw(self, instr: AsmInstr, ctx) -> bool:
        source, dest = instr.operands
        ctx.store(ctx.mem_addr(dest), ctx.wrap16(ctx.reg(source.name)))
        return True

    @emitter("LI")
    def _emit_li(self, instr: AsmInstr, ctx) -> bool:
        dest, imm = instr.operands
        ctx.set_reg(dest.name, repr(imm.value))
        return True

    @emitter("ADD", "SUB")
    def _emit_add_sub(self, instr: AsmInstr, ctx) -> bool:
        dest, left, right = (operand.name for operand in instr.operands)
        sign = "+" if instr.opcode == "ADD" else "-"
        ctx.set_reg(dest, ctx.wrap32(
            f"{ctx.reg(left)} {sign} {ctx.reg(right)}"))
        return True

    @emitter("MUL", "AND", "OR", "XOR", "MIN", "MAX")
    def _emit_alu16(self, instr: AsmInstr, ctx) -> bool:
        dest, left, right = (operand.name for operand in instr.operands)
        a = ctx.tmp()
        ctx.line(f"{a} = {ctx.wrap16(ctx.reg(left))}")
        b = ctx.tmp()
        ctx.line(f"{b} = {ctx.wrap16(ctx.reg(right))}")
        expr = self._ALU_EXPRS[instr.opcode].format(a=a, b=b)
        ctx.set_reg(dest, ctx.wrap32(expr))
        return True

    @emitter("ADDI")
    def _emit_addi(self, instr: AsmInstr, ctx) -> bool:
        dest = instr.operands[0].name
        source = ctx.reg(instr.operands[1].name)
        value = instr.operands[2].value
        ctx.set_reg(dest, ctx.wrap32(f"{source} + ({value})"))
        return True

    @emitter("SLLI", "SRAI")
    def _emit_shift_imm(self, instr: AsmInstr, ctx) -> bool:
        dest = instr.operands[0].name
        source = ctx.reg(instr.operands[1].name)
        amount = instr.operands[2].value
        if instr.opcode == "SLLI":
            ctx.set_reg(dest, ctx.wrap32(f"{source} << {amount}"))
        else:
            ctx.set_reg(dest, f"{source} >> {amount}")
        return True

    @emitter("NEG")
    def _emit_neg(self, instr: AsmInstr, ctx) -> bool:
        dest, source = instr.operands
        ctx.set_reg(dest.name, ctx.wrap32(f"-{ctx.reg(source.name)}"))
        return True

    @emitter("NOTR")
    def _emit_notr(self, instr: AsmInstr, ctx) -> bool:
        dest, source = instr.operands
        ctx.set_reg(dest.name, f"~{ctx.wrap16(ctx.reg(source.name))}")
        return True

    @emitter("ABSR")
    def _emit_absr(self, instr: AsmInstr, ctx) -> bool:
        dest, source = instr.operands
        ctx.set_reg(dest.name,
                    ctx.wrap32(f"abs({ctx.reg(source.name)})"))
        return True

    @emitter("SATR")
    def _emit_satr(self, instr: AsmInstr, ctx) -> bool:
        dest, source = instr.operands
        ctx.set_reg(dest.name,
                    f"max(-32768, min(32767, {ctx.reg(source.name)}))")
        return True

    @emitter("BNEZ")
    def _emit_bnez(self, instr: AsmInstr, ctx) -> bool:
        counter = instr.operands[0].name
        label = instr.operands[1].name
        ctx.jump_if(f"{ctx.reg(counter)} != 0", label)
        return True

    @emitter("NOP")
    def _emit_nop(self, instr: AsmInstr, ctx) -> bool:
        return True
