"""TC25: a TI TMS320C25-flavoured accumulator DSP.

This is the processor of the paper's Table 1.  The model follows the
TMS320C25 programmer's view:

- 16-bit data memory and T register; 32-bit accumulator ACC and product
  register P;
- one multiplier port: ``MPY`` multiplies T by a memory operand into P;
  ``PAC``/``APAC``/``SPAC`` move/add/subtract P into ACC, shifted by the
  product-shift mode ``pm`` (0 or 15 -- the fractional Q15 case);
- direct addressing for scalars, indirect addressing through address
  registers AR0..AR7 with free post-modification;
- ``RPTK`` hardware repeat of one instruction, ``BANZ`` loops otherwise;
- ``MAC``/``MACD``: repeatable multiply-accumulate with the coefficient
  operand streaming from a table in *program* memory (the classic C25
  FIR idiom), ``MACD`` additionally shifting the delay line (``DMOV``).

Documented deviations from the real silicon (see DESIGN.md):

- ``SATL`` saturates ACC to the 16-bit range in one instruction; the
  real C25 reaches saturation through the OVM status bit.  Our explicit
  instruction keeps ``sat()`` local to the expression tree.
- post-modification accepts any small constant stride; the real C25
  achieves strides > 1 through the AR0-index addressing mode ``*0+``.
- the data page pointer is ignored: direct addresses cover all of the
  (single-page-sized) data memory used by the kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, LoopBegin, Mem, Reg,
)
from repro.codegen.grammar import (
    Cost, EmitContext, Nt, Pat, Rule, Term, TreeGrammar,
)
from repro.ir.ops import OpKind
from repro.ir.trees import Tree
from repro.sim.machine import MachineState, SimulationError
from repro.targets.model import (
    TargetCapabilities, TargetModel, binder, emitter, semantics,
)

_MASK32 = (1 << 32) - 1
_MASK16 = (1 << 16) - 1


def _wrap32(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def _wrap16(value: int) -> int:
    value &= _MASK16
    return value - (1 << 16) if value >= (1 << 15) else value


def _ins(opcode: str, *operands, words: int = 1, cycles: int = 1,
         modes: Optional[Dict[str, int]] = None,
         comment: str = "") -> AsmInstr:
    return AsmInstr(opcode=opcode, operands=tuple(operands), words=words,
                    cycles=cycles, modes=modes or {}, comment=comment)


# ----------------------------------------------------------------------
# Immediate predicates
# ----------------------------------------------------------------------

def _is_u8(tree: Tree) -> bool:
    return 0 <= tree.value <= 255


def _is_s13(tree: Tree) -> bool:
    return -4096 <= tree.value <= 4095


def _is_zero(tree: Tree) -> bool:
    return tree.value == 0


def _shift_pred(amount: int):
    return lambda tree: tree.value == amount


def _dmov_guard(tree: Tree) -> bool:
    """store(dst_ref, src_ref) realizable as DMOV: same array, same
    stride, destination one element above the source."""
    dst, src = tree.children
    if dst.symbol != src.symbol:
        return False
    if dst.index is None or src.index is None:
        return False
    return (dst.index.coeff == src.index.coeff
            and dst.index.offset == src.index.offset + 1)


class TC25(TargetModel):
    """TI TMS320C25-flavoured accumulator DSP (see module docstring)."""

    name = "tc25"
    word_bits = 16
    capabilities = TargetCapabilities(
        address_registers=7,            # AR0..AR6 for streams; AR7 loops
        max_post_modify=8,
        direct_addressing=True,
        memory_banks=(),
        parallel_slots=0,
        modes={"pm": (0, 15)},
        has_repeat=True,
        has_hardware_loop=False,
    )

    # The eight ARs are split *per program*: loops claim AR7 (and AR6
    # for a second nesting level) only when the program actually nests
    # that deep; every remaining AR serves array streams -- see
    # stream_registers_for.
    STREAM_ADDRESS_REGISTERS = ["AR0", "AR1", "AR2", "AR3", "AR4", "AR5",
                                "AR6"]
    LOOP_ADDRESS_REGISTERS = ["AR7", "AR6"]

    def stream_registers_for(self, code: CodeSeq):
        """ARs available for streams, after reserving loop counters for
        the program's actual nesting depth (BANZ loops need one AR per
        level; hardware-repeat loops need none, but the RPTK decision
        is made later, so reservation is by marker depth)."""
        from repro.codegen.asm import LoopBegin, LoopEnd
        depth = max_depth = 0
        for item in code:
            if isinstance(item, LoopBegin):
                depth += 1
                max_depth = max(max_depth, depth)
            elif isinstance(item, LoopEnd):
                depth -= 1
        reserved = {self.LOOP_ADDRESS_REGISTERS[level]
                    for level in range(min(
                        max_depth, len(self.LOOP_ADDRESS_REGISTERS)))}
        return [f"AR{i}" for i in range(8) if f"AR{i}" not in reserved]

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------

    def _build_grammar(self) -> TreeGrammar:
        rules: List[Rule] = []
        add = rules.append

        # --- leaves -----------------------------------------------------
        def not_wide(tree: Tree) -> bool:
            return not (tree.symbol or "").startswith("$wide")

        add(Rule("mem", Term("ref", not_wide), Cost(0, 0),
                 emit=lambda ctx, args: args[0], name="mem-ref"))
        add(Rule("imm", Term("const"), Cost(0, 0),
                 emit=lambda ctx, args: args[0], name="imm-const"))

        # --- accumulator loads -------------------------------------------
        def emit_lac(ctx, args):
            ctx.emit(_ins("LAC", args[0]))
            return "acc"

        add(Rule("acc", Nt("mem"), Cost(1, 1), emit=emit_lac,
                 name="LAC", clobbers=frozenset({"acc"})))

        def emit_zac(ctx, args):
            ctx.emit(_ins("ZAC"))
            return "acc"

        add(Rule("acc", Term("const", _is_zero, "#0"), Cost(1, 1),
                 emit=emit_zac, name="ZAC", clobbers=frozenset({"acc"})))

        def emit_lack(ctx, args):
            ctx.emit(_ins("LACK", Imm(args[0])))
            return "acc"

        add(Rule("acc", Term("const", _is_u8, "#u8"), Cost(1, 1),
                 emit=emit_lack, name="LACK", clobbers=frozenset({"acc"})))

        def emit_lalk(ctx, args):
            ctx.emit(_ins("LALK", Imm(args[0]), words=2, cycles=2))
            return "acc"

        add(Rule("acc", Term("const"), Cost(2, 2), emit=emit_lalk,
                 name="LALK", clobbers=frozenset({"acc"})))

        # --- accumulator arithmetic with memory ---------------------------
        def binary_mem(opcode):
            def emit(ctx, args):
                ctx.emit(_ins(opcode, args[1]))
                return "acc"
            return emit

        for op_name, opcode in [("add", "ADD"), ("sub", "SUB"),
                                ("and", "AND"), ("or", "OR"),
                                ("xor", "XOR")]:
            add(Rule("acc", Pat(op_name, (Nt("acc"), Nt("mem"))),
                     Cost(1, 1), emit=binary_mem(opcode), name=opcode,
                     clobbers=frozenset({"acc"})))

        def binary_imm(opcode, words):
            def emit(ctx, args):
                ctx.emit(_ins(opcode, Imm(args[1]), words=words,
                              cycles=words))
                return "acc"
            return emit

        add(Rule("acc", Pat("add", (Nt("acc"), Term("const", _is_u8,
                                                    "#u8"))),
                 Cost(1, 1), emit=binary_imm("ADDK", 1), name="ADDK",
                 clobbers=frozenset({"acc"})))
        add(Rule("acc", Pat("sub", (Nt("acc"), Term("const", _is_u8,
                                                    "#u8"))),
                 Cost(1, 1), emit=binary_imm("SUBK", 1), name="SUBK",
                 clobbers=frozenset({"acc"})))
        add(Rule("acc", Pat("add", (Nt("acc"), Term("const"))),
                 Cost(2, 2), emit=binary_imm("ADLK", 2), name="ADLK",
                 clobbers=frozenset({"acc"})))
        add(Rule("acc", Pat("sub", (Nt("acc"), Term("const"))),
                 Cost(2, 2), emit=binary_imm("SBLK", 2), name="SBLK",
                 clobbers=frozenset({"acc"})))
        for op_name, opcode in [("and", "ANDK"), ("or", "ORK"),
                                ("xor", "XORK")]:
            add(Rule("acc", Pat(op_name, (Nt("acc"), Term("const"))),
                     Cost(2, 2), emit=binary_imm(opcode, 2), name=opcode,
                     clobbers=frozenset({"acc"})))

        # --- accumulator unaries -------------------------------------------
        def unary(opcode):
            def emit(ctx, args):
                ctx.emit(_ins(opcode))
                return "acc"
            return emit

        add(Rule("acc", Pat("neg", (Nt("acc"),)), Cost(1, 1),
                 emit=unary("NEG"), name="NEG",
                 clobbers=frozenset({"acc"})))
        add(Rule("acc", Pat("abs", (Nt("acc"),)), Cost(1, 1),
                 emit=unary("ABS"), name="ABS",
                 clobbers=frozenset({"acc"})))
        add(Rule("acc", Pat("not", (Nt("acc"),)), Cost(1, 1),
                 emit=unary("CMPL"), name="CMPL",
                 clobbers=frozenset({"acc"})))
        add(Rule("acc", Pat("sat", (Nt("acc"),)), Cost(1, 1),
                 emit=unary("SATL"), name="SATL",
                 clobbers=frozenset({"acc"})))

        # --- shifts --------------------------------------------------------
        # SFL/SFR shift ACC by one bit; k-bit shifts unroll (the C25 has
        # no accumulator barrel shifter).  Loads, however, pass through
        # the input shifter for free: LAC m,k loads with a left shift.
        def shifter(opcode, amount):
            def emit(ctx, args):
                for _ in range(amount):
                    ctx.emit(_ins(opcode))
                return "acc"
            return emit

        for amount in range(1, 16):
            add(Rule("acc", Pat("shl", (Nt("acc"),
                                        Term("const", _shift_pred(amount),
                                             f"#{amount}"))),
                     Cost(amount, amount), emit=shifter("SFL", amount),
                     name=f"SFLx{amount}", clobbers=frozenset({"acc"})))
            add(Rule("acc", Pat("shr", (Nt("acc"),
                                        Term("const", _shift_pred(amount),
                                             f"#{amount}"))),
                     Cost(amount, amount), emit=shifter("SFR", amount),
                     name=f"SFRx{amount}", clobbers=frozenset({"acc"})))

        def emit_lac_shifted(ctx, args):
            ctx.emit(_ins("LACS", args[0], Imm(args[1]),
                          comment="load with left shift"))
            return "acc"

        add(Rule("acc", Pat("shl", (Nt("mem"),
                                    Term("const",
                                         lambda t: 1 <= t.value <= 15,
                                         "#1..15"))),
                 Cost(1, 1), emit=emit_lac_shifted, name="LACS",
                 clobbers=frozenset({"acc"})))

        # --- multiplier ----------------------------------------------------
        def emit_lt(ctx, args):
            ctx.emit(_ins("LT", args[0]))
            return "t"

        add(Rule("treg", Nt("mem"), Cost(1, 1), emit=emit_lt, name="LT",
                 clobbers=frozenset({"t"})))

        def emit_mpy(ctx, args):
            ctx.emit(_ins("MPY", args[1]))
            return "p"

        add(Rule("preg", Pat("mul", (Nt("treg"), Nt("mem"))), Cost(1, 1),
                 emit=emit_mpy, name="MPY", clobbers=frozenset({"p"})))

        def emit_mpyk(ctx, args):
            ctx.emit(_ins("MPYK", Imm(args[1])))
            return "p"

        add(Rule("preg", Pat("mul", (Nt("treg"),
                                     Term("const", _is_s13, "#s13"))),
                 Cost(1, 1), emit=emit_mpyk, name="MPYK",
                 clobbers=frozenset({"p"})))

        # --- P-to-ACC transfers, integer (pm=0) and fractional (pm=15) ----
        def p_transfer(opcode, pm):
            def emit(ctx, args):
                ctx.emit(_ins(opcode, modes={"pm": pm}))
                return "acc"
            return emit

        for opcode, shape, pm in [
            ("PAC", Nt("preg"), 0),
            ("PAC", Pat("shr", (Nt("preg"),
                                Term("const", _shift_pred(15), "#15"))), 15),
        ]:
            add(Rule("acc", shape, Cost(1, 1),
                     emit=p_transfer(opcode, pm),
                     name=f"{opcode}/pm{pm}", clobbers=frozenset({"acc"})))

        for opcode, ir_op, pm_shape, pm in [
            ("APAC", "add", Nt("preg"), 0),
            ("SPAC", "sub", Nt("preg"), 0),
            ("APAC", "add", Pat("shr", (Nt("preg"),
                                        Term("const", _shift_pred(15),
                                             "#15"))), 15),
            ("SPAC", "sub", Pat("shr", (Nt("preg"),
                                        Term("const", _shift_pred(15),
                                             "#15"))), 15),
        ]:
            add(Rule("acc", Pat(ir_op, (Nt("acc"), pm_shape)), Cost(1, 1),
                     emit=p_transfer(opcode, pm),
                     name=f"{opcode}/pm{pm}", clobbers=frozenset({"acc"})))

        # --- stores ---------------------------------------------------------
        def emit_sacl(ctx, args):
            ctx.emit(_ins("SACL", args[0]))
            return None

        add(Rule("stmt", Pat("store", (Term("ref"), Nt("acc"))),
                 Cost(1, 1), emit=emit_sacl, name="SACL"))

        def emit_dmov(ctx, args):
            ctx.emit(_ins("DMOV", args[1]))
            return None

        add(Rule("stmt", Pat("store", (Term("ref"), Term("ref"))),
                 Cost(1, 1), emit=emit_dmov, name="DMOV",
                 guard=_dmov_guard))

        # --- double-width spills (32-bit values through 16-bit memory) ---
        def is_wide(tree: Tree) -> bool:
            return (tree.symbol or "").startswith("$wide")

        def emit_wide_store(ctx, args):
            slot = args[0]
            ctx.emit(_ins("SACH", Mem(f"{slot.symbol}.h"),
                          comment="wide spill, high"))
            ctx.emit(_ins("SACL", Mem(f"{slot.symbol}.l"),
                          comment="wide spill, low"))
            return None

        add(Rule("wstmt", Pat("store", (Term("ref"), Nt("acc"))),
                 Cost(2, 2), emit=emit_wide_store, name="SACH+SACL"))

        def emit_wide_reload(ctx, args):
            slot = args[0]
            ctx.emit(_ins("ZALH", Mem(f"{slot.symbol}.h"),
                          comment="wide reload, high"))
            ctx.emit(_ins("ADDS", Mem(f"{slot.symbol}.l"),
                          comment="wide reload, low (unsigned)"))
            return "acc"

        add(Rule("acc", Term("ref", is_wide, "$wide"), Cost(2, 2),
                 emit=emit_wide_reload, name="ZALH+ADDS",
                 clobbers=frozenset({"acc"})))

        return TreeGrammar(
            name="tc25",
            rules=rules,
            nt_resources={"acc": "acc", "treg": "t", "preg": "p",
                          "mem": None, "imm": None},
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def initial_state(self) -> MachineState:
        regs = {"acc": 0, "p": 0, "t": 0, "rptc": 0, "mac_idx": 0}
        for index in range(8):
            regs[f"AR{index}"] = 0
        state = MachineState(regs=regs, modes={"pm": 0})
        return state

    def mode_reset_values(self) -> Dict[str, int]:
        return {"pm": 0}

    def repeat_count(self, state: MachineState, instr: AsmInstr) -> int:
        state.regs["mac_idx"] = 0
        count = state.regs.get("rptc", 0)
        state.regs["rptc"] = 0
        return count + 1

    # -- operand helpers -------------------------------------------------

    def _address(self, state: MachineState, operand: Mem) -> int:
        if operand.mode == "direct":
            return operand.address
        if operand.mode == "indirect":
            return state.reg(operand.areg)
        raise SimulationError(
            f"unresolved memory operand {operand} (run address assignment)")

    def _read_mem(self, state: MachineState, operand: Mem) -> int:
        address = self._address(state, operand)
        value = state.load(address)
        self._post_modify(state, operand)
        return value

    def _write_mem(self, state: MachineState, operand: Mem,
                   value: int) -> int:
        address = self._address(state, operand)
        state.store(address, _wrap16(value))
        self._post_modify(state, operand)
        return address

    def _post_modify(self, state: MachineState, operand: Mem) -> None:
        if operand.mode == "indirect" and operand.post_modify:
            state.set_reg(operand.areg,
                          state.reg(operand.areg) + operand.post_modify)

    # -- instruction semantics ---------------------------------------------
    #
    # One @semantics handler per opcode group; the base TargetModel
    # dispatches on the registry, so this *is* the reference
    # interpreter.  The @binder methods further down are the fast
    # simulator's decode-time specializations of the same semantics.

    @semantics("ZAC")
    def _exec_zac(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["acc"] = 0

    @semantics("LAC")
    def _exec_lac(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["acc"] = self._read_mem(state, instr.operands[0])

    @semantics("LACS")
    def _exec_lacs(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["acc"] = _wrap32(
            self._read_mem(state, instr.operands[0])
            << instr.operands[1].value)

    @semantics("LACK", "LALK")
    def _exec_load_imm(self, state: MachineState,
                       instr: AsmInstr) -> None:
        state.regs["acc"] = instr.operands[0].value

    @semantics("ADD")
    def _exec_add(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(regs["acc"]
                              + self._read_mem(state, instr.operands[0]))

    @semantics("SUB")
    def _exec_sub(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(regs["acc"]
                              - self._read_mem(state, instr.operands[0]))

    @semantics("ADDK", "ADLK")
    def _exec_add_imm(self, state: MachineState,
                      instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(regs["acc"] + instr.operands[0].value)

    @semantics("SUBK", "SBLK")
    def _exec_sub_imm(self, state: MachineState,
                      instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(regs["acc"] - instr.operands[0].value)

    @semantics("ANDK")
    def _exec_andk(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap16(regs["acc"]) & instr.operands[0].value

    @semantics("ORK")
    def _exec_ork(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap16(regs["acc"]) | instr.operands[0].value

    @semantics("XORK")
    def _exec_xork(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap16(regs["acc"]) ^ instr.operands[0].value

    @semantics("AND")
    def _exec_and(self, state: MachineState, instr: AsmInstr) -> None:
        # The C25 logic unit is 16 bits wide: the accumulator passes
        # through it at word width (see FixedPointContext semantics).
        regs = state.regs
        regs["acc"] = _wrap16(regs["acc"]) \
            & self._read_mem(state, instr.operands[0])

    @semantics("OR")
    def _exec_or(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap16(regs["acc"]) \
            | self._read_mem(state, instr.operands[0])

    @semantics("XOR")
    def _exec_xor(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap16(regs["acc"]) \
            ^ self._read_mem(state, instr.operands[0])

    @semantics("CMPL")
    def _exec_cmpl(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = ~_wrap16(regs["acc"])

    @semantics("NEG")
    def _exec_neg(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(-regs["acc"])

    @semantics("ABS")
    def _exec_abs(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(abs(regs["acc"]))

    @semantics("SATL")
    def _exec_satl(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = max(-(1 << 15), min((1 << 15) - 1, regs["acc"]))

    @semantics("SFL")
    def _exec_sfl(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(regs["acc"] << 1)

    @semantics("SFR")
    def _exec_sfr(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["acc"] >>= 1

    @semantics("SACL")
    def _exec_sacl(self, state: MachineState, instr: AsmInstr) -> None:
        self._write_mem(state, instr.operands[0], state.regs["acc"])

    @semantics("SACH")
    def _exec_sach(self, state: MachineState, instr: AsmInstr) -> None:
        self._write_mem(state, instr.operands[0],
                        state.regs["acc"] >> 16)

    @semantics("ZALH")
    def _exec_zalh(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["acc"] = _wrap32(
            self._read_mem(state, instr.operands[0]) << 16)

    @semantics("ADDS")
    def _exec_adds(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(
            regs["acc"]
            + (self._read_mem(state, instr.operands[0]) & 0xFFFF))

    @semantics("DMOV")
    def _exec_dmov(self, state: MachineState, instr: AsmInstr) -> None:
        operand = instr.operands[0]
        address = self._address(state, operand)
        state.store(address + 1, state.load(address))
        self._post_modify(state, operand)

    @semantics("LT")
    def _exec_lt(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["t"] = self._read_mem(state, instr.operands[0])

    @semantics("MPY")
    def _exec_mpy(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["p"] = _wrap32(regs["t"]
                            * self._read_mem(state, instr.operands[0]))

    @semantics("MPYK")
    def _exec_mpyk(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["p"] = _wrap32(regs["t"] * instr.operands[0].value)

    @semantics("PAC")
    def _exec_pac(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = regs["p"] >> state.modes.get("pm", 0)

    @semantics("APAC")
    def _exec_apac(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(
            regs["acc"] + (regs["p"] >> state.modes.get("pm", 0)))

    @semantics("SPAC")
    def _exec_spac(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(
            regs["acc"] - (regs["p"] >> state.modes.get("pm", 0)))

    @semantics("SPM")
    def _exec_spm(self, state: MachineState, instr: AsmInstr) -> None:
        state.modes["pm"] = instr.operands[0].value

    @semantics("LARK", "LRLK")
    def _exec_load_ar(self, state: MachineState,
                      instr: AsmInstr) -> None:
        state.regs[instr.operands[0].name] = instr.operands[1].value

    @semantics("LAR")
    def _exec_lar(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs[instr.operands[0].name] = self._read_mem(
            state, instr.operands[1])

    @semantics("SAR")
    def _exec_sar(self, state: MachineState, instr: AsmInstr) -> None:
        self._write_mem(state, instr.operands[1],
                        state.regs[instr.operands[0].name])

    @semantics("RPTK")
    def _exec_rptk(self, state: MachineState, instr: AsmInstr) -> None:
        state.regs["rptc"] = instr.operands[0].value

    @semantics("MAC", "MACD")
    def _exec_mac(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        table = instr.operands[0]
        data_operand = instr.operands[1]
        address = self._address(state, data_operand)
        data = state.load(address)
        if instr.opcode == "MACD":
            state.store(address + 1, data)
        self._post_modify(state, data_operand)
        coefficient = self._pmem_value(state, table.name,
                                       regs["mac_idx"])
        regs["mac_idx"] += 1
        regs["acc"] = _wrap32(
            regs["acc"] + (regs["p"] >> state.modes.get("pm", 0)))
        regs["p"] = _wrap32(coefficient * data)

    @semantics("LTA")
    def _exec_lta(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(
            regs["acc"] + (regs["p"] >> state.modes.get("pm", 0)))
        regs["t"] = self._read_mem(state, instr.operands[0])

    @semantics("LTS")
    def _exec_lts(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(
            regs["acc"] - (regs["p"] >> state.modes.get("pm", 0)))
        regs["t"] = self._read_mem(state, instr.operands[0])

    @semantics("LTP")
    def _exec_ltp(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = regs["p"] >> state.modes.get("pm", 0)
        regs["t"] = self._read_mem(state, instr.operands[0])

    @semantics("LTD")
    def _exec_ltd(self, state: MachineState, instr: AsmInstr) -> None:
        regs = state.regs
        regs["acc"] = _wrap32(
            regs["acc"] + (regs["p"] >> state.modes.get("pm", 0)))
        operand = instr.operands[0]
        address = self._address(state, operand)
        data = state.load(address)
        regs["t"] = data
        state.store(address + 1, data)
        self._post_modify(state, operand)

    @semantics("B", branch=True)
    def _exec_b(self, state: MachineState, instr: AsmInstr) -> str:
        return instr.operands[0].name

    @semantics("BANZ", branch=True)
    def _exec_banz(self, state: MachineState,
                   instr: AsmInstr) -> Optional[str]:
        regs = state.regs
        label = instr.operands[0]
        areg = instr.operands[1].name
        taken = regs[areg] != 0
        regs[areg] = _wrap16(regs[areg] - 1)
        if taken:
            return label.name
        return None

    @semantics("MAR")
    def _exec_mar(self, state: MachineState, instr: AsmInstr) -> None:
        self._post_modify(state, instr.operands[0])

    @semantics("NOP")
    def _exec_nop(self, state: MachineState, instr: AsmInstr) -> None:
        pass

    def _pmem_value(self, state: MachineState, table: str,
                    index: int) -> int:
        if table not in state.pmem_tables:
            raise SimulationError(
                f"program-memory table {table!r} not loaded")
        values = state.pmem_tables[table]
        if not 0 <= index < len(values):
            raise SimulationError(
                f"MAC read past end of table {table!r} (index {index})")
        return values[index]

    # ------------------------------------------------------------------
    # Fast-simulator decode hooks and binders
    # ------------------------------------------------------------------
    #
    # RPTK is the *only* writer of the repeat counter and its count is an
    # immediate, so the decoder fuses ``RPTK n ; X`` into one step that
    # runs X's bound closure n+1 times -- cycles and step budget are
    # static.  The per-dispatch ``mac_idx`` reset the reference
    # interpreter performs in :meth:`repeat_count` only matters to
    # MAC/MACD (the sole readers), hence :meth:`pre_dispatch`.

    def static_repeat(self, instr: AsmInstr) -> Optional[int]:
        if instr.opcode == "RPTK":
            return instr.operands[0].value + 1
        return None

    def pre_dispatch(self, instr: AsmInstr):
        if instr.opcode in ("MAC", "MACD"):
            def reset(state: MachineState) -> None:
                state.regs["mac_idx"] = 0
            return reset
        return None

    # -- operand specializers ------------------------------------------

    def _bind_mem_address(self, operand: Mem):
        """addr(state) -> effective address, no post-modify."""
        if operand.mode == "direct":
            address = operand.address
            return lambda state: address
        if operand.mode == "indirect":
            areg = operand.areg
            return lambda state: state.reg(areg)

        def unresolved(state: MachineState) -> int:
            raise SimulationError(
                f"unresolved memory operand {operand} "
                "(run address assignment)")
        return unresolved

    def _bind_mem_read(self, operand: Mem):
        """read(state) -> value, post-modify applied (ref: _read_mem)."""
        if operand.mode == "direct":
            address = operand.address
            return lambda state: state.load(address)
        if operand.mode == "indirect":
            areg = operand.areg
            bump = operand.post_modify
            if bump:
                def read(state: MachineState) -> int:
                    address = state.reg(areg)
                    value = state.load(address)
                    state.regs[areg] = address + bump
                    return value
                return read
            return lambda state: state.load(state.reg(areg))

        def unresolved(state: MachineState) -> int:
            raise SimulationError(
                f"unresolved memory operand {operand} "
                "(run address assignment)")
        return unresolved

    def _bind_mem_write(self, operand: Mem):
        """write(state, value), 16-bit wrap + post-modify (_write_mem)."""
        if operand.mode == "direct":
            address = operand.address

            def write(state: MachineState, value: int) -> None:
                state.store(address, _wrap16(value))
            return write
        if operand.mode == "indirect":
            areg = operand.areg
            bump = operand.post_modify
            if bump:
                def write(state: MachineState, value: int) -> None:
                    address = state.reg(areg)
                    state.store(address, _wrap16(value))
                    state.regs[areg] = address + bump
                return write

            def write(state: MachineState, value: int) -> None:
                state.store(state.reg(areg), _wrap16(value))
            return write

        def unresolved(state: MachineState, value: int) -> None:
            raise SimulationError(
                f"unresolved memory operand {operand} "
                "(run address assignment)")
        return unresolved

    # -- instruction binders -------------------------------------------

    @binder("ZAC")
    def _bind_zac(self, instr: AsmInstr):
        def step(state: MachineState) -> None:
            state.regs["acc"] = 0
        return step

    @binder("LACK", "LALK")
    def _bind_load_imm(self, instr: AsmInstr):
        value = instr.operands[0].value

        def step(state: MachineState) -> None:
            state.regs["acc"] = value
        return step

    @binder("LAC")
    def _bind_lac(self, instr: AsmInstr):
        read = self._bind_mem_read(instr.operands[0])

        def step(state: MachineState) -> None:
            state.regs["acc"] = read(state)
        return step

    @binder("LACS")
    def _bind_lacs(self, instr: AsmInstr):
        read = self._bind_mem_read(instr.operands[0])
        shift = instr.operands[1].value

        def step(state: MachineState) -> None:
            state.regs["acc"] = _wrap32(read(state) << shift)
        return step

    @binder("ADD", "SUB")
    def _bind_add_sub(self, instr: AsmInstr):
        read = self._bind_mem_read(instr.operands[0])
        if instr.opcode == "ADD":
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = _wrap32(regs["acc"] + read(state))
        else:
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = _wrap32(regs["acc"] - read(state))
        return step

    @binder("ADDK", "ADLK", "SUBK", "SBLK")
    def _bind_add_sub_imm(self, instr: AsmInstr):
        value = instr.operands[0].value
        if instr.opcode in ("SUBK", "SBLK"):
            value = -value

        def step(state: MachineState) -> None:
            regs = state.regs
            regs["acc"] = _wrap32(regs["acc"] + value)
        return step

    @binder("SACL", "SACH")
    def _bind_store_acc(self, instr: AsmInstr):
        write = self._bind_mem_write(instr.operands[0])
        if instr.opcode == "SACL":
            def step(state: MachineState) -> None:
                write(state, state.regs["acc"])
        else:
            def step(state: MachineState) -> None:
                write(state, state.regs["acc"] >> 16)
        return step

    @binder("ZALH")
    def _bind_zalh(self, instr: AsmInstr):
        read = self._bind_mem_read(instr.operands[0])

        def step(state: MachineState) -> None:
            state.regs["acc"] = _wrap32(read(state) << 16)
        return step

    @binder("ADDS")
    def _bind_adds(self, instr: AsmInstr):
        read = self._bind_mem_read(instr.operands[0])

        def step(state: MachineState) -> None:
            regs = state.regs
            regs["acc"] = _wrap32(regs["acc"] + (read(state) & 0xFFFF))
        return step

    @binder("SFL", "SFR")
    def _bind_shift(self, instr: AsmInstr):
        if instr.opcode == "SFL":
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = _wrap32(regs["acc"] << 1)
        else:
            def step(state: MachineState) -> None:
                state.regs["acc"] >>= 1
        return step

    @binder("DMOV")
    def _bind_dmov(self, instr: AsmInstr):
        operand = instr.operands[0]
        addr = self._bind_mem_address(operand)
        bump = (operand.post_modify
                if operand.mode == "indirect" else 0)
        areg = operand.areg

        def step(state: MachineState) -> None:
            address = addr(state)
            state.store(address + 1, state.load(address))
            if bump:
                state.regs[areg] = address + bump
        return step

    @binder("LT")
    def _bind_lt(self, instr: AsmInstr):
        read = self._bind_mem_read(instr.operands[0])

        def step(state: MachineState) -> None:
            state.regs["t"] = read(state)
        return step

    @binder("MPY")
    def _bind_mpy(self, instr: AsmInstr):
        read = self._bind_mem_read(instr.operands[0])

        def step(state: MachineState) -> None:
            regs = state.regs
            regs["p"] = _wrap32(regs["t"] * read(state))
        return step

    @binder("MPYK")
    def _bind_mpyk(self, instr: AsmInstr):
        value = instr.operands[0].value

        def step(state: MachineState) -> None:
            regs = state.regs
            regs["p"] = _wrap32(regs["t"] * value)
        return step

    @binder("PAC", "APAC", "SPAC")
    def _bind_p_transfer(self, instr: AsmInstr):
        op = instr.opcode
        if op == "PAC":
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = regs["p"] >> state.modes.get("pm", 0)
        elif op == "APAC":
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = _wrap32(
                    regs["acc"]
                    + (regs["p"] >> state.modes.get("pm", 0)))
        else:
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = _wrap32(
                    regs["acc"]
                    - (regs["p"] >> state.modes.get("pm", 0)))
        return step

    @binder("LTA", "LTS", "LTP")
    def _bind_lt_combo(self, instr: AsmInstr):
        read = self._bind_mem_read(instr.operands[0])
        op = instr.opcode
        if op == "LTA":
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = _wrap32(
                    regs["acc"]
                    + (regs["p"] >> state.modes.get("pm", 0)))
                regs["t"] = read(state)
        elif op == "LTS":
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = _wrap32(
                    regs["acc"]
                    - (regs["p"] >> state.modes.get("pm", 0)))
                regs["t"] = read(state)
        else:
            def step(state: MachineState) -> None:
                regs = state.regs
                regs["acc"] = regs["p"] >> state.modes.get("pm", 0)
                regs["t"] = read(state)
        return step

    @binder("LTD")
    def _bind_ltd(self, instr: AsmInstr):
        operand = instr.operands[0]
        addr = self._bind_mem_address(operand)
        bump = (operand.post_modify
                if operand.mode == "indirect" else 0)
        areg = operand.areg

        def step(state: MachineState) -> None:
            regs = state.regs
            regs["acc"] = _wrap32(
                regs["acc"] + (regs["p"] >> state.modes.get("pm", 0)))
            address = addr(state)
            data = state.load(address)
            regs["t"] = data
            state.store(address + 1, data)
            if bump:
                regs[areg] = address + bump
        return step

    @binder("MAC", "MACD")
    def _bind_mac(self, instr: AsmInstr):
        table = instr.operands[0].name
        operand = instr.operands[1]
        addr = self._bind_mem_address(operand)
        bump = (operand.post_modify
                if operand.mode == "indirect" else 0)
        areg = operand.areg
        shift_delay = instr.opcode == "MACD"

        def step(state: MachineState) -> None:
            regs = state.regs
            address = addr(state)
            data = state.load(address)
            if shift_delay:
                state.store(address + 1, data)
            if bump:
                regs[areg] = address + bump
            values = state.pmem_tables.get(table)
            if values is None:
                raise SimulationError(
                    f"program-memory table {table!r} not loaded")
            index = regs["mac_idx"]
            if not 0 <= index < len(values):
                raise SimulationError(
                    f"MAC read past end of table {table!r} "
                    f"(index {index})")
            regs["mac_idx"] = index + 1
            regs["acc"] = _wrap32(
                regs["acc"] + (regs["p"] >> state.modes.get("pm", 0)))
            regs["p"] = _wrap32(values[index] * data)
        return step

    @binder("SPM")
    def _bind_spm(self, instr: AsmInstr):
        value = instr.operands[0].value

        def step(state: MachineState) -> None:
            state.modes["pm"] = value
        return step

    @binder("LARK", "LRLK")
    def _bind_load_ar(self, instr: AsmInstr):
        name = instr.operands[0].name
        value = instr.operands[1].value

        def step(state: MachineState) -> None:
            state.regs[name] = value
        return step

    @binder("LAR")
    def _bind_lar(self, instr: AsmInstr):
        name = instr.operands[0].name
        read = self._bind_mem_read(instr.operands[1])

        def step(state: MachineState) -> None:
            state.regs[name] = read(state)
        return step

    @binder("SAR")
    def _bind_sar(self, instr: AsmInstr):
        name = instr.operands[0].name
        write = self._bind_mem_write(instr.operands[1])

        def step(state: MachineState) -> None:
            write(state, state.regs[name])
        return step

    @binder("MAR")
    def _bind_mar(self, instr: AsmInstr):
        operand = instr.operands[0]
        if operand.mode == "indirect" and operand.post_modify:
            areg = operand.areg
            bump = operand.post_modify

            def step(state: MachineState) -> None:
                state.regs[areg] = state.reg(areg) + bump
            return step

        def step(state: MachineState) -> None:
            pass
        return step

    @binder("B")
    def _bind_b(self, instr: AsmInstr):
        label = instr.operands[0].name
        return lambda state: label

    @binder("BANZ")
    def _bind_banz(self, instr: AsmInstr):
        label = instr.operands[0].name
        areg = instr.operands[1].name

        def step(state: MachineState) -> Optional[str]:
            regs = state.regs
            value = regs[areg]
            regs[areg] = _wrap16(value - 1)
            if value != 0:
                return label
            return None
        return step

    @binder("NOP")
    def _bind_nop(self, instr: AsmInstr):
        return lambda state: None

    # ------------------------------------------------------------------
    # JIT source templates (the @emitter registry)
    # ------------------------------------------------------------------
    #
    # One template per opcode group, mirroring the @semantics handlers
    # above statement for statement: the JIT tier (repro.sim.jit) calls
    # these to append specialized source with operands folded into
    # literals and registers held in locals.  A template that cannot
    # express an operand shape raises or returns False and the JIT
    # degrades (closure call / decoded block / reference interpreter)
    # without changing results.

    def emit_pre_py(self, instr: AsmInstr, ctx) -> bool:
        # Mirrors pre_dispatch: MAC/MACD reset the coefficient stream.
        if instr.opcode in ("MAC", "MACD"):
            ctx.set_reg("mac_idx", "0")
        return True

    @emitter("ZAC")
    def _emit_zac(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("acc", "0")
        return True

    @emitter("LACK", "LALK")
    def _emit_load_imm(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("acc", repr(instr.operands[0].value))
        return True

    @emitter("LAC")
    def _emit_lac(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("acc", ctx.read_mem(instr.operands[0]))
        return True

    @emitter("LACS")
    def _emit_lacs(self, instr: AsmInstr, ctx) -> bool:
        value = ctx.read_mem(instr.operands[0])
        shift = instr.operands[1].value
        ctx.set_reg("acc", ctx.wrap32(f"({value}) << {shift}"))
        return True

    @emitter("ADD", "SUB")
    def _emit_add_sub(self, instr: AsmInstr, ctx) -> bool:
        value = ctx.read_mem(instr.operands[0])
        sign = "+" if instr.opcode == "ADD" else "-"
        acc = ctx.reg("acc")
        ctx.set_reg("acc", ctx.wrap32(f"{acc} {sign} ({value})"))
        return True

    @emitter("ADDK", "ADLK", "SUBK", "SBLK")
    def _emit_add_sub_imm(self, instr: AsmInstr, ctx) -> bool:
        sign = "+" if instr.opcode in ("ADDK", "ADLK") else "-"
        acc = ctx.reg("acc")
        ctx.set_reg("acc", ctx.wrap32(
            f"{acc} {sign} ({instr.operands[0].value})"))
        return True

    @emitter("ANDK", "ORK", "XORK")
    def _emit_logic_imm(self, instr: AsmInstr, ctx) -> bool:
        op = {"ANDK": "&", "ORK": "|", "XORK": "^"}[instr.opcode]
        acc = ctx.reg("acc")
        ctx.set_reg("acc", f"{ctx.wrap16(acc)} {op} "
                           f"({instr.operands[0].value})")
        return True

    @emitter("AND", "OR", "XOR")
    def _emit_logic(self, instr: AsmInstr, ctx) -> bool:
        op = {"AND": "&", "OR": "|", "XOR": "^"}[instr.opcode]
        acc16 = ctx.wrap16(ctx.reg("acc"))
        value = ctx.read_mem(instr.operands[0])
        ctx.set_reg("acc", f"{acc16} {op} ({value})")
        return True

    @emitter("CMPL")
    def _emit_cmpl(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("acc", f"~{ctx.wrap16(ctx.reg('acc'))}")
        return True

    @emitter("NEG")
    def _emit_neg(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("acc", ctx.wrap32(f"-{ctx.reg('acc')}"))
        return True

    @emitter("ABS")
    def _emit_abs(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("acc", ctx.wrap32(f"abs({ctx.reg('acc')})"))
        return True

    @emitter("SATL")
    def _emit_satl(self, instr: AsmInstr, ctx) -> bool:
        acc = ctx.reg("acc")
        ctx.set_reg("acc", f"max(-32768, min(32767, {acc}))")
        return True

    @emitter("SFL")
    def _emit_sfl(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("acc", ctx.wrap32(f"{ctx.reg('acc')} << 1"))
        return True

    @emitter("SFR")
    def _emit_sfr(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("acc", f"{ctx.reg('acc')} >> 1")
        return True

    @emitter("SACL")
    def _emit_sacl(self, instr: AsmInstr, ctx) -> bool:
        ctx.write_mem(instr.operands[0], ctx.reg("acc"))
        return True

    @emitter("SACH")
    def _emit_sach(self, instr: AsmInstr, ctx) -> bool:
        ctx.write_mem(instr.operands[0], f"{ctx.reg('acc')} >> 16")
        return True

    @emitter("ZALH")
    def _emit_zalh(self, instr: AsmInstr, ctx) -> bool:
        value = ctx.read_mem(instr.operands[0])
        ctx.set_reg("acc", ctx.wrap32(f"({value}) << 16"))
        return True

    @emitter("ADDS")
    def _emit_adds(self, instr: AsmInstr, ctx) -> bool:
        value = ctx.read_mem(instr.operands[0])
        acc = ctx.reg("acc")
        ctx.set_reg("acc", ctx.wrap32(f"{acc} + (({value}) & 0xFFFF)"))
        return True

    def _emit_delay_store(self, ctx, operand, addr) -> str:
        """Shared DMOV/MACD/LTD tail: load ``addr``, store the raw
        value (no wrap) one cell up, return the loaded temp."""
        data = ctx.tmp()
        ctx.line(f"{data} = {ctx.load(addr)}")
        if isinstance(addr, int):
            dest = addr + 1
        else:
            dest = ctx.tmp()
            ctx.line(f"{dest} = {addr} + 1")
        ctx.store(dest, data)
        return data

    @emitter("DMOV")
    def _emit_dmov(self, instr: AsmInstr, ctx) -> bool:
        operand = instr.operands[0]
        addr = ctx.mem_addr(operand)
        self._emit_delay_store(ctx, operand, addr)
        ctx.post_bump(operand, addr)
        return True

    @emitter("LT")
    def _emit_lt(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg("t", ctx.read_mem(instr.operands[0]))
        return True

    @emitter("MPY")
    def _emit_mpy(self, instr: AsmInstr, ctx) -> bool:
        t = ctx.reg("t")
        value = ctx.read_mem(instr.operands[0])
        ctx.set_reg("p", ctx.wrap32(f"{t} * ({value})"))
        return True

    @emitter("MPYK")
    def _emit_mpyk(self, instr: AsmInstr, ctx) -> bool:
        t = ctx.reg("t")
        ctx.set_reg("p", ctx.wrap32(
            f"{t} * ({instr.operands[0].value})"))
        return True

    @emitter("PAC", "APAC", "SPAC")
    def _emit_pac_group(self, instr: AsmInstr, ctx) -> bool:
        p = ctx.reg("p")
        pm = ctx.mode("pm")
        if instr.opcode == "PAC":
            ctx.set_reg("acc", f"{p} >> {pm}")
        else:
            sign = "+" if instr.opcode == "APAC" else "-"
            acc = ctx.reg("acc")
            ctx.set_reg("acc", ctx.wrap32(
                f"{acc} {sign} ({p} >> {pm})"))
        return True

    @emitter("SPM")
    def _emit_spm(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_mode("pm", repr(instr.operands[0].value))
        return True

    @emitter("LARK", "LRLK")
    def _emit_load_ar(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg(instr.operands[0].name,
                    repr(instr.operands[1].value))
        return True

    @emitter("LAR")
    def _emit_lar(self, instr: AsmInstr, ctx) -> bool:
        ctx.set_reg(instr.operands[0].name,
                    ctx.read_mem(instr.operands[1]))
        return True

    @emitter("SAR")
    def _emit_sar(self, instr: AsmInstr, ctx) -> bool:
        ctx.write_mem(instr.operands[1],
                      ctx.reg(instr.operands[0].name))
        return True

    @emitter("MAC", "MACD")
    def _emit_mac(self, instr: AsmInstr, ctx) -> bool:
        table = instr.operands[0].name
        operand = instr.operands[1]
        tbl, tbl_len = ctx.pmem_table(table)
        ctx.helper("_mac_oob", (
            "def _mac_oob(n, i):\n"
            "    raise SimulationError(\n"
            "        f\"MAC read past end of table {n!r} "
            "(index {i})\")"))
        addr = ctx.mem_addr(operand)
        if instr.opcode == "MACD":
            data = self._emit_delay_store(ctx, operand, addr)
        else:
            data = ctx.tmp()
            ctx.line(f"{data} = {ctx.load(addr)}")
        ctx.post_bump(operand, addr)
        idx = ctx.tmp()
        ctx.line(f"{idx} = {ctx.reg('mac_idx')}")
        ctx.line(f"if not 0 <= {idx} < {tbl_len}:")
        with ctx.indented():
            ctx.line(f"_mac_oob({table!r}, {idx})")
        ctx.set_reg("mac_idx", f"{idx} + 1")
        acc = ctx.reg("acc")
        p = ctx.reg("p")
        pm = ctx.mode("pm")
        ctx.set_reg("acc", ctx.wrap32(f"{acc} + ({p} >> {pm})"))
        ctx.set_reg("p", ctx.wrap32(f"{tbl}[{idx}] * {data}"))
        return True

    @emitter("LTA", "LTS", "LTP")
    def _emit_lt_combo(self, instr: AsmInstr, ctx) -> bool:
        p = ctx.reg("p")
        pm = ctx.mode("pm")
        if instr.opcode == "LTP":
            ctx.set_reg("acc", f"{p} >> {pm}")
        else:
            sign = "+" if instr.opcode == "LTA" else "-"
            acc = ctx.reg("acc")
            ctx.set_reg("acc", ctx.wrap32(
                f"{acc} {sign} ({p} >> {pm})"))
        ctx.set_reg("t", ctx.read_mem(instr.operands[0]))
        return True

    @emitter("LTD")
    def _emit_ltd(self, instr: AsmInstr, ctx) -> bool:
        acc = ctx.reg("acc")
        p = ctx.reg("p")
        pm = ctx.mode("pm")
        ctx.set_reg("acc", ctx.wrap32(f"{acc} + ({p} >> {pm})"))
        operand = instr.operands[0]
        addr = ctx.mem_addr(operand)
        data = self._emit_delay_store(ctx, operand, addr)
        ctx.set_reg("t", data)
        ctx.post_bump(operand, addr)
        return True

    @emitter("B")
    def _emit_b(self, instr: AsmInstr, ctx) -> bool:
        ctx.jump(instr.operands[0].name)
        return True

    @emitter("BANZ")
    def _emit_banz(self, instr: AsmInstr, ctx) -> bool:
        label = instr.operands[0].name
        areg = instr.operands[1].name
        value = ctx.tmp()
        ctx.line(f"{value} = {ctx.reg(areg)}")
        ctx.set_reg(areg, ctx.wrap16(f"{value} - 1"))
        ctx.jump_if(f"{value} != 0", label)
        return True

    @emitter("MAR")
    def _emit_mar(self, instr: AsmInstr, ctx) -> bool:
        operand = instr.operands[0]
        ctx.post_bump(operand, ctx.mem_addr(operand))
        return True

    @emitter("NOP")
    def _emit_nop(self, instr: AsmInstr, ctx) -> bool:
        return True

    # ------------------------------------------------------------------
    # Loop realization
    # ------------------------------------------------------------------

    REPEATABLE = frozenset({
        "MAC", "MACD", "DMOV", "ADD", "SUB", "SACL", "LAC", "SFL", "SFR",
        "NOP",
    })

    def is_repeatable(self, instr: AsmInstr) -> bool:
        """Whether RPTK may repeat this instruction."""
        return instr.opcode in self.REPEATABLE and instr.words <= 2

    def finalize_loop(self, count: int, body: List[AsmInstr],
                      loop_id: int, depth: int
                      ) -> Tuple[List, List]:
        """Realize a counted loop: hardware repeat when the body is a
        single repeatable instruction, BANZ otherwise."""
        instrs = [item for item in body if isinstance(item, AsmInstr)]
        if (len(instrs) == len(body) == 1 and count <= 256
                and self.is_repeatable(instrs[0])):
            return [_ins("RPTK", Imm(count - 1))], []
        if depth >= len(self.LOOP_ADDRESS_REGISTERS):
            raise ValueError(
                f"tc25: loop nesting depth {depth} exceeds available "
                "loop counters")
        areg = self.LOOP_ADDRESS_REGISTERS[depth]
        label = f"L{loop_id}"
        if count - 1 <= 255:
            prologue = [_ins("LARK", Reg(areg), Imm(count - 1))]
        else:
            prologue = [_ins("LRLK", Reg(areg), Imm(count - 1),
                             words=2, cycles=2)]
        prologue.append(Label(label))
        epilogue = [_ins("BANZ", LabelRef(label), Reg(areg),
                         words=2, cycles=2)]
        return prologue, epilogue

    def mode_change_instruction(self, mode: str, value: int) -> AsmInstr:
        if mode != "pm":
            raise ValueError(f"tc25 has no mode {mode!r}")
        return _ins("SPM", Imm(value))

    # ------------------------------------------------------------------
    # Loop-level optimizations (the paper's Sec. 4.3.4 box, loop part)
    # ------------------------------------------------------------------

    def loop_optimizations(self, code: CodeSeq,
                           read_only_arrays,
                           promote_accumulators: bool = True,
                           repeat_idioms: bool = True,
                           fuse_shift_idioms: bool = False):
        """Accumulator promotion and the RPT/MAC idiom.

        *Accumulator promotion*: an innermost loop whose body starts
        with ``LAC s`` and ends with ``SACL s`` for a scalar ``s`` not
        otherwise touched in the loop keeps ``s`` in ACC across
        iterations; the load/store move to the pre/post-header.

        *RPT/MAC idiom*: a (post-promotion) body of exactly
        ``LT a-walk ; MPY b-walk ; APAC`` where one operand walks
        *forward* (stride +1) through a read-only input array becomes a
        single repeatable ``MAC table, data`` instruction with the
        read-only array placed in program memory -- the classic C25 FIR
        kernel.  The real MAC streams its program-memory operand in
        storage order, which is why only forward walks qualify.
        """
        from repro.codegen.structure import (LoopNode, Run, flatten,
                                             iter_loops, parse)

        nodes = parse(code)
        tables: List = []
        for loop in iter_loops(nodes):
            if not loop.is_innermost():
                continue
            if promote_accumulators:
                self._promote_accumulator(loop)
        if fuse_shift_idioms:
            table = self._fuse_mac_with_shift(nodes, read_only_arrays,
                                              len(tables))
            if table is not None:
                tables.append(table)
        for loop in iter_loops(nodes):
            if not loop.is_innermost():
                continue
            if repeat_idioms:
                table = self._repeat_mac(loop, read_only_arrays,
                                         len(tables))
                if table is not None:
                    tables.append(table)

        def place(node_list):
            """Insert hoisted pre/post instructions around their loops."""
            placed = []
            for node in node_list:
                if isinstance(node, LoopNode):
                    node.body = place(node.body)
                    pre = (getattr(node, "promoted_prologue", [])
                           + getattr(node, "mac_prologue", []))
                    post = (getattr(node, "mac_epilogue", [])
                            + getattr(node, "promoted_epilogue", []))
                    if pre:
                        placed.append(Run(items=list(pre)))
                    placed.append(node)
                    if post:
                        placed.append(Run(items=list(post)))
                else:
                    placed.append(node)
            return placed

        return flatten(place(nodes)), tables

    @staticmethod
    def _body_instrs(loop) -> Optional[List[AsmInstr]]:
        """The loop body as a flat instruction list, or None if it
        contains anything else (labels, nested loops)."""
        from repro.codegen.structure import Run
        instrs: List[AsmInstr] = []
        for child in loop.body:
            if not isinstance(child, Run):
                return None
            for item in child.items:
                if not isinstance(item, AsmInstr):
                    return None
                instrs.append(item)
        return instrs

    def _promote_accumulator(self, loop) -> None:
        from repro.codegen.structure import Run
        instrs = self._body_instrs(loop)
        if instrs is None or len(instrs) < 3:
            return
        first, last = instrs[0], instrs[-1]
        if first.opcode != "LAC" or last.opcode != "SACL":
            return
        load, store = first.operands[0], last.operands[0]
        if not (isinstance(load, Mem) and isinstance(store, Mem)):
            return
        if load.mode != "symbolic" or load.index is not None:
            return
        if (load.symbol, load.index) != (store.symbol, store.index):
            return
        # The scalar must not be touched anywhere else in the body.
        symbol = load.symbol
        references = sum(
            1 for instr in instrs
            for operand in instr.memory_operands()
            if operand.symbol == symbol)
        if references != 2:
            return
        loop.body[:] = [Run(items=list(instrs[1:-1]))]
        loop.promoted_prologue = [first]       # consumed by the pipeline
        loop.promoted_epilogue = [last]

    def _fuse_mac_with_shift(self, nodes, read_only_arrays,
                             table_number: int):
        """Fuse a MAC sum loop with the delay-line shift loop that
        follows it into a single RPT/MACD -- the hand-written FIR idiom
        (beyond what 1997 RECORD did; enabled by
        ``RecordOptions(fuse_shift_idioms=True)``).

        Shape required (exactly the DSPStone FIR after promotion)::

            loop xN:    LT x[i]       ; MPY h[i] ; APAC     (sum)
            loop xN-1:  DMOV x[-k+N-2]                      (shift up)

        becomes::

            LT x[N-1] ; MPY h[N-1]                          (seed P)
            loop xN-1: MACD HREV, x[-k+N-2]                 (RPTK-able)
            APAC

        with HREV streaming h[N-2] .. h[0] from program memory.  The
        descending data walk makes the DMOV side effect safe (each
        x[j+1] is overwritten only after it was consumed), and sum
        order is irrelevant for the accumulation.
        """
        from repro.codegen.compiled import PmemTable
        from repro.codegen.structure import LoopNode, Run

        loops = [node for node in nodes if isinstance(node, LoopNode)]
        for sum_loop, shift_loop in zip(loops, loops[1:]):
            sum_body = self._body_instrs(sum_loop)
            shift_body = self._body_instrs(shift_loop)
            if sum_body is None or shift_body is None:
                continue
            if len(sum_body) != 3 or len(shift_body) != 1:
                continue
            lt, mpy, apac = sum_body
            dmov = shift_body[0]
            if (lt.opcode, mpy.opcode, apac.opcode, dmov.opcode) != \
                    ("LT", "MPY", "APAC", "DMOV"):
                continue
            shift = dmov.operands[0]
            count = sum_loop.count

            def forward_walk(operand: Mem) -> bool:
                return (operand.mode == "symbolic"
                        and operand.index is not None
                        and operand.index.coeff == 1
                        and operand.index.offset == 0)

            first, second = lt.operands[0], mpy.operands[0]
            if not (isinstance(first, Mem) and isinstance(second, Mem)
                    and forward_walk(first) and forward_walk(second)):
                continue
            # the shifted array is the data side; the other one must be
            # a read-only input (it becomes the pmem table)
            if first.symbol == shift.symbol:
                data, coef = first, second
            elif second.symbol == shift.symbol:
                data, coef = second, first
            else:
                continue
            size = read_only_arrays.get(coef.symbol)
            if size is None or size < count:
                continue
            # the shift must walk the *data* array down from N-2
            if not (shift.mode == "symbolic"
                    and shift.symbol == data.symbol
                    and shift.index is not None
                    and shift.index.coeff == -1
                    and shift.index.offset == count - 2
                    and shift_loop.count == count - 1):
                continue
            # anything between the two loops must not touch the arrays
            start = nodes.index(sum_loop)
            stop = nodes.index(shift_loop)
            between = nodes[start + 1:stop]
            touched = False
            for node in between:
                if isinstance(node, LoopNode):
                    touched = True
                    break
                for item in node.items:
                    if isinstance(item, AsmInstr) and any(
                            operand.symbol in (data.symbol, coef.symbol)
                            for operand in item.memory_operands()):
                        touched = True
                        break
            if touched:
                continue

            pm = dict(apac.modes)
            label = f"PT{table_number}"
            from repro.ir.dfg import ArrayIndex
            macd = _ins("MACD", LabelRef(label),
                        Mem(symbol=data.symbol,
                            index=ArrayIndex(-1, count - 2)),
                        words=2, cycles=2, modes=pm,
                        comment=f"fused sum+shift; {coef.symbol} "
                                "reversed in program memory")
            sum_loop.begin = LoopBegin(count=count - 1,
                                       loop_id=sum_loop.loop_id)
            sum_loop.body[:] = [Run(items=[macd])]
            sum_loop.mac_prologue = [
                _ins("LT", Mem(symbol=data.symbol,
                               index=ArrayIndex(0, count - 1))),
                _ins("MPY", Mem(symbol=coef.symbol,
                                index=ArrayIndex(0, count - 1)),
                     comment="seed P with the top tap"),
            ]
            sum_loop.mac_epilogue = [_ins("APAC", modes=pm,
                                          comment="fold last product")]
            nodes.remove(shift_loop)
            return PmemTable(label=label, symbol=coef.symbol,
                             start=count - 2, stride=-1,
                             count=count - 1)
        return None

    def _repeat_mac(self, loop, read_only_arrays, table_number: int):
        from repro.codegen.compiled import PmemTable
        from repro.codegen.structure import Run
        instrs = self._body_instrs(loop)
        if instrs is None or len(instrs) != 3:
            return None
        lt, mpy, apac = instrs
        if (lt.opcode, mpy.opcode, apac.opcode) != ("LT", "MPY", "APAC"):
            return None
        lt_op, mpy_op = lt.operands[0], mpy.operands[0]
        if not (isinstance(lt_op, Mem) and isinstance(mpy_op, Mem)):
            return None

        def is_walk(operand: Mem) -> bool:
            return (operand.mode == "symbolic" and operand.index is not None
                    and operand.index.coeff != 0)

        if not (is_walk(lt_op) and is_walk(mpy_op)):
            return None

        def qualifies_as_table(operand: Mem) -> bool:
            if operand.index.coeff != 1:
                return False          # MAC streams pmem forward only
            size = read_only_arrays.get(operand.symbol)
            if size is None:
                return False
            return operand.index.offset + loop.count <= size

        if qualifies_as_table(mpy_op):
            table_operand, data_operand = mpy_op, lt_op
        elif qualifies_as_table(lt_op):
            table_operand, data_operand = lt_op, mpy_op
        else:
            return None
        pm = dict(apac.modes)
        label = f"PT{table_number}"
        mac = _ins("MAC", LabelRef(label), data_operand,
                   words=2, cycles=2, modes=pm,
                   comment=f"{table_operand.symbol} from program memory")
        loop.body[:] = [Run(items=[mac])]
        loop.mac_prologue = [_ins("MPYK", Imm(0), comment="clear P")]
        loop.mac_epilogue = [_ins("APAC", modes=pm,
                                  comment="fold last product")]
        return PmemTable(label=label, symbol=table_operand.symbol,
                         start=table_operand.index.offset,
                         stride=table_operand.index.coeff,
                         count=loop.count)

    # ------------------------------------------------------------------
    # Peephole fusions (the paper's Sec. 4.3.4 "optimizations" box)
    # ------------------------------------------------------------------

    _FUSIONS = {"APAC": "LTA", "PAC": "LTP", "SPAC": "LTS"}

    def peephole(self, code: CodeSeq) -> CodeSeq:
        """Fuse P-transfer + T-load pairs into the C25 combo instructions.

        ``APAC ; LT m``  ->  ``LTA m``
        ``PAC ; LT m``   ->  ``LTP m``
        ``SPAC ; LT m``  ->  ``LTS m``
        """
        items = list(code.items)
        result: List = []
        index = 0
        while index < len(items):
            current = items[index]
            nxt = items[index + 1] if index + 1 < len(items) else None
            if (isinstance(current, AsmInstr)
                    and isinstance(nxt, AsmInstr)
                    and current.opcode in self._FUSIONS
                    and not current.parallel
                    and nxt.opcode == "LT"):
                fused = self._FUSIONS[current.opcode]
                result.append(AsmInstr(
                    opcode=fused, operands=nxt.operands, words=1, cycles=1,
                    modes=current.modes,
                    comment=f"fused {current.opcode}+LT"))
                index += 2
                continue
            result.append(current)
            index += 1
        return CodeSeq(result)
