"""M56: a Motorola DSP56000-flavoured dual-bank DSP.

The second target of the reproduction, chosen because it exercises the
three Sec. 3.3 optimizations the TC25 cannot:

- **parallel moves / compaction**: an ALU instruction carries up to two
  move slots, one on the X bus and one on the Y bus ("the Motorola
  MC 56000 allows parallel move operations ... Not taking advantage of
  this parallelism means loosing a factor of two");
- **memory-bank assignment** (Sudarsanam): data memory splits into X
  and Y banks; a multiply wants one operand from each;
- **offset assignment** (Bartley/Liao): scalars are reached through
  AGU pointers r0 (X) / r4 (Y) with free unit post-increment, or by a
  2-word absolute move -- the data layout decides which.

Machine model (documented deviations from the real 56000 in DESIGN.md):
16-bit data words with a 32-bit integer accumulator ``a`` (the real
56k is 24/56-bit and fractional); input registers x0 and y0 (x1/y1
omitted); address registers r0/r4 for scalar walks, r1-r3/r5-r7 for
loop array streams; ``DO``-style zero-overhead hardware loops.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from repro.codegen.addressing import AddressAssigner, transform_instr_mems
from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, Mem, Reg,
)
from repro.codegen.compaction import SlotModel, compact_code
from repro.codegen.compiled import MemoryMap
from repro.codegen.grammar import (
    Cost, EmitContext, Nt, Pat, Rule, Term, TreeGrammar,
)
from repro.codegen.membank import (
    annealed_assignment, greedy_assignment, normalize_pairs,
    single_bank_assignment,
)
from repro.codegen.offset import (
    assignment_cost, general_offset_assignment, liao_order, naive_order,
)
from repro.codegen.structure import LoopNode, Run, flatten, iter_loops, parse
from repro.ir.ops import OpKind
from repro.ir.trees import Tree
from repro.sim.machine import MachineState, SimulationError
from repro.targets.model import (
    TargetCapabilities, TargetModel, binder, emitter, semantics,
)

_MASK32 = (1 << 32) - 1
_MASK16 = (1 << 16) - 1

X_BANK_BASE = 0
Y_BANK_BASE = 512
BANK_SIZE = 512


def _wrap32(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def _wrap16(value: int) -> int:
    value &= _MASK16
    return value - (1 << 16) if value >= (1 << 15) else value


def _ins(opcode: str, *operands, words: int = 1, cycles: int = 1,
         comment: str = "") -> AsmInstr:
    return AsmInstr(opcode=opcode, operands=tuple(operands), words=words,
                    cycles=cycles, comment=comment)


def _is_zero(tree: Tree) -> bool:
    return tree.value == 0


class M56(TargetModel):
    """Motorola 56000-flavoured dual-bank DSP (see module docstring)."""

    name = "m56"
    word_bits = 16
    capabilities = TargetCapabilities(
        address_registers=8,
        max_post_modify=2,
        direct_addressing=False,      # absolute moves cost an extra word
        memory_banks=("x", "y"),
        parallel_slots=2,
        modes={},
        has_repeat=False,
        has_hardware_loop=True,
    )

    # Streams prefer r1-r3 / r5-r7; r0 / r4 are taken last so they
    # usually remain free to serve the scalar pointer walks (when a
    # loop needs all eight, scalar accesses in that program fall back
    # to absolute moves).
    SCALAR_POINTER_CANDIDATES = {"x": ["r0", "r1", "r2", "r3"],
                                 "y": ["r4", "r5", "r6", "r7"]}
    STREAM_ADDRESS_REGISTERS = ["r1", "r2", "r3", "r5", "r6", "r7",
                                "r0", "r4"]
    LOOP_ADDRESS_REGISTERS: List[str] = []     # hardware loops need none
    MOVE_OPCODES = frozenset({"MOVE", "MOVEI", "LUA"})
    ALU_OPCODES = frozenset({
        "ADD", "SUB", "MPY", "MAC", "MACN", "MPYF", "MACF", "MACNF",
        "NEG", "ABS", "ASL", "ASR", "AND", "OR", "EOR", "NOT", "CLR",
        "SATA",
    })

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------

    def _build_grammar(self) -> TreeGrammar:
        rules: List[Rule] = []
        add = rules.append

        add(Rule("mem", Term("ref"), Cost(0, 0),
                 emit=lambda ctx, args: args[0], name="mem-ref"))

        def load(register, nonterm):
            def emit(ctx, args):
                ctx.emit(_ins("MOVE", Reg(register), args[0]))
                return nonterm
            return emit

        for register, nonterm in (("x0", "xr"), ("y0", "yr"),
                                  ("a", "acc")):
            add(Rule(nonterm, Nt("mem"), Cost(1, 1),
                     emit=load(register, nonterm),
                     name=f"MOVE {register},mem",
                     clobbers=frozenset({register})))

            def load_imm(reg=register, nt=nonterm):
                def emit(ctx, args):
                    ctx.emit(_ins("MOVEI", Reg(reg), Imm(args[0]),
                                  words=2, cycles=2))
                    return nt
                return emit

            add(Rule(nonterm, Term("const"), Cost(2, 2),
                     emit=load_imm(),
                     name=f"MOVEI {register},#",
                     clobbers=frozenset({register})))

        def emit_clr(ctx, args):
            ctx.emit(_ins("CLR", Reg("a")))
            return "acc"

        add(Rule("acc", Term("const", _is_zero, "#0"), Cost(1, 1),
                 emit=emit_clr, name="CLR", clobbers=frozenset({"a"})))

        def alu2(opcode, source):
            def emit(ctx, args):
                ctx.emit(_ins(opcode, Reg(source), Reg("a")))
                return "acc"
            return emit

        for op_name, opcode in (("add", "ADD"), ("sub", "SUB"),
                                ("and", "AND"), ("or", "OR"),
                                ("xor", "EOR")):
            for nonterm, source in (("xr", "x0"), ("yr", "y0")):
                add(Rule("acc", Pat(op_name, (Nt("acc"), Nt(nonterm))),
                         Cost(1, 1), emit=alu2(opcode, source),
                         name=f"{opcode} {source},a",
                         clobbers=frozenset({"a"})))

        def emit_mpy(ctx, args):
            ctx.emit(_ins("MPY", Reg("x0"), Reg("y0"), Reg("a")))
            return "acc"

        def emit_mac(ctx, args):
            ctx.emit(_ins("MAC", Reg("x0"), Reg("y0"), Reg("a")))
            return "acc"

        def emit_macn(ctx, args):
            ctx.emit(_ins("MACN", Reg("x0"), Reg("y0"), Reg("a")))
            return "acc"

        add(Rule("acc", Pat("mul", (Nt("xr"), Nt("yr"))), Cost(1, 1),
                 emit=emit_mpy, name="MPY", clobbers=frozenset({"a"})))
        add(Rule("acc", Pat("mul", (Nt("yr"), Nt("xr"))), Cost(1, 1),
                 emit=lambda ctx, args: emit_mpy(ctx, args),
                 name="MPYr", clobbers=frozenset({"a"})))
        add(Rule("acc", Pat("add", (Nt("acc"),
                                    Pat("mul", (Nt("xr"), Nt("yr"))))),
                 Cost(1, 1), emit=emit_mac, name="MAC",
                 clobbers=frozenset({"a"})))
        add(Rule("acc", Pat("sub", (Nt("acc"),
                                    Pat("mul", (Nt("xr"), Nt("yr"))))),
                 Cost(1, 1), emit=emit_macn, name="MACN",
                 clobbers=frozenset({"a"})))

        frac = Pat("shr", (Pat("mul", (Nt("xr"), Nt("yr"))),
                           Term("const", lambda t: t.value == 15,
                                "#15")))
        add(Rule("acc", frac, Cost(1, 1),
                 emit=lambda ctx, args: (ctx.emit(
                     _ins("MPYF", Reg("x0"), Reg("y0"), Reg("a"))),
                     "acc")[1],
                 name="MPYF", clobbers=frozenset({"a"})))
        add(Rule("acc", Pat("add", (Nt("acc"), frac)), Cost(1, 1),
                 emit=lambda ctx, args: (ctx.emit(
                     _ins("MACF", Reg("x0"), Reg("y0"), Reg("a"))),
                     "acc")[1],
                 name="MACF", clobbers=frozenset({"a"})))
        add(Rule("acc", Pat("sub", (Nt("acc"), frac)), Cost(1, 1),
                 emit=lambda ctx, args: (ctx.emit(
                     _ins("MACNF", Reg("x0"), Reg("y0"), Reg("a"))),
                     "acc")[1],
                 name="MACNF", clobbers=frozenset({"a"})))

        def alu1(opcode):
            def emit(ctx, args):
                ctx.emit(_ins(opcode, Reg("a")))
                return "acc"
            return emit

        for op_name, opcode in (("neg", "NEG"), ("abs", "ABS"),
                                ("not", "NOT"), ("sat", "SATA")):
            add(Rule("acc", Pat(op_name, (Nt("acc"),)), Cost(1, 1),
                     emit=alu1(opcode), name=opcode,
                     clobbers=frozenset({"a"})))

        def shifter(opcode, amount):
            def emit(ctx, args):
                for _ in range(amount):
                    ctx.emit(_ins(opcode, Reg("a")))
                return "acc"
            return emit

        for amount in range(1, 16):
            pred = (lambda k: lambda t: t.value == k)(amount)
            add(Rule("acc", Pat("shl", (Nt("acc"),
                                        Term("const", pred,
                                             f"#{amount}"))),
                     Cost(amount, amount), emit=shifter("ASL", amount),
                     name=f"ASLx{amount}", clobbers=frozenset({"a"})))
            add(Rule("acc", Pat("shr", (Nt("acc"),
                                        Term("const", pred,
                                             f"#{amount}"))),
                     Cost(amount, amount), emit=shifter("ASR", amount),
                     name=f"ASRx{amount}", clobbers=frozenset({"a"})))

        def store_from(register):
            def emit(ctx, args):
                ctx.emit(_ins("MOVE", args[0], Reg(register)))
                return None
            return emit

        add(Rule("stmt", Pat("store", (Term("ref"), Nt("acc"))),
                 Cost(1, 1), emit=store_from("a"), name="MOVE mem,a"))
        add(Rule("stmt", Pat("store", (Term("ref"), Nt("xr"))),
                 Cost(1, 1), emit=store_from("x0"), name="MOVE mem,x0"))

        return TreeGrammar("m56", rules, nt_resources={
            "acc": "a", "xr": "x0", "yr": "y0", "mem": None,
        })

    # ------------------------------------------------------------------
    # Address assignment hook (banks + offset assignment + repricing)
    # ------------------------------------------------------------------

    def assign_addresses(self, code: CodeSeq, program, extra_scalars,
                         options) -> Tuple[CodeSeq, MemoryMap]:
        """Banked address assignment: bank assignment, offset
        assignment (SOA/GOA), stream registers, pointer walks and
        absolute-move repricing (pipeline addressing hook)."""
        banks = self._assign_banks(code, program, extra_scalars,
                                   strategy=options.bank_assignment)
        scalar_orders = self._offset_orders(
            code, program, banks, strategy=options.offset_assignment)
        memory_map = self._build_banked_map(program, extra_scalars,
                                            banks, scalar_orders)
        code = self._tag_banks(code, banks)
        code = AddressAssigner(self, memory_map).run(code)
        pointers = self._free_scalar_pointers(code)
        code = self._scalar_pointer_walks(
            code, memory_map, banks, pointers,
            enabled=options.offset_assignment != "absolute")
        code = self._reprice_absolute(code)
        return code, memory_map

    # -- bank assignment ---------------------------------------------------

    def _symbols_of(self, code: CodeSeq, program, extra_scalars
                    ) -> List[str]:
        names = list(program.symbols)
        names.extend(name for name in extra_scalars
                     if name not in program.symbols)
        return names

    def _multiply_pairs(self, code: CodeSeq) -> List[Tuple[str, str]]:
        """Operand pairs that want opposite banks: the memory symbols
        feeding x0 and y0 of each multiply.

        Approximation of Sudarsanam's constraint collection: walk the
        linear code; remember which symbol each of x0/y0 last loaded;
        each MPY/MAC/MACN contributes the current (x0-symbol,
        y0-symbol) pair.
        """
        pairs: List[Tuple[str, str]] = []
        last: Dict[str, Optional[str]] = {"x0": None, "y0": None}
        for item in code:
            if not isinstance(item, AsmInstr):
                last = {"x0": None, "y0": None}
                continue
            if item.opcode == "MOVE" and len(item.operands) == 2 \
                    and isinstance(item.operands[0], Reg) \
                    and item.operands[0].name in last \
                    and isinstance(item.operands[1], Mem):
                last[item.operands[0].name] = item.operands[1].symbol
            elif item.opcode in ("MPY", "MAC", "MACN"):
                if last["x0"] and last["y0"]:
                    pairs.append((last["x0"], last["y0"]))
        return pairs

    def _assign_banks(self, code: CodeSeq, program, extra_scalars,
                      strategy: str) -> Dict[str, str]:
        symbols = self._symbols_of(code, program, extra_scalars)
        weights = normalize_pairs(self._multiply_pairs(code))
        if strategy == "single":
            assignment = single_bank_assignment(weights, symbols)
        elif strategy == "greedy":
            assignment = greedy_assignment(weights, symbols)
        elif strategy == "anneal":
            assignment = annealed_assignment(weights, symbols, seed=0)
        else:
            from repro.codegen.pipeline import CompileError
            raise CompileError(
                f"unknown bank_assignment strategy {strategy!r}; "
                "choose from anneal, greedy, single")
        for name in symbols:
            assignment.setdefault(name, "x")
        return assignment

    # -- offset assignment ---------------------------------------------------

    def _scalar_sequences(self, code: CodeSeq, program,
                          banks: Dict[str, str]
                          ) -> Dict[str, List[str]]:
        """Per-bank scalar access sequences, in instruction order."""
        arrays = {name for name, sym in program.symbols.items()
                  if sym.is_array}
        sequences: Dict[str, List[str]] = {"x": [], "y": []}
        for item in code:
            if not isinstance(item, AsmInstr):
                continue
            for operand in item.memory_operands():
                if operand.mode != "symbolic" or operand.symbol in arrays:
                    continue
                if operand.index is not None and operand.index.coeff != 0:
                    continue
                bank = banks.get(operand.symbol, "x")
                sequences[bank].append(operand.symbol)
        return sequences

    def _offset_orders(self, code: CodeSeq, program,
                       banks: Dict[str, str],
                       strategy: str) -> Dict[str, List[str]]:
        sequences = self._scalar_sequences(code, program, banks)
        if strategy == "goa":
            # GOA with one register per bank degenerates to SOA; the
            # point of exposing it is the layout: partitions are laid
            # out contiguously so a second pointer *could* serve the
            # second partition.  With our single scalar pointer per
            # bank the concatenated layout is what matters.
            return {bank: general_offset_assignment(sequence, 2).layout
                    for bank, sequence in sequences.items()}
        solvers = {"liao": liao_order, "naive": naive_order,
                   "absolute": naive_order}
        solver = solvers.get(strategy)
        if solver is None:
            from repro.codegen.pipeline import CompileError
            raise CompileError(
                f"unknown offset_assignment strategy {strategy!r}; "
                f"choose from goa, {', '.join(sorted(solvers))}")
        return {bank: solver(sequence)
                for bank, sequence in sequences.items()}

    def _build_banked_map(self, program, extra_scalars,
                          banks: Dict[str, str],
                          scalar_orders: Dict[str, List[str]]
                          ) -> MemoryMap:
        memory_map = MemoryMap()
        bases = {"x": X_BANK_BASE, "y": Y_BANK_BASE}
        cursors = dict(bases)
        for bank in ("x", "y"):
            for name in scalar_orders.get(bank, []):
                if name not in memory_map.addresses:
                    memory_map.addresses[name] = cursors[bank]
                    memory_map.sizes[name] = 1
                    cursors[bank] += 1
        # Remaining scalars (never accessed or not in the SOA sequence),
        # then arrays.
        names = list(program.symbols)
        names.extend(name for name in extra_scalars
                     if name not in program.symbols)
        for name in names:
            if name in memory_map.addresses:
                continue
            symbol = program.symbols.get(name)
            size = symbol.size if symbol is not None and symbol.is_array \
                else 1
            bank = banks.get(name, "x")
            memory_map.addresses[name] = cursors[bank]
            memory_map.sizes[name] = size
            cursors[bank] += size
        for bank, cursor in cursors.items():
            if cursor - bases[bank] > BANK_SIZE:
                raise ValueError(f"bank {bank} overflows "
                                 f"({cursor - bases[bank]} words)")
        memory_map.total = max(cursors.values())
        return memory_map

    def _tag_banks(self, code: CodeSeq, banks: Dict[str, str]) -> CodeSeq:
        def tag(operand: Mem) -> Mem:
            if operand.bank is None and operand.mode == "symbolic":
                return replace(operand,
                               bank=banks.get(operand.symbol, "x"))
            return operand

        items = [transform_instr_mems(item, tag)
                 if isinstance(item, AsmInstr) else item
                 for item in code]
        return CodeSeq(items)

    def _free_scalar_pointers(self, code: CodeSeq) -> Dict[str, str]:
        """Pick, per bank, a pointer register the stream allocator left
        untouched (absent entry: no pointer free, stay absolute)."""
        used: Set[str] = set()
        for item in code:
            if not isinstance(item, AsmInstr):
                continue
            for operand in item.operands:
                if isinstance(operand, Reg) and operand.name.startswith("r"):
                    used.add(operand.name)
                if isinstance(operand, Mem) and operand.areg:
                    used.add(operand.areg)
        pointers: Dict[str, str] = {}
        for bank, candidates in self.SCALAR_POINTER_CANDIDATES.items():
            for register in candidates:
                if register not in used:
                    pointers[bank] = register
                    break
        return pointers

    def _scalar_pointer_walks(self, code: CodeSeq, memory_map: MemoryMap,
                              banks: Dict[str, str],
                              pointers: Dict[str, str],
                              enabled: bool) -> CodeSeq:
        """Rewrite direct scalar accesses into r0/r4 pointer walks where
        the (SOA-optimized) layout makes consecutive accesses adjacent.

        Per straight-line run and per bank: the first access loads the
        pointer (LUA, 2 words); subsequent accesses within +/-1 of the
        previous one use free post-modification, others reload the
        pointer.  When ``enabled`` is false every access stays an
        absolute move (the ablation baseline).
        """
        if not enabled:
            return code
        items = list(code.items)

        # Pass 1: per straight-line run and per bank, the ordered list
        # of direct scalar access sites: (item index, address).
        runs: List[List[int]] = [[]]
        for index, item in enumerate(items):
            if isinstance(item, AsmInstr):
                runs[-1].append(index)
            else:
                runs.append([])

        # site plans: item index -> (pointer, post_modify, needs_load)
        plans: Dict[int, Tuple[str, int, bool]] = {}
        scalar_names = {
            name for name, size in memory_map.sizes.items() if size == 1}
        for run in runs:
            sites: Dict[str, List[Tuple[int, int]]] = {"x": [], "y": []}
            for index in run:
                instr = items[index]
                for operand in instr.operands:
                    if isinstance(operand, Mem) \
                            and operand.mode == "direct" \
                            and operand.symbol in scalar_names \
                            and operand.bank is not None:
                        sites[operand.bank].append(
                            (index, operand.address))
            for bank, accesses in sites.items():
                pointer = pointers.get(bank)
                if pointer is None:
                    continue
                bank_plans = {}
                loads = 0
                for position, (index, address) in enumerate(accesses):
                    if position == 0:
                        needs_load = True
                    else:
                        previous = accesses[position - 1][1]
                        needs_load = abs(address - previous) > 1
                    loads += 1 if needs_load else 0
                    post = 0
                    if position + 1 < len(accesses):
                        delta = accesses[position + 1][1] - address
                        if abs(delta) <= 1:
                            post = delta
                    bank_plans[index] = (pointer, post, needs_load)
                # Profitability: pointer walking costs 2 words per LUA;
                # staying absolute costs 1 extension word per access.
                if 2 * loads < len(accesses):
                    plans.update(bank_plans)

        # Pass 2: rewrite.
        result: List = []
        for index, item in enumerate(items):
            plan = plans.get(index)
            if plan is None:
                result.append(item)
                continue
            pointer, post, needs_load = plan
            instr = item

            def per_mem(operand: Mem) -> Mem:
                if operand.mode != "direct" \
                        or operand.symbol not in scalar_names \
                        or operand.bank is None:
                    return operand
                return replace(operand, mode="indirect", areg=pointer,
                               post_modify=post)

            if needs_load:
                address = next(
                    op.address for op in instr.operands
                    if isinstance(op, Mem) and op.mode == "direct"
                    and op.symbol in scalar_names)
                result.append(_ins("LUA", Reg(pointer), Imm(address),
                                   words=2, cycles=2,
                                   comment=f"point {pointer}"))
            result.append(transform_instr_mems(instr, per_mem))
        return CodeSeq(result)

    def _reprice_absolute(self, code: CodeSeq) -> CodeSeq:
        """Absolute (direct) memory operands need an extension word."""
        items: List = []
        for item in code:
            if isinstance(item, AsmInstr) \
                    and any(isinstance(op, Mem) and op.mode == "direct"
                            for op in item.operands):
                items.append(replace(item, words=item.words + 1,
                                     cycles=item.cycles + 1))
            else:
                items.append(item)
        return CodeSeq(items)

    # -- AddressAssigner hooks (array streams in loops) ---------------------

    def make_address_register_load(self, register: str,
                                   address: int) -> AsmInstr:
        return _ins("LUA", Reg(register), Imm(address), words=2,
                    cycles=2, comment=f"point {register}")

    def make_pointer_bump(self, register: str, stride: int) -> AsmInstr:
        return _ins("LEA", Mem(symbol=f"<{register}>", mode="indirect",
                               areg=register, post_modify=stride),
                    words=1, cycles=1,
                    comment=f"advance {register} by {stride}")

    # ------------------------------------------------------------------
    # Compaction hook
    # ------------------------------------------------------------------

    def compact(self, code: CodeSeq, options) -> CodeSeq:
        """Pack parallel moves (pipeline compaction hook)."""
        return compact_code(code, M56SlotModel(), options.compaction)

    # ------------------------------------------------------------------
    # Loops
    # ------------------------------------------------------------------

    def finalize_loop(self, count: int, body: List, loop_id: int,
                      depth: int) -> Tuple[List, List]:
        start = f"D{loop_id}"
        prologue = [_ins("DO", Imm(count), words=2, cycles=2),
                    Label(start)]
        epilogue = [_ins("LOOPEND", LabelRef(start), words=0, cycles=0)]
        return prologue, epilogue

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def initial_state(self) -> MachineState:
        regs = {"a": 0, "x0": 0, "x1": 0, "y0": 0, "y1": 0}
        for index in range(8):
            regs[f"r{index}"] = 0
        return MachineState(regs=regs, mem=[0] * 1024)

    def _address(self, state: MachineState, operand: Mem) -> int:
        if operand.mode == "direct":
            return operand.address
        if operand.mode == "indirect":
            return state.reg(operand.areg)
        raise SimulationError(f"unresolved operand {operand}")

    def _read_operand(self, state: MachineState, operand,
                      post: List[Tuple[str, int]]) -> int:
        if isinstance(operand, Reg):
            return state.reg(operand.name)
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Mem):
            address = self._address(state, operand)
            if operand.mode == "indirect" and operand.post_modify:
                post.append((operand.areg, operand.post_modify))
            return state.load(address)
        raise SimulationError(f"cannot read operand {operand}")

    def execute(self, state: MachineState,
                instr: AsmInstr) -> Optional[str]:
        # Parallel semantics: gather every read and every write target
        # first, then commit all writes.
        post: List[Tuple[str, int]] = []
        reg_writes: List[Tuple[str, int]] = []
        mem_writes: List[Tuple[int, int]] = []
        branch = self._execute_one(state, instr, post, reg_writes,
                                   mem_writes)
        for move in instr.parallel:
            self._execute_one(state, move, post, reg_writes, mem_writes)
        for name, value in reg_writes:
            state.set_reg(name, value)
        for address, value in mem_writes:
            state.store(address, _wrap16(value))
        for areg, step in post:
            state.set_reg(areg, state.reg(areg) + step)
        return branch

    def _execute_one(self, state: MachineState, instr: AsmInstr,
                     post, reg_writes, mem_writes) -> Optional[str]:
        handler = self.dispatch_table().get(instr.opcode)
        if handler is None:
            raise SimulationError(f"m56: unknown opcode "
                                  f"{instr.opcode!r}")
        return handler(state, instr, post, reg_writes, mem_writes)

    # -- instruction semantics (gather halves; execute() commits) -------
    #
    # M56 handlers take ``(state, instr, post, reg_writes, mem_writes)``:
    # they *gather* reads and pending writes, and the :meth:`execute`
    # driver commits everything afterwards -- the parallel-move
    # discipline.  The registry still feeds both simulators.

    @semantics("MOVE")
    def _exec_move(self, state, instr, post, reg_writes,
                   mem_writes) -> None:
        dst, src = instr.operands
        value = self._read_operand(state, src, post)
        if isinstance(dst, Reg):
            width = _wrap32 if dst.name == "a" else _wrap16
            reg_writes.append((dst.name, width(value)))
        else:
            address = self._address(state, dst)
            if dst.mode == "indirect" and dst.post_modify:
                post.append((dst.areg, dst.post_modify))
            mem_writes.append((address, value))

    @semantics("MOVEI", "LUA")
    def _exec_movei(self, state, instr, post, reg_writes,
                    mem_writes) -> None:
        dst, imm = instr.operands
        reg_writes.append((dst.name, imm.value))

    @semantics("CLR")
    def _exec_clr(self, state, instr, post, reg_writes,
                  mem_writes) -> None:
        reg_writes.append(("a", 0))

    @semantics("ADD", "SUB")
    def _exec_add_sub(self, state, instr, post, reg_writes,
                      mem_writes) -> None:
        source = self._read_operand(state, instr.operands[0], post)
        acc = state.reg("a")
        value = acc + source if instr.opcode == "ADD" else acc - source
        reg_writes.append(("a", _wrap32(value)))

    @semantics("AND", "OR", "EOR")
    def _exec_logic(self, state, instr, post, reg_writes,
                    mem_writes) -> None:
        # word-width logic unit: the accumulator passes through at
        # 16 bits (see FixedPointContext semantics)
        source = self._read_operand(state, instr.operands[0], post)
        acc = _wrap16(state.reg("a"))
        value = {"AND": acc & source, "OR": acc | source,
                 "EOR": acc ^ source}[instr.opcode]
        reg_writes.append(("a", value))

    @semantics("MPY", "MAC", "MACN", "MPYF", "MACF", "MACNF")
    def _exec_multiply(self, state, instr, post, reg_writes,
                       mem_writes) -> None:
        op = instr.opcode
        x = self._read_operand(state, instr.operands[0], post)
        y = self._read_operand(state, instr.operands[1], post)
        product = x * y
        if op.endswith("F"):
            product >>= 15      # fractional (Q15) multiplier mode
        if op in ("MPY", "MPYF"):
            value = product
        elif op in ("MAC", "MACF"):
            value = state.reg("a") + product
        else:
            value = state.reg("a") - product
        reg_writes.append(("a", _wrap32(value)))

    @semantics("SATA")
    def _exec_sata(self, state, instr, post, reg_writes,
                   mem_writes) -> None:
        reg_writes.append(("a", max(-(1 << 15),
                                    min((1 << 15) - 1,
                                        state.reg("a")))))

    @semantics("NEG")
    def _exec_neg(self, state, instr, post, reg_writes,
                  mem_writes) -> None:
        reg_writes.append(("a", _wrap32(-state.reg("a"))))

    @semantics("ABS")
    def _exec_abs(self, state, instr, post, reg_writes,
                  mem_writes) -> None:
        reg_writes.append(("a", _wrap32(abs(state.reg("a")))))

    @semantics("NOT")
    def _exec_not(self, state, instr, post, reg_writes,
                  mem_writes) -> None:
        reg_writes.append(("a", ~_wrap16(state.reg("a"))))

    @semantics("ASL")
    def _exec_asl(self, state, instr, post, reg_writes,
                  mem_writes) -> None:
        reg_writes.append(("a", _wrap32(state.reg("a") << 1)))

    @semantics("ASR")
    def _exec_asr(self, state, instr, post, reg_writes,
                  mem_writes) -> None:
        reg_writes.append(("a", state.reg("a") >> 1))

    @semantics("DO")
    def _exec_do(self, state, instr, post, reg_writes,
                 mem_writes) -> None:
        state.loop_stack.append(instr.operands[0].value - 1)

    @semantics("LOOPEND", branch=True)
    def _exec_loopend(self, state, instr, post, reg_writes,
                      mem_writes) -> Optional[str]:
        if not state.loop_stack:
            raise SimulationError("LOOPEND without DO")
        if state.loop_stack[-1] > 0:
            state.loop_stack[-1] -= 1
            return instr.operands[0].name
        state.loop_stack.pop()
        return None

    @semantics("LEA")
    def _exec_lea(self, state, instr, post, reg_writes,
                  mem_writes) -> None:
        operand = instr.operands[0]
        post.append((operand.areg, operand.post_modify))

    @semantics("NOP")
    def _exec_nop(self, state, instr, post, reg_writes,
                  mem_writes) -> None:
        pass

    # -- fast-simulator decode ------------------------------------------

    def bind_step(self, instr: AsmInstr):
        # The @binder specializations below assume a bare instruction;
        # anything carrying parallel move slots keeps the gather/commit
        # discipline (with handlers pre-resolved at decode time).
        if instr.parallel:
            return self._default_step(instr)
        return super().bind_step(instr)

    def _default_step(self, instr: AsmInstr):
        """Gather/commit step with handlers resolved at decode time."""
        table = self.dispatch_table()
        primary = table.get(instr.opcode)
        bad = instr.opcode if primary is None else next(
            (move.opcode for move in instr.parallel
             if move.opcode not in table), None)
        if bad is not None:
            # Defer to run time: an unknown opcode behind a never-taken
            # branch must behave exactly like the reference interpreter.
            def unknown(state: MachineState) -> Optional[str]:
                raise SimulationError(f"m56: unknown opcode {bad!r}")
            return unknown
        moves = tuple((table[move.opcode], move)
                      for move in instr.parallel)

        def step(state: MachineState) -> Optional[str]:
            post: List[Tuple[str, int]] = []
            reg_writes: List[Tuple[str, int]] = []
            mem_writes: List[Tuple[int, int]] = []
            branch = primary(state, instr, post, reg_writes, mem_writes)
            for handler, move in moves:
                handler(state, move, post, reg_writes, mem_writes)
            for name, value in reg_writes:
                state.set_reg(name, value)
            for address, value in mem_writes:
                state.store(address, _wrap16(value))
            for areg, bump in post:
                state.set_reg(areg, state.reg(areg) + bump)
            return branch

        return step

    # Specialized binders for bare (no parallel slots) instructions.
    # With a single gather half, committing writes in place is
    # observationally identical to the gather/commit order: the only
    # same-register overlap (write then post-modify of the same
    # register) keeps the reference ordering below.

    def _bind_read(self, operand):
        """read(state) -> value, recording post-modify as a trailing
        bump the caller must apply after its writes."""
        if isinstance(operand, Reg):
            name = operand.name
            return (lambda state: state.reg(name)), None
        if isinstance(operand, Imm):
            value = operand.value
            return (lambda state: value), None
        if isinstance(operand, Mem):
            if operand.mode == "direct":
                address = operand.address
                return (lambda state: state.load(address)), None
            if operand.mode == "indirect":
                areg = operand.areg
                bump = operand.post_modify
                read = (lambda state, areg=areg:
                        state.load(state.reg(areg)))
                if bump:
                    def apply_bump(state: MachineState) -> None:
                        state.set_reg(areg, state.reg(areg) + bump)
                    return read, apply_bump
                return read, None

            def unresolved(state: MachineState) -> int:
                raise SimulationError(f"unresolved operand {operand}")
            return unresolved, None
        def unreadable(state: MachineState) -> int:
            raise SimulationError(f"cannot read operand {operand}")
        return unreadable, None

    @binder("MOVE")
    def _bind_move(self, instr: AsmInstr):
        dst, src = instr.operands
        read, src_bump = self._bind_read(src)
        if isinstance(dst, Reg):
            name = dst.name
            width = _wrap32 if name == "a" else _wrap16

            def step(state: MachineState) -> None:
                state.set_reg(name, width(read(state)))
                if src_bump is not None:
                    src_bump(state)
            return step
        if isinstance(dst, Mem):
            if dst.mode == "direct":
                address = dst.address

                def step(state: MachineState) -> None:
                    state.store(address, _wrap16(read(state)))
                    if src_bump is not None:
                        src_bump(state)
                return step
            if dst.mode == "indirect":
                areg = dst.areg
                dst_bump = dst.post_modify

                def step(state: MachineState) -> None:
                    value = read(state)
                    address = state.reg(areg)
                    state.store(address, _wrap16(value))
                    if src_bump is not None:
                        src_bump(state)
                    if dst_bump:
                        state.set_reg(areg,
                                      state.reg(areg) + dst_bump)
                return step
        return None     # symbolic / exotic shapes: generic gather step

    @binder("MOVEI", "LUA")
    def _bind_movei(self, instr: AsmInstr):
        name = instr.operands[0].name
        value = instr.operands[1].value

        def step(state: MachineState) -> None:
            state.set_reg(name, value)
        return step

    @binder("CLR")
    def _bind_clr(self, instr: AsmInstr):
        def step(state: MachineState) -> None:
            state.set_reg("a", 0)
        return step

    @binder("ADD", "SUB")
    def _bind_add_sub(self, instr: AsmInstr):
        operand = instr.operands[0]
        if not isinstance(operand, (Reg, Imm)):
            return None
        read, _ = self._bind_read(operand)
        if instr.opcode == "ADD":
            def step(state: MachineState) -> None:
                state.set_reg("a", _wrap32(state.reg("a")
                                           + read(state)))
        else:
            def step(state: MachineState) -> None:
                state.set_reg("a", _wrap32(state.reg("a")
                                           - read(state)))
        return step

    @binder("AND", "OR", "EOR")
    def _bind_logic(self, instr: AsmInstr):
        operand = instr.operands[0]
        if not isinstance(operand, (Reg, Imm)):
            return None
        read, _ = self._bind_read(operand)
        op = instr.opcode

        def step(state: MachineState) -> None:
            acc = _wrap16(state.reg("a"))
            source = read(state)
            value = {"AND": acc & source, "OR": acc | source,
                     "EOR": acc ^ source}[op]
            state.set_reg("a", value)
        return step

    @binder("MPY", "MAC", "MACN", "MPYF", "MACF", "MACNF")
    def _bind_multiply(self, instr: AsmInstr):
        left, right = instr.operands[0], instr.operands[1]
        if not (isinstance(left, (Reg, Imm))
                and isinstance(right, (Reg, Imm))):
            return None
        read_x, _ = self._bind_read(left)
        read_y, _ = self._bind_read(right)
        op = instr.opcode
        fractional = op.endswith("F")
        kind = op[:-1] if fractional else op

        if kind == "MPY":
            def step(state: MachineState) -> None:
                product = read_x(state) * read_y(state)
                if fractional:
                    product >>= 15
                state.set_reg("a", _wrap32(product))
        elif kind == "MAC":
            def step(state: MachineState) -> None:
                product = read_x(state) * read_y(state)
                if fractional:
                    product >>= 15
                state.set_reg("a", _wrap32(state.reg("a") + product))
        else:
            def step(state: MachineState) -> None:
                product = read_x(state) * read_y(state)
                if fractional:
                    product >>= 15
                state.set_reg("a", _wrap32(state.reg("a") - product))
        return step

    @binder("SATA", "NEG", "ABS", "NOT", "ASL", "ASR")
    def _bind_acc_unary(self, instr: AsmInstr):
        op = instr.opcode
        if op == "SATA":
            def step(state: MachineState) -> None:
                state.set_reg("a", max(-(1 << 15),
                                       min((1 << 15) - 1,
                                           state.reg("a"))))
        elif op == "NEG":
            def step(state: MachineState) -> None:
                state.set_reg("a", _wrap32(-state.reg("a")))
        elif op == "ABS":
            def step(state: MachineState) -> None:
                state.set_reg("a", _wrap32(abs(state.reg("a"))))
        elif op == "NOT":
            def step(state: MachineState) -> None:
                state.set_reg("a", ~_wrap16(state.reg("a")))
        elif op == "ASL":
            def step(state: MachineState) -> None:
                state.set_reg("a", _wrap32(state.reg("a") << 1))
        else:
            def step(state: MachineState) -> None:
                state.set_reg("a", state.reg("a") >> 1)
        return step

    @binder("DO")
    def _bind_do(self, instr: AsmInstr):
        initial = instr.operands[0].value - 1

        def step(state: MachineState) -> None:
            state.loop_stack.append(initial)
        return step

    @binder("LOOPEND")
    def _bind_loopend(self, instr: AsmInstr):
        label = instr.operands[0].name

        def step(state: MachineState) -> Optional[str]:
            stack = state.loop_stack
            if not stack:
                raise SimulationError("LOOPEND without DO")
            if stack[-1] > 0:
                stack[-1] -= 1
                return label
            stack.pop()
            return None
        return step

    @binder("LEA")
    def _bind_lea(self, instr: AsmInstr):
        operand = instr.operands[0]
        areg = operand.areg
        bump = operand.post_modify

        def step(state: MachineState) -> None:
            state.set_reg(areg, state.reg(areg) + bump)
        return step

    @binder("NOP")
    def _bind_nop(self, instr: AsmInstr):
        return lambda state: None

    # -- JIT source templates ------------------------------------------
    #
    # One gather/commit emitter covers every data instruction including
    # its parallel move slots, mirroring :meth:`execute`: all reads land
    # in temporaries in gather order, then register writes, memory
    # writes (16-bit wrapped) and pointer bumps commit in the reference
    # order -- with operands and addresses resolved at generation time.
    # Shapes the gather cannot express decline to the decoded
    # gather/commit closure.

    _LOGIC_CHARS = {"AND": "&", "OR": "|", "EOR": "^"}

    def _jit_read(self, operand, ctx, post) -> Optional[str]:
        """Gather one source operand into a temp (or an immediate
        literal); ``None`` declines the instruction."""
        if isinstance(operand, Reg):
            tmp = ctx.tmp()
            ctx.line(f"{tmp} = {ctx.reg(operand.name)}")
            return tmp
        if isinstance(operand, Imm):
            return repr(operand.value)
        if isinstance(operand, Mem):
            if operand.mode == "direct":
                tmp = ctx.tmp()
                ctx.line(f"{tmp} = {ctx.load(operand.address)}")
                return tmp
            if operand.mode == "indirect":
                if operand.post_modify:
                    post.append((operand.areg, operand.post_modify))
                tmp = ctx.tmp()
                ctx.line(
                    f"{tmp} = {ctx.load(ctx.reg(operand.areg))}")
                return tmp
        return None

    def _jit_gather(self, part: AsmInstr, ctx, post, reg_writes,
                    mem_writes) -> bool:
        op = part.opcode
        ops = part.operands
        if op == "MOVE":
            dst, src = ops
            value = self._jit_read(src, ctx, post)
            if value is None:
                return False
            if isinstance(dst, Reg):
                wrap = ctx.wrap32 if dst.name == "a" else ctx.wrap16
                tmp = ctx.tmp()
                ctx.line(f"{tmp} = {wrap(value)}")
                reg_writes.append((dst.name, tmp))
                return True
            if isinstance(dst, Mem) and dst.mode == "direct":
                mem_writes.append((dst.address, value))
                return True
            if isinstance(dst, Mem) and dst.mode == "indirect":
                address = ctx.tmp()
                ctx.line(f"{address} = {ctx.reg(dst.areg)}")
                if dst.post_modify:
                    post.append((dst.areg, dst.post_modify))
                mem_writes.append((address, value))
                return True
            return False
        if op in ("MOVEI", "LUA"):
            reg_writes.append((ops[0].name, repr(ops[1].value)))
            return True
        if op == "CLR":
            reg_writes.append(("a", "0"))
            return True
        if op in ("ADD", "SUB"):
            source = self._jit_read(ops[0], ctx, post)
            if source is None:
                return False
            sign = "+" if op == "ADD" else "-"
            tmp = ctx.tmp()
            ctx.line(f"{tmp} = " + ctx.wrap32(
                f"{ctx.reg('a')} {sign} ({source})"))
            reg_writes.append(("a", tmp))
            return True
        if op in ("AND", "OR", "EOR"):
            source = self._jit_read(ops[0], ctx, post)
            if source is None:
                return False
            tmp = ctx.tmp()
            ctx.line(f"{tmp} = {ctx.wrap16(ctx.reg('a'))} "
                     f"{self._LOGIC_CHARS[op]} ({source})")
            reg_writes.append(("a", tmp))
            return True
        if op in ("MPY", "MAC", "MACN", "MPYF", "MACF", "MACNF"):
            x = self._jit_read(ops[0], ctx, post)
            y = self._jit_read(ops[1], ctx, post)
            if x is None or y is None:
                return False
            product = ctx.tmp()
            ctx.line(f"{product} = ({x}) * ({y})")
            if op.endswith("F"):
                ctx.line(f"{product} >>= 15")
            kind = op[:-1] if op.endswith("F") else op
            if kind == "MPY":
                expr = product
            else:
                sign = "+" if kind == "MAC" else "-"
                expr = f"{ctx.reg('a')} {sign} {product}"
            tmp = ctx.tmp()
            ctx.line(f"{tmp} = {ctx.wrap32(expr)}")
            reg_writes.append(("a", tmp))
            return True
        if op in ("SATA", "NEG", "ABS", "NOT", "ASL", "ASR"):
            acc = ctx.reg("a")
            expr = {
                "SATA": f"max(-32768, min(32767, {acc}))",
                "NEG": ctx.wrap32(f"-{acc}"),
                "ABS": ctx.wrap32(f"abs({acc})"),
                "NOT": f"~{ctx.wrap16(acc)}",
                "ASL": ctx.wrap32(f"{acc} << 1"),
                "ASR": f"{acc} >> 1",
            }[op]
            tmp = ctx.tmp()
            ctx.line(f"{tmp} = {expr}")
            reg_writes.append(("a", tmp))
            return True
        if op == "DO":
            ctx.line(
                f"state.loop_stack.append({ops[0].value - 1})")
            return True
        if op == "LEA":
            operand = ops[0]
            if not (isinstance(operand, Mem)
                    and operand.mode == "indirect"):
                return False
            post.append((operand.areg, operand.post_modify))
            return True
        if op == "NOP":
            return True
        return False

    @emitter("MOVE", "MOVEI", "LUA", "CLR", "ADD", "SUB", "AND", "OR",
             "EOR", "MPY", "MAC", "MACN", "MPYF", "MACF", "MACNF",
             "SATA", "NEG", "ABS", "NOT", "ASL", "ASR", "DO", "LEA",
             "NOP")
    def _emit_data(self, instr: AsmInstr, ctx) -> bool:
        post: List[Tuple[str, int]] = []
        reg_writes: List[Tuple[str, str]] = []
        mem_writes: List[Tuple[object, str]] = []
        for part in (instr,) + tuple(instr.parallel):
            if not self._jit_gather(part, ctx, post, reg_writes,
                                    mem_writes):
                return False
        for name, value in reg_writes:
            ctx.set_reg(name, value)
        for address, value in mem_writes:
            ctx.store(address, ctx.wrap16(value))
        for areg, bump in post:
            ctx.set_reg(areg, f"{ctx.reg(areg)} + {bump}")
        return True

    @emitter("LOOPEND")
    def _emit_loopend(self, instr: AsmInstr, ctx) -> bool:
        if instr.parallel:
            return False
        label = instr.operands[0].name
        ctx.helper("_no_do", (
            "def _no_do():\n"
            "    raise SimulationError(\"LOOPEND without DO\")"))
        taken = ctx.tmp()
        ctx.line("_ls = state.loop_stack")
        ctx.line("if not _ls:")
        with ctx.indented():
            ctx.line("_no_do()")
        ctx.line(f"{taken} = False")
        ctx.line("if _ls[-1] > 0:")
        with ctx.indented():
            ctx.line("_ls[-1] -= 1")
            ctx.line(f"{taken} = True")
        ctx.line("else:")
        with ctx.indented():
            ctx.line("_ls.pop()")
        ctx.jump_if(taken, label)
        return True


class M56SlotModel(SlotModel):
    """Compaction model: one X-bus move + one Y-bus move per ALU op."""

    slots = ("xmove", "ymove")

    def slot_of(self, instr: AsmInstr) -> Optional[str]:
        if instr.opcode != "MOVE":
            return None
        for operand in instr.operands:
            if isinstance(operand, Mem):
                if operand.mode == "direct":
                    return None   # absolute moves are not packable
                return "ymove" if operand.bank == "y" else "xmove"
        return "xmove"       # register-to-register rides the X bus

    def can_host(self, instr: AsmInstr) -> bool:
        return instr.opcode in M56.ALU_OPCODES

    def _mem_tokens(self, operand: Mem) -> Set[str]:
        bank = operand.bank or "x"
        tokens: Set[str] = set()
        if operand.mode == "direct":
            tokens.add(f"m:{bank}:{operand.address}")
        elif operand.mode == "indirect":
            tokens.add(f"m:{bank}")
            tokens.add(operand.areg)
        else:
            tokens.add(f"m:{bank}")
        return tokens

    def defs(self, instr: AsmInstr) -> Set[str]:
        tokens: Set[str] = set()
        op = instr.opcode
        if op == "MOVE":
            dst = instr.operands[0]
            if isinstance(dst, Reg):
                tokens.add(dst.name)
            else:
                tokens |= self._mem_tokens(dst)
                if dst.mode == "indirect" and dst.post_modify:
                    tokens.add(dst.areg)
            src = instr.operands[1]
            if isinstance(src, Mem) and src.mode == "indirect" \
                    and src.post_modify:
                tokens.add(src.areg)
        elif op in ("MOVEI", "LUA"):
            tokens.add(instr.operands[0].name)
        elif op in M56.ALU_OPCODES:
            tokens.add("a")
        elif op in ("DO", "LOOPEND"):
            tokens.add("loop")
        return tokens

    def uses(self, instr: AsmInstr) -> Set[str]:
        tokens: Set[str] = set()
        op = instr.opcode
        if op == "MOVE":
            src = instr.operands[1]
            if isinstance(src, Reg):
                tokens.add(src.name)
            else:
                tokens |= self._mem_tokens(src)
            dst = instr.operands[0]
            if isinstance(dst, Mem) and dst.mode == "indirect":
                tokens.add(dst.areg)
        elif op in ("ADD", "SUB", "AND", "OR", "EOR"):
            tokens.add(instr.operands[0].name)
            tokens.add("a")
        elif op in ("MPY", "MAC", "MACN", "MPYF", "MACF", "MACNF"):
            tokens.add(instr.operands[0].name)
            tokens.add(instr.operands[1].name)
            if op in ("MAC", "MACN", "MACF", "MACNF"):
                tokens.add("a")
        elif op in ("NEG", "ABS", "NOT", "ASL", "ASR", "SATA"):
            tokens.add("a")
        elif op in ("DO", "LOOPEND"):
            tokens.add("loop")
        return tokens
