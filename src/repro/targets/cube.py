"""The processor cube (Fig. 1 of the paper).

Three classification axes:

1. **form** -- how the processor is available: a completely fabricated,
   *packaged* part, or a *core* (a cell in a CAD system);
2. **domain** -- domain-specific features: *general*-purpose or *dsp*
   (multiply/accumulate, heterogeneous registers, AGU addressing modes,
   saturating arithmetic);
3. **application** -- application-specific features: *fixed*
   architecture or *configurable* (an ASIP with generic parameters).

The named corners of the cube (the figure's labels):

====================  ========  =======  =============
corner                 form      domain   application
====================  ========  =======  =============
off-the-shelf proc.   packaged  general  fixed
packaged DSP          packaged  dsp      fixed
(ASIP, packaged)      packaged  any      configurable*
GPP core              core      general  fixed
DSP core              core      dsp      fixed
ASIP core             core      general  configurable
ASSP                  core      dsp      configurable
====================  ========  =======  =============

(* the paper marks packaged+configurable as "impossible": once
fabricated, generic parameters are frozen.)

:func:`classify` places any :class:`TargetModel` of this repository in
the cube by inspecting its explicit capabilities -- the same object the
compiler consumes, which is the point: the taxonomy is derivable from
the target description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.targets.model import TargetModel

FORMS = ("packaged", "core")
DOMAINS = ("general", "dsp")
APPLICATIONS = ("fixed", "configurable")


@dataclass(frozen=True)
class CubePosition:
    """A point in the processor cube."""

    form: str
    domain: str
    application: str

    def __post_init__(self) -> None:
        if self.form not in FORMS:
            raise ValueError(f"bad form {self.form!r}")
        if self.domain not in DOMAINS:
            raise ValueError(f"bad domain {self.domain!r}")
        if self.application not in APPLICATIONS:
            raise ValueError(f"bad application axis "
                             f"{self.application!r}")
        if self.form == "packaged" and self.application == "configurable":
            raise ValueError(
                "packaged + configurable is the impossible corner of "
                "the cube: fabricated parts have frozen parameters")

    @property
    def corner_name(self) -> str:
        if self.application == "configurable":
            return "ASSP" if self.domain == "dsp" else "ASIP"
        if self.form == "core":
            return "DSP core" if self.domain == "dsp" else "GPP core"
        return "packaged DSP" if self.domain == "dsp" \
            else "off-the-shelf processor"


def is_dsp(target: TargetModel) -> bool:
    """Domain test: DSP features visible in the explicit model."""
    caps = target.capabilities
    if caps.parallel_slots or caps.memory_banks:
        return True
    if caps.has_repeat or caps.has_hardware_loop:
        return True
    # a heterogeneous multiplier path shows up as register-resource
    # nonterminals beyond a homogeneous 'reg'
    resources = set(target.grammar().nt_resources.values()) - {None}
    return len(resources) > 1


def classify(target: TargetModel) -> CubePosition:
    """Place a target model in the cube.

    Everything in this repository is a *core* (they exist as CAD-level
    models, not packaged parts); ASIPs are the configurable ones.
    """
    configurable = hasattr(target, "params")
    return CubePosition(
        form="core",
        domain="dsp" if is_dsp(target) else "general",
        application="configurable" if configurable else "fixed",
    )


def cube_table(targets: List[TargetModel]) -> str:
    """Render the shipped targets' cube positions (Fig. 1 regenerated
    as a table)."""
    lines = [f"{'target':34s} {'form':9s} {'domain':8s} "
             f"{'application':13s} corner",
             "-" * 78]
    for target in targets:
        position = classify(target)
        lines.append(
            f"{target.name:34.34s} {position.form:9s} "
            f"{position.domain:8s} {position.application:13s} "
            f"{position.corner_name}")
    return "\n".join(lines)
