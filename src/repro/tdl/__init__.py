"""TDL -- a textual target description language (the nML angle).

Sec. 4.4 of the paper surveys the description formalisms behind
retargetable compilers: CHESS "uses the special language nML for
instruction set description" [12], FlexWare and Trellis diagrams are
alternatives.  RECORD itself accepts descriptions "at different levels
of abstraction ... from an RT-level netlist to an instruction set
description".

This package is the instruction-set-level entry point, complementing
:mod:`repro.rtl`/:mod:`repro.ise` (the netlist level): a small textual
formalism from which a complete working target -- tree grammar, bit-true
simulator semantics, loop realization, AGU pointers -- is *generated*.
A TDL file looks like::

    target demo16;
    word 16;

    register acc wide;              # extended-precision accumulator
    register t;
    counters C0, C1;                # loop counters
    pointers P0, P1, P2, P3;        # AGU stream registers

    nonterm acc resource acc;
    nonterm treg resource t;

    rule LD   acc  <- mem                 sem acc = m0;
    rule LDI  acc  <- const(u8)           sem acc = c0;
    rule ADD  acc  <- add(acc, mem)       sem acc = acc + m0;
    rule LT   treg <- mem                 sem t = m0;
    rule MPY  acc  <- mul(treg, mem)      sem acc = t * m0;
    rule MAC  acc  <- add(acc, mul(treg, mem))  cost 1,2
                                          sem acc = acc + t * m0;
    rule ST   stmt <- store(mem, acc)     sem m0 = acc;

Feed the parsed description to :class:`repro.tdl.target.TdlTarget` and
the ordinary RECORD pipeline compiles MiniDFL programs for it; the
generated simulator executes them.  Register clobber sets for the BURS
evaluation-order search are *derived* from the semantic assignments.
"""

from repro.tdl.parser import TdlError, parse_tdl
from repro.tdl.target import TdlTarget, load_target

__all__ = ["TdlError", "parse_tdl", "TdlTarget", "load_target"]
