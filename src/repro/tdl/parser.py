"""Parser for the TDL target description language.

The grammar is deliberately small and line-oriented (statements end in
``;``, comments run from ``#`` to end of line):

    description = "target" IDENT ";" { declaration } ;
    declaration = "word" NUMBER ";"
                | "register" IDENT [ "wide" ] ";"
                | "counters" IDENT { "," IDENT } ";"
                | "pointers" IDENT { "," IDENT } ";"
                | "nonterm" IDENT "resource" IDENT ";"
                | rule ;
    rule        = "rule" IDENT nonterm "<-" pattern
                  [ "asm" STRING ] [ "cost" NUMBER "," NUMBER ]
                  "sem" assignment { "," assignment } ";" ;
    pattern     = IDENT                       (nonterminal)
                | "mem"                       (memory terminal)
                | "const" [ "(" guard ")" ]   (constant terminal)
                | op "(" pattern { "," pattern } ")" ;
    guard       = "u" NUMBER | "s" NUMBER | "=" NUMBER ;
    assignment  = dest "=" expr ;   dest = register | "m" NUMBER ;

Semantic expressions use ``+ - * & | ^ << >>``, unary ``- ~``, calls
``sat() abs() min(,) max(,) wrap()``, register names, operand slots
``mN``/``cN`` and integer literals, with C-like precedence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


class TdlError(Exception):
    """Syntax or consistency error in a target description."""

    def __init__(self, message: str, line: int = 0):
        location = f"line {line}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line


# ----------------------------------------------------------------------
# Description model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TdlRegister:
    name: str
    wide: bool = False


@dataclass(frozen=True)
class ConstGuard:
    """Constant terminal guard: unsigned/signed width or exact value."""

    kind: str            # "u" | "s" | "=" | "any"
    value: int = 0

    def admits(self, constant: int) -> bool:
        """Whether the guard accepts a constant value."""
        if self.kind == "any":
            return True
        if self.kind == "u":
            return 0 <= constant < (1 << self.value)
        if self.kind == "s":
            half = 1 << (self.value - 1)
            return -half <= constant < half
        return constant == self.value

    def describe(self) -> str:
        """Short guard text for rule listings."""
        if self.kind == "any":
            return "#"
        if self.kind == "=":
            return f"#={self.value}"
        return f"#{self.kind}{self.value}"


@dataclass(frozen=True)
class PatternNode:
    """Pattern tree: op node, nonterminal leaf, or terminal leaf."""

    kind: str                      # "op" | "nonterm" | "mem" | "const"
    name: str = ""                 # op or nonterminal name
    guard: Optional[ConstGuard] = None
    children: Tuple["PatternNode", ...] = ()


# -- semantic expressions ------------------------------------------------

@dataclass(frozen=True)
class SemExpr:
    """AST node of a semantic expression."""

    kind: str                      # "num" | "slot" | "reg" | "un" | "bin" | "call"
    value: int = 0
    name: str = ""
    children: Tuple["SemExpr", ...] = ()


@dataclass(frozen=True)
class SemAssign:
    """``dest = expr``; dest is a register name or a memory slot mN."""

    dest_kind: str                 # "reg" | "mem"
    dest: str                      # register name or slot like "m0"
    expr: SemExpr


@dataclass(frozen=True)
class TdlRule:
    name: str
    nonterm: str
    pattern: PatternNode
    asm: Optional[str]
    words: int
    cycles: int
    assignments: Tuple[SemAssign, ...]
    line: int = 0


@dataclass
class TdlDescription:
    name: str
    word_bits: int = 16
    registers: Dict[str, TdlRegister] = field(default_factory=dict)
    counters: List[str] = field(default_factory=list)
    pointers: List[str] = field(default_factory=list)
    nonterm_resources: Dict[str, str] = field(default_factory=dict)
    rules: List[TdlRule] = field(default_factory=list)


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<string>"[^"\n]*")
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><<|>>|<-|[;,()=+\-*&|^~<>])
""", re.VERBOSE)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    line = 1
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise TdlError(f"unexpected character {text[position]!r}",
                           line)
        position = match.end()
        line += match.group(0).count("\n")
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, match.group(0), line))
    tokens.append(("eof", "", line))
    return tokens


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: List[Tuple[str, str, int]]):
        self._tokens = tokens
        self._position = 0

    @property
    def _current(self) -> Tuple[str, str, int]:
        return self._tokens[self._position]

    def _advance(self) -> Tuple[str, str, int]:
        token = self._current
        if token[0] != "eof":
            self._position += 1
        return token

    def _accept(self, text: str) -> bool:
        if self._current[1] == text:
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> None:
        kind, value, line = self._current
        if value != text:
            raise TdlError(f"expected {text!r}, found "
                           f"{value or kind!r}", line)
        self._advance()

    def _ident(self) -> str:
        kind, value, line = self._current
        if kind != "ident":
            raise TdlError(f"expected identifier, found "
                           f"{value or kind!r}", line)
        self._advance()
        return value

    def _number(self) -> int:
        kind, value, line = self._current
        if kind != "number":
            raise TdlError(f"expected number, found {value or kind!r}",
                           line)
        self._advance()
        return int(value)

    # -- description -----------------------------------------------------

    def parse(self) -> TdlDescription:
        self._expect("target")
        description = TdlDescription(name=self._ident())
        self._expect(";")
        while self._current[0] != "eof":
            keyword = self._ident()
            if keyword == "word":
                description.word_bits = self._number()
                self._expect(";")
            elif keyword == "register":
                name = self._ident()
                wide = self._accept("wide")
                if name in description.registers:
                    raise TdlError(f"register {name!r} declared twice",
                                   self._current[2])
                description.registers[name] = TdlRegister(name, wide)
                self._expect(";")
            elif keyword in ("counters", "pointers"):
                names = [self._ident()]
                while self._accept(","):
                    names.append(self._ident())
                self._expect(";")
                getattr(description, keyword).extend(names)
            elif keyword == "nonterm":
                nonterm = self._ident()
                self._expect("resource")
                description.nonterm_resources[nonterm] = self._ident()
                self._expect(";")
            elif keyword == "rule":
                description.rules.append(self._rule())
            else:
                raise TdlError(f"unknown declaration {keyword!r}",
                               self._current[2])
        self._validate(description)
        return description

    def _rule(self) -> TdlRule:
        line = self._current[2]
        name = self._ident()
        nonterm = self._ident()
        self._expect("<-")
        pattern = self._pattern()
        asm: Optional[str] = None
        words, cycles = 1, 1
        if self._accept("asm"):
            kind, value, string_line = self._current
            if kind != "string":
                raise TdlError("asm expects a string", string_line)
            asm = value[1:-1]
            self._advance()
        if self._accept("cost"):
            words = self._number()
            self._expect(",")
            cycles = self._number()
        self._expect("sem")
        assignments = [self._assignment()]
        while self._accept(","):
            assignments.append(self._assignment())
        self._expect(";")
        return TdlRule(name=name, nonterm=nonterm, pattern=pattern,
                       asm=asm, words=words, cycles=cycles,
                       assignments=tuple(assignments), line=line)

    def _pattern(self) -> PatternNode:
        kind, value, line = self._current
        if kind != "ident":
            raise TdlError(f"expected pattern, found {value or kind!r}",
                           line)
        self._advance()
        if value == "mem":
            return PatternNode(kind="mem")
        if value == "const":
            guard = ConstGuard("any")
            if self._accept("("):
                guard = self._guard()
                self._expect(")")
            return PatternNode(kind="const", guard=guard)
        if self._accept("("):
            children = [self._pattern()]
            while self._accept(","):
                children.append(self._pattern())
            self._expect(")")
            return PatternNode(kind="op", name=value,
                               children=tuple(children))
        return PatternNode(kind="nonterm", name=value)

    def _guard(self) -> ConstGuard:
        kind, value, line = self._current
        if value == "=":
            self._advance()
            return ConstGuard("=", self._number())
        if kind == "ident" and value[0] in ("u", "s") \
                and value[1:].isdigit():
            self._advance()
            return ConstGuard(value[0], int(value[1:]))
        raise TdlError(f"bad const guard {value!r} "
                       "(expected uN, sN or =N)", line)

    # -- semantic expressions ---------------------------------------------

    def _assignment(self) -> SemAssign:
        kind, value, line = self._current
        name = self._ident()
        self._expect("=")
        expr = self._expr()
        if re.fullmatch(r"m\d+", name):
            return SemAssign(dest_kind="mem", dest=name, expr=expr)
        return SemAssign(dest_kind="reg", dest=name, expr=expr)

    _LEVELS = [("|",), ("^",), ("&",), ("<<", ">>"), ("+", "-"), ("*",)]

    def _expr(self, level: int = 0) -> SemExpr:
        if level >= len(self._LEVELS):
            return self._unary()
        left = self._expr(level + 1)
        while self._current[1] in self._LEVELS[level]:
            operator = self._advance()[1]
            right = self._expr(level + 1)
            left = SemExpr(kind="bin", name=operator,
                           children=(left, right))
        return left

    def _unary(self) -> SemExpr:
        if self._accept("-"):
            return SemExpr(kind="un", name="-",
                           children=(self._unary(),))
        if self._accept("~"):
            return SemExpr(kind="un", name="~",
                           children=(self._unary(),))
        return self._primary()

    def _primary(self) -> SemExpr:
        kind, value, line = self._current
        if kind == "number":
            self._advance()
            return SemExpr(kind="num", value=int(value))
        if value == "(":
            self._advance()
            inner = self._expr()
            self._expect(")")
            return inner
        if kind == "ident":
            self._advance()
            if value in ("sat", "abs", "wrap", "min", "max") \
                    and self._accept("("):
                children = [self._expr()]
                while self._accept(","):
                    children.append(self._expr())
                self._expect(")")
                return SemExpr(kind="call", name=value,
                               children=tuple(children))
            if re.fullmatch(r"[mc]\d+", value):
                return SemExpr(kind="slot", name=value)
            return SemExpr(kind="reg", name=value)
        raise TdlError(f"expected expression, found {value or kind!r}",
                       line)

    # -- consistency -------------------------------------------------------

    def _validate(self, description: TdlDescription) -> None:
        if not description.rules:
            raise TdlError("description declares no rules")
        for nonterm, resource in description.nonterm_resources.items():
            if resource not in description.registers:
                raise TdlError(
                    f"nonterm {nonterm!r} names unknown resource "
                    f"{resource!r}")
        for rule in description.rules:
            for assignment in rule.assignments:
                if assignment.dest_kind == "reg" \
                        and assignment.dest not in description.registers:
                    raise TdlError(
                        f"rule {rule.name!r} assigns unknown register "
                        f"{assignment.dest!r}", rule.line)


def parse_tdl(text: str) -> TdlDescription:
    """Parse a TDL description from text."""
    return _Parser(_tokenize(text)).parse()
