"""Generate a working TargetModel from a TDL description.

The generated target provides everything the RECORD pipeline consumes:

- a :class:`TreeGrammar` built from the description's rules, with
  clobber sets *derived* from the semantic assignments (a rule clobbers
  exactly the registers it writes);
- a bit-true simulator: each emitted instruction replays its rule's
  semantic assignments (reads before writes, register widths honoured);
- generic loop realization over the declared ``counters`` (a
  set / decrement-and-branch pair of builtin instructions) and AGU
  stream addressing over the declared ``pointers`` (builtin pointer
  load / bump instructions, free post-modification on access).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, Mem, Reg,
)
from repro.codegen.grammar import (
    Cost, EmitContext, Nt, Pat, Rule, Term, TreeGrammar,
)
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.trees import Tree
from repro.sim.machine import MachineState, SimulationError
from repro.targets.model import TargetCapabilities, TargetModel
from repro.tdl.parser import (
    PatternNode, SemAssign, SemExpr, TdlDescription, TdlError, TdlRule,
    parse_tdl,
)

_BUILTIN_OPCODES = ("LOOPSET", "LOOPJNZ", "PTRSET", "PTRADD")


def _pattern_to_grammar(node: PatternNode) -> object:
    if node.kind == "nonterm":
        return Nt(node.name)
    if node.kind == "mem":
        return Term("ref")
    if node.kind == "const":
        guard = node.guard
        return Term("const",
                    (lambda t, g=guard: g.admits(t.value)),
                    guard.describe())
    return Pat(node.name,
               tuple(_pattern_to_grammar(child)
                     for child in node.children))


def _count_slots(node: PatternNode, counts=None) -> Dict[str, int]:
    """Number of mem / const terminal leaves, preorder."""
    if counts is None:
        counts = {"mem": 0, "const": 0}
    if node.kind == "mem":
        counts["mem"] += 1
    elif node.kind == "const":
        counts["const"] += 1
    for child in node.children:
        _count_slots(child, counts)
    return counts


def _written_registers(rule: TdlRule) -> frozenset:
    return frozenset(assignment.dest
                     for assignment in rule.assignments
                     if assignment.dest_kind == "reg")


class TdlTarget(TargetModel):
    """A processor model generated from a textual description."""

    def __init__(self, description: TdlDescription):
        self.description = description
        self.name = f"tdl:{description.name}"
        self.word_bits = description.word_bits
        super().__init__()
        self._rules_by_name: Dict[str, TdlRule] = {}
        for rule in description.rules:
            if rule.name in self._rules_by_name:
                raise TdlError(f"duplicate rule name {rule.name!r}",
                               rule.line)
            self._rules_by_name[rule.name] = rule
        self.STREAM_ADDRESS_REGISTERS = list(description.pointers)
        self.LOOP_ADDRESS_REGISTERS = list(description.counters)
        self.capabilities = TargetCapabilities(
            address_registers=len(description.pointers),
            max_post_modify=8,
            direct_addressing=True,
            has_repeat=False,
            has_hardware_loop=False,
        )
        # Build eagerly so malformed TDL fails at construction time;
        # the base class serves it from this cache.
        self._grammar_cache = self._build_grammar()

    # ------------------------------------------------------------------
    # Grammar generation
    # ------------------------------------------------------------------

    def _build_grammar(self) -> TreeGrammar:
        rules: List[Rule] = [
            Rule("mem", Term("ref"), Cost(0, 0),
                 emit=lambda ctx, args: args[0], name="mem-ref"),
        ]
        resources: Dict[str, Optional[str]] = {"mem": None}
        for nonterm, resource in \
                self.description.nonterm_resources.items():
            resources[nonterm] = resource
        for tdl_rule in self.description.rules:
            rules.append(self._grammar_rule(tdl_rule))
        return TreeGrammar(f"tdl:{self.description.name}", rules,
                           resources)

    def _grammar_rule(self, tdl_rule: TdlRule) -> Rule:
        pattern = _pattern_to_grammar(tdl_rule.pattern)
        result = tdl_rule.nonterm \
            if tdl_rule.nonterm in self.description.nonterm_resources \
            else None

        def emit(ctx: EmitContext, args: List[object],
                 _rule=tdl_rule, _result=result):
            operands = []
            for arg in args:
                if isinstance(arg, Mem):
                    operands.append(arg)
                elif isinstance(arg, int):
                    operands.append(Imm(arg))
            ctx.emit(AsmInstr(opcode=_rule.name,
                              operands=tuple(operands),
                              words=_rule.words, cycles=_rule.cycles))
            return _result

        return Rule(
            nonterm=tdl_rule.nonterm,
            pattern=pattern,
            cost=Cost(tdl_rule.words, tdl_rule.cycles),
            emit=emit,
            name=tdl_rule.name,
            clobbers=_written_registers(tdl_rule),
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def initial_state(self) -> MachineState:
        regs = {name: 0 for name in self.description.registers}
        for name in self.description.counters:
            regs[name] = 0
        for name in self.description.pointers:
            regs[name] = 0
        return MachineState(regs=regs, mem=[0] * 1024)

    def _address(self, state: MachineState, operand: Mem) -> int:
        if operand.mode == "direct":
            return operand.address
        if operand.mode == "indirect":
            return state.reg(operand.areg)
        raise SimulationError(f"unresolved operand {operand}")

    def execute(self, state: MachineState,
                instr: AsmInstr) -> Optional[str]:
        opcode = instr.opcode
        if opcode == "LOOPSET":
            state.regs[instr.operands[0].name] = instr.operands[1].value
            return None
        if opcode == "LOOPJNZ":
            counter = instr.operands[1].name
            state.regs[counter] -= 1
            if state.regs[counter] != 0:
                return instr.operands[0].name
            return None
        if opcode == "PTRSET":
            state.regs[instr.operands[0].name] = instr.operands[1].value
            return None
        if opcode == "PTRADD":
            operand = instr.operands[0]
            state.regs[operand.areg] += operand.post_modify
            return None
        if opcode == "NOP":
            return None
        rule = self._rules_by_name.get(opcode)
        if rule is None:
            raise SimulationError(f"{self.name}: unknown opcode "
                                  f"{opcode!r}")
        self._execute_rule(state, rule, instr)
        return None

    def _execute_rule(self, state: MachineState, rule: TdlRule,
                      instr: AsmInstr) -> None:
        # split operands into memory and immediate slots, preorder
        mems: List[Mem] = []
        consts: List[int] = []
        for operand in instr.operands:
            if isinstance(operand, Mem):
                mems.append(operand)
            elif isinstance(operand, Imm):
                consts.append(operand.value)

        post_modifies: List[Tuple[str, int]] = []
        read_cache: Dict[int, int] = {}

        def mem_value(slot: int) -> int:
            if slot in read_cache:
                return read_cache[slot]
            operand = mems[slot]
            value = state.load(self._address(state, operand))
            if operand.mode == "indirect" and operand.post_modify:
                post_modifies.append((operand.areg,
                                      operand.post_modify))
            read_cache[slot] = value
            return value

        def evaluate(expr: SemExpr) -> int:
            if expr.kind == "num":
                return expr.value
            if expr.kind == "reg":
                return state.reg(expr.name)
            if expr.kind == "slot":
                index = int(expr.name[1:])
                if expr.name[0] == "m":
                    if index >= len(mems):
                        raise SimulationError(
                            f"{rule.name}: no memory slot {expr.name}")
                    return mem_value(index)
                if index >= len(consts):
                    raise SimulationError(
                        f"{rule.name}: no const slot {expr.name}")
                return consts[index]
            if expr.kind == "un":
                value = evaluate(expr.children[0])
                return -value if expr.name == "-" else \
                    ~self.fpc.wrap(value)
            if expr.kind == "bin":
                left = evaluate(expr.children[0])
                right = evaluate(expr.children[1])
                if expr.name in ("&", "|", "^"):
                    left = self.fpc.wrap(left)
                    right = self.fpc.wrap(right)
                if expr.name == "*":
                    left = self.fpc.wrap(left)
                    right = self.fpc.wrap(right)
                table = {
                    "+": lambda: left + right,
                    "-": lambda: left - right,
                    "*": lambda: left * right,
                    "&": lambda: left & right,
                    "|": lambda: left | right,
                    "^": lambda: left ^ right,
                    "<<": lambda: left << (right & 31),
                    ">>": lambda: left >> (right & 31),
                }
                return table[expr.name]()
            if expr.kind == "call":
                values = [evaluate(child) for child in expr.children]
                if expr.name == "sat":
                    return self.fpc.saturate(values[0])
                if expr.name == "wrap":
                    return self.fpc.wrap(values[0])
                if expr.name == "abs":
                    return abs(values[0])
                if expr.name == "min":
                    return min(self.fpc.wrap(values[0]),
                               self.fpc.wrap(values[1]))
                if expr.name == "max":
                    return max(self.fpc.wrap(values[0]),
                               self.fpc.wrap(values[1]))
            raise SimulationError(f"bad semantic expression {expr}")

        # read phase
        pending: List[Tuple[SemAssign, int]] = [
            (assignment, evaluate(assignment.expr))
            for assignment in rule.assignments
        ]
        # write phase
        wide_mask = (1 << 32) - 1
        for assignment, value in pending:
            if assignment.dest_kind == "reg":
                register = self.description.registers[assignment.dest]
                if register.wide:
                    value &= wide_mask
                    if value >= (1 << 31):
                        value -= 1 << 32
                else:
                    value = self.fpc.wrap(value)
                state.regs[assignment.dest] = value
            else:
                slot = int(assignment.dest[1:])
                operand = mems[slot]
                address = self._address(state, operand)
                state.store(address, self.fpc.wrap(value))
                if operand.mode == "indirect" and operand.post_modify \
                        and slot not in read_cache:
                    post_modifies.append((operand.areg,
                                          operand.post_modify))
        for register, step in post_modifies:
            state.regs[register] += step

    # ------------------------------------------------------------------
    # Back-end hooks
    # ------------------------------------------------------------------

    def make_address_register_load(self, register: str,
                                   address: int) -> AsmInstr:
        return AsmInstr(opcode="PTRSET",
                        operands=(Reg(register), Imm(address)),
                        words=2, cycles=2,
                        comment=f"point {register}")

    def make_pointer_bump(self, register: str, stride: int) -> AsmInstr:
        return AsmInstr(opcode="PTRADD",
                        operands=(Mem(symbol=f"<{register}>",
                                      mode="indirect", areg=register,
                                      post_modify=stride),),
                        words=1, cycles=1)

    def finalize_loop(self, count: int, body: List, loop_id: int,
                      depth: int) -> Tuple[List, List]:
        if depth >= len(self.LOOP_ADDRESS_REGISTERS):
            raise TdlError(
                f"{self.name}: loop nesting exceeds the declared "
                f"counters ({len(self.LOOP_ADDRESS_REGISTERS)})")
        counter = self.LOOP_ADDRESS_REGISTERS[depth]
        label = f"L{loop_id}"
        prologue = [
            AsmInstr(opcode="LOOPSET",
                     operands=(Reg(counter), Imm(count))),
            Label(label),
        ]
        epilogue = [
            AsmInstr(opcode="LOOPJNZ",
                     operands=(LabelRef(label), Reg(counter)),
                     words=2, cycles=2),
        ]
        return prologue, epilogue


def load_target(text: str) -> TdlTarget:
    """One-call convenience: TDL text in, working target out."""
    return TdlTarget(parse_tdl(text))
