"""Differential conformance checking.

The paper's central claim is retargetable *correctness*: generated code
must compute the same values as the source DFL program on every target
(Sec. 4.3).  This package validates that claim mechanically, the way the
instruction-selection survey literature recommends -- differential
testing against an independent semantic oracle:

- :mod:`repro.verify.oracle`   -- a pure big-step evaluator over the
  lowered IR, independent of codegen and both simulators;
- :mod:`repro.verify.progen`   -- a seeded, grammar-directed generator
  of well-typed MiniDFL programs;
- :mod:`repro.verify.diff`     -- runs generated programs through every
  {compiler} x {target} x {simulator} cell and classifies mismatches;
- :mod:`repro.verify.shrink`   -- delta-debugging minimizer that reduces
  failing programs to small reproducers;
- :mod:`repro.verify.corpus`   -- JSON (de)serialization of reproducers
  checked into ``tests/corpus/``.

``python -m repro.verify`` drives the whole loop from the command line.
"""

from repro.verify.corpus import (
    CorpusEntry, load_corpus, program_from_spec, program_to_spec,
)
from repro.verify.diff import (
    Cell, CellOutcome, ConformanceReport, MismatchClass, VerifySession,
    check_program, run_conformance,
)
from repro.verify.oracle import Oracle, OracleError
from repro.verify.progen import ProgenConfig, generate_inputs, generate_program
from repro.verify.shrink import shrink_program

__all__ = [
    "Cell",
    "CellOutcome",
    "ConformanceReport",
    "CorpusEntry",
    "MismatchClass",
    "Oracle",
    "OracleError",
    "ProgenConfig",
    "VerifySession",
    "check_program",
    "generate_inputs",
    "generate_program",
    "load_corpus",
    "program_from_spec",
    "program_to_spec",
    "run_conformance",
    "shrink_program",
]
