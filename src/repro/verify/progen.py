"""Grammar-directed generation of well-typed MiniDFL programs.

Generalizes the ad-hoc straight-line generator that
:mod:`repro.selftest.generator` grew for fault coverage into a seeded,
weighted grammar over the *whole* lowered-program shape: straight-line
blocks, counted loops with affine array walks, multiply-accumulate
chains, saturating stores.  The weights deliberately steer generated
programs into the code shapes the backends specialize on --

- ``acc + a[i]*h[i]`` sums (the RPT/MAC idiom and accumulator
  promotion),
- forward/backward sequential array walks (address-generation
  post-modify selection),
- ``sat(...)`` mixed with wrapping statements (overflow mode-switch
  minimization)

-- because those are exactly the paths where a selector or simulator
bug would hide from uniform random expressions.

Everything is driven by one explicit ``random.Random`` instance;
identical ``(seed, config)`` always yields the identical program, on
any platform, under any test parallelism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.dfg import ArrayIndex, DataFlowGraph
from repro.ir.program import Block, Loop, Program, Symbol

# Operators every shipped target can cover (the portable subset; see
# the grammar tables in repro.targets.*).  Weights bias toward the
# arithmetic core so MAC shapes appear often.
DEFAULT_OPERATOR_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("add", 6), ("sub", 4), ("mul", 5),
    ("and", 1), ("or", 1), ("xor", 1),
    ("neg", 1), ("abs", 1),
    ("shl", 1), ("shr", 1),
)


@dataclass(frozen=True)
class ProgenConfig:
    """Shape parameters of the program grammar.

    The defaults generate small but structurally rich programs: a
    couple of straight-line regions around a counted loop that walks
    input arrays and accumulates.
    """

    scalars: int = 3             # scalar input variables
    arrays: int = 2              # array input variables
    array_size: int = 6          # elements per array
    blocks: int = 2              # straight-line top-level regions
    statements: int = 3          # assignments per block
    loops: int = 1               # counted top-level loops
    max_depth: int = 3           # expression depth
    sat_probability: float = 0.15
    const_lo: int = 0
    const_hi: int = 255
    operator_weights: Tuple[Tuple[str, int], ...] = DEFAULT_OPERATOR_WEIGHTS

    def __post_init__(self) -> None:
        if self.scalars < 1:
            raise ValueError("need at least one scalar input")
        if self.arrays and self.array_size < 2:
            raise ValueError("arrays need at least two elements")


def _weighted_choice(rng: random.Random,
                     weights: Sequence[Tuple[str, int]]) -> str:
    total = sum(weight for _name, weight in weights)
    pick = rng.randrange(total)
    for name, weight in weights:
        pick -= weight
        if pick < 0:
            return name
    return weights[-1][0]


class _Generator:
    """One program's worth of generation state."""

    def __init__(self, rng: random.Random, config: ProgenConfig):
        self.rng = rng
        self.config = config
        self.scalar_inputs = [f"i{k}" for k in range(config.scalars)]
        self.array_inputs = [f"a{k}" for k in range(config.arrays)]
        self.output_counter = 0

    # -- expression grammar ---------------------------------------------

    def leaf(self, in_loop: bool) -> "tuple":
        """('const', v) | ('scalar', name) | ('array', name, index)."""
        rng, config = self.rng, self.config
        roll = rng.random()
        if roll < 0.2:
            return ("const", rng.randint(config.const_lo, config.const_hi))
        if in_loop and self.array_inputs and roll < 0.65:
            return ("array", rng.choice(self.array_inputs),
                    self.loop_index())
        if self.array_inputs and roll < 0.3:
            return ("array", rng.choice(self.array_inputs),
                    ArrayIndex(0, rng.randrange(config.array_size)))
        return ("scalar", rng.choice(self.scalar_inputs))

    def loop_index(self) -> ArrayIndex:
        """An affine in-bounds walk for the canonical loop trip count.

        Loops generated here always run ``array_size`` iterations, so a
        forward walk needs offset 0 and a backward walk needs offset
        ``array_size - 1`` to stay in bounds.
        """
        if self.rng.random() < 0.75:
            return ArrayIndex(1, 0)
        return ArrayIndex(-1, self.config.array_size - 1)

    def expression(self, dfg: DataFlowGraph, depth: int,
                   in_loop: bool) -> int:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            return self.emit_leaf(dfg, self.leaf(in_loop))
        operator = _weighted_choice(rng, self.config.operator_weights)
        if operator in ("neg", "abs"):
            return dfg.compute(operator,
                               self.expression(dfg, depth - 1, in_loop))
        if operator in ("shl", "shr"):
            return dfg.compute(operator,
                               self.expression(dfg, depth - 1, in_loop),
                               dfg.const(rng.randint(1, 4)))
        return dfg.compute(operator,
                           self.expression(dfg, depth - 1, in_loop),
                           self.expression(dfg, depth - 1, in_loop))

    def emit_leaf(self, dfg: DataFlowGraph, leaf: "tuple") -> int:
        if leaf[0] == "const":
            return dfg.const(leaf[1])
        if leaf[0] == "scalar":
            return dfg.ref(leaf[1])
        return dfg.ref(leaf[1], leaf[2])

    def maybe_sat(self, dfg: DataFlowGraph, node: int) -> int:
        if self.rng.random() < self.config.sat_probability:
            return dfg.compute("sat", node)
        return node

    # -- statement / region grammar -------------------------------------

    def fresh_output(self, program: Program) -> str:
        name = f"o{self.output_counter}"
        self.output_counter += 1
        program.declare(Symbol(name=name, role="output"))
        return name

    def straight_block(self, program: Program) -> Block:
        dfg = DataFlowGraph()
        for _ in range(self.config.statements):
            node = self.expression(dfg, self.config.max_depth,
                                   in_loop=False)
            dfg.write(self.fresh_output(program),
                      self.maybe_sat(dfg, node))
        return Block(dfg=dfg)

    def mac_loop(self, program: Program) -> Loop:
        """A counted loop accumulating products of array walks.

        ``s := s + a[i] * b[i]`` is the shape every DSP backend fuses
        (RPT/MAC on the TC25 family, parallel-move MAC on the M56); a
        random extra statement rides along so the loop body is not
        always the pure idiom.
        """
        rng, config = self.rng, self.config
        acc = self.fresh_output(program)
        dfg = DataFlowGraph()
        product = dfg.compute(
            "mul",
            self.emit_leaf(dfg, ("array", rng.choice(self.array_inputs),
                                 self.loop_index())),
            self.emit_leaf(dfg, self.leaf(in_loop=True)))
        summed = dfg.compute("add", dfg.ref(acc), product)
        dfg.write(acc, self.maybe_sat(dfg, summed))
        if rng.random() < 0.4:
            extra = self.expression(dfg, config.max_depth - 1,
                                    in_loop=True)
            dfg.write(self.fresh_output(program),
                      self.maybe_sat(dfg, extra))
        return Loop(var="i", count=config.array_size, body=[Block(dfg=dfg)])

    def map_loop(self, program: Program) -> Loop:
        """A counted loop writing an output array element-wise."""
        config = self.config
        out = f"o{self.output_counter}"
        self.output_counter += 1
        program.declare(Symbol(name=out, size=config.array_size,
                               role="output"))
        dfg = DataFlowGraph()
        node = self.expression(dfg, config.max_depth - 1, in_loop=True)
        dfg.write(out, self.maybe_sat(dfg, node), ArrayIndex(1, 0))
        return Loop(var="i", count=config.array_size, body=[Block(dfg=dfg)])

    def build(self, name: str) -> Program:
        program = Program(name=name)
        for scalar in self.scalar_inputs:
            program.declare(Symbol(name=scalar, role="input"))
        for array in self.array_inputs:
            program.declare(Symbol(name=array, size=self.config.array_size,
                                   role="input"))
        items: List = []
        for _ in range(self.config.blocks):
            items.append(self.straight_block(program))
        for _ in range(self.config.loops):
            if self.array_inputs and self.rng.random() < 0.7:
                items.append(self.mac_loop(program))
            elif self.array_inputs:
                items.append(self.map_loop(program))
        self.rng.shuffle(items)
        program.body = items
        return program


def generate_program(rng: random.Random, index: int = 0,
                     config: Optional[ProgenConfig] = None) -> Program:
    """One random well-typed program drawn from the grammar."""
    generator = _Generator(rng, config or ProgenConfig())
    return generator.build(f"progen{index}")


def generate_inputs(rng: random.Random, program: Program,
                    lo: int = -170, hi: int = 170) -> Dict[str, object]:
    """A seeded input environment for a generated program.

    The default range keeps 16x16 products inside the 32-bit
    accumulator with margin (the DSPStone operand convention), so
    conformance failures indicate bugs, not benchmark-input overflow.
    """
    inputs: Dict[str, object] = {}
    for name, symbol in program.symbols.items():
        if symbol.role != "input":
            continue
        if symbol.is_array:
            inputs[name] = [rng.randint(lo, hi)
                            for _ in range(symbol.size)]
        else:
            inputs[name] = rng.randint(lo, hi)
    return inputs


# The historical self-test operator list, in its historical order: the
# straight-line subset must replay the exact same rng call sequence so
# every recorded fault-coverage seed keeps producing the same programs.
_SELFTEST_OPERATORS = ["add", "sub", "mul", "and", "or", "xor", "neg",
                       "abs", "shl", "shr"]


def straight_line_program(rng: random.Random, index: int,
                          variables: int = 4, statements: int = 4,
                          depth: int = 3) -> Program:
    """Straight-line subset (the self-test generator's shape).

    Signature- and distribution-compatible with the historical
    ``repro.selftest.generator._random_program``: same rng call
    sequence, same declaration order, so the fault-coverage corpus and
    its seeds are unchanged by the move into this module.
    """
    program = Program(name=f"selftest{index}")
    input_names = [f"i{k}" for k in range(variables)]
    for name in input_names:
        program.declare(Symbol(name=name, role="input"))
    output_names = [f"o{k}" for k in range(statements)]
    for name in output_names:
        program.declare(Symbol(name=name, role="output"))
    dfg = DataFlowGraph()

    def expression(levels: int) -> int:
        if levels <= 0 or rng.random() < 0.3:
            if rng.random() < 0.25:
                return dfg.const(rng.randint(0, 255))
            return dfg.ref(rng.choice(input_names))
        operator = rng.choice(_SELFTEST_OPERATORS)
        if operator in ("neg", "abs"):
            return dfg.compute(operator, expression(levels - 1))
        if operator in ("shl", "shr"):
            return dfg.compute(operator, expression(levels - 1),
                               dfg.const(rng.randint(1, 4)))
        return dfg.compute(operator, expression(levels - 1),
                           expression(levels - 1))

    for name in output_names:
        dfg.write(name, expression(depth))
    program.body = [Block(dfg=dfg)]
    return program
