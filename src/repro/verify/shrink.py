"""Delta-debugging minimization of failing conformance programs.

Given a program and a predicate ("this program still exposes the
bug"), the shrinker greedily applies structural reductions until a
fixpoint, always re-validating the predicate after each candidate:

1. drop whole program items (blocks / loops),
2. collapse a loop to a single iteration, then inline its body,
3. drop individual block writes,
4. replace a compute node by one of its operands,
5. shrink constants toward zero and array reads toward scalar reads.

Reductions operate on the :mod:`repro.verify.corpus` spec form (plain
dicts), so the shrinker can never construct an un-serializable
program, and the surviving reproducer is exactly what gets written to
``tests/corpus/``.  The greedy pass order biases toward removing big
structure first, which is what makes fault reproducers land at a
handful of instructions.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Optional, Tuple

from repro.ir.program import Program
from repro.verify.corpus import program_from_spec, program_to_spec

Predicate = Callable[[Program], bool]


def shrink_program(program: Program, predicate: Predicate,
                   max_probes: int = 400) -> Program:
    """Smallest program (under the reduction moves) still failing.

    ``predicate`` must return ``True`` for ``program`` itself; raises
    ``ValueError`` otherwise (a shrink run on a passing program is
    always a harness bug upstream).  ``max_probes`` bounds the total
    number of predicate evaluations.
    """
    if not predicate(program):
        raise ValueError("predicate does not hold on the original program")
    spec = program_to_spec(program)
    probes = [0]

    def holds(candidate_spec: dict) -> bool:
        if probes[0] >= max_probes:
            return False
        probes[0] += 1
        try:
            candidate = program_from_spec(candidate_spec)
            return bool(predicate(candidate))
        except Exception:
            # A reduction can produce a program the toolchain rejects
            # (e.g. no outputs left); that candidate is simply not a
            # reproducer.
            return False

    changed = True
    while changed and probes[0] < max_probes:
        changed = False
        for candidate in _reductions(spec):
            if holds(candidate):
                spec = candidate
                changed = True
                break
    # Unused-declaration stripping changes the memory map, so it is
    # predicate-checked like any other reduction, not assumed safe.
    stripped = _drop_unused_symbols(spec)
    if stripped != spec and holds(stripped):
        spec = stripped
    return program_from_spec(spec)


# ----------------------------------------------------------------------
# Reduction moves (each yields candidate specs, most aggressive first)
# ----------------------------------------------------------------------

def _reductions(spec: dict) -> Iterator[dict]:
    yield from _drop_items(spec)
    yield from _flatten_loops(spec)
    yield from _drop_writes(spec)
    yield from _simplify_exprs(spec)


def _drop_items(spec: dict) -> Iterator[dict]:
    """Remove one program item (at any nesting level)."""
    for path in _item_paths(spec["body"]):
        candidate = copy.deepcopy(spec)
        items = _items_at(candidate["body"], path[:-1])
        del items[path[-1]]
        if candidate["body"]:
            yield candidate


def _flatten_loops(spec: dict) -> Iterator[dict]:
    """Reduce a loop's trip count to 1, then splice its body inline."""
    for path in _item_paths(spec["body"]):
        item = _items_at(spec["body"], path[:-1])[path[-1]]
        if item["kind"] != "loop":
            continue
        if item["count"] > 1:
            candidate = copy.deepcopy(spec)
            _items_at(candidate["body"], path[:-1])[path[-1]]["count"] = 1
            yield candidate
        else:
            candidate = copy.deepcopy(spec)
            items = _items_at(candidate["body"], path[:-1])
            items[path[-1]:path[-1] + 1] = \
                copy.deepcopy(item["body"])
            if candidate["body"]:
                yield candidate


def _drop_writes(spec: dict) -> Iterator[dict]:
    """Remove one write from one block."""
    for path in _item_paths(spec["body"]):
        item = _items_at(spec["body"], path[:-1])[path[-1]]
        if item["kind"] != "block" or len(item["writes"]) <= 1:
            continue
        for index in range(len(item["writes"])):
            candidate = copy.deepcopy(spec)
            block = _items_at(candidate["body"], path[:-1])[path[-1]]
            del block["writes"][index]
            yield candidate


def _simplify_exprs(spec: dict) -> Iterator[dict]:
    """Shrink one expression node somewhere in the program."""
    for path in _item_paths(spec["body"]):
        item = _items_at(spec["body"], path[:-1])[path[-1]]
        if item["kind"] != "block":
            continue
        for write_index, write in enumerate(item["writes"]):
            for replacement in _expr_reductions(write["expr"]):
                candidate = copy.deepcopy(spec)
                block = _items_at(candidate["body"], path[:-1])[path[-1]]
                block["writes"][write_index]["expr"] = replacement
                yield candidate


def _expr_reductions(expr: dict) -> Iterator[dict]:
    """Candidate replacements for one expression tree, smallest first."""
    if expr["kind"] == "compute":
        # Hoist each child over the operator.
        for child in expr["children"]:
            yield copy.deepcopy(child)
        # Recurse into children.
        for index, child in enumerate(expr["children"]):
            for replacement in _expr_reductions(child):
                candidate = copy.deepcopy(expr)
                candidate["children"][index] = replacement
                yield candidate
    elif expr["kind"] == "const" and expr["value"] not in (0, 1):
        yield {"kind": "const", "value": 0}
        yield {"kind": "const", "value": 1}
        yield {"kind": "const", "value": expr["value"] // 2}
    elif expr["kind"] == "ref" and expr.get("index") is not None:
        # Array walk -> fixed element 0 -> often enables dropping the
        # loop entirely on a later pass.
        if expr["index"]["coeff"] != 0 or expr["index"]["offset"] != 0:
            yield {"kind": "ref", "symbol": expr["symbol"],
                   "index": {"coeff": 0, "offset": 0}}


# ----------------------------------------------------------------------
# Spec navigation helpers
# ----------------------------------------------------------------------

def _item_paths(items: List[dict],
                prefix: Tuple[int, ...] = ()) -> List[Tuple[int, ...]]:
    """Paths to every item, outermost first (a path is index steps)."""
    paths: List[Tuple[int, ...]] = []
    for index, item in enumerate(items):
        path = prefix + (index,)
        paths.append(path)
        if item["kind"] == "loop":
            paths.extend(_item_paths(item["body"], path))
    return paths


def _items_at(items: List[dict], path: Tuple[int, ...]) -> List[dict]:
    """The item list addressed by a (possibly empty) container path."""
    current = items
    for step in path:
        current = current[step]["body"]
    return current


def _drop_unused_symbols(spec: dict) -> dict:
    """Remove declared inputs the shrunken body no longer reads."""
    used: set = set()

    def scan_expr(expr: dict) -> None:
        if expr["kind"] == "ref":
            used.add(expr["symbol"])
        for child in expr.get("children", ()):
            scan_expr(child)

    def scan_items(items: List[dict]) -> None:
        for item in items:
            if item["kind"] == "block":
                for write in item["writes"]:
                    used.add(write["symbol"])
                    scan_expr(write["expr"])
            else:
                scan_items(item["body"])

    scan_items(spec["body"])
    candidate = copy.deepcopy(spec)
    candidate["symbols"] = [
        entry for entry in candidate["symbols"]
        if entry["name"] in used or entry["role"] != "input"]
    # Outputs that are never written anymore can go as well.
    candidate["symbols"] = [
        entry for entry in candidate["symbols"]
        if entry["role"] != "output" or entry["name"] in used]
    return candidate
