"""Serialization of conformance reproducers.

A corpus entry is one JSON file under ``tests/corpus/``: a complete
lowered program (symbols + body, expressions as nested trees), the
input environment that exposed the failure, the seed it came from, and
-- for fault-injection reproducers -- the decoder fault to re-inject.
``tests/verify/test_corpus_replay.py`` replays every entry as part of
tier-1, so a reproducer checked in by the shrinker becomes a permanent
regression test.

The format is deliberately dumb (plain dicts, no pickling, no object
identity): an entry must stay readable and replayable across arbitrary
refactors of the IR classes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.ir.dfg import ArrayIndex, DataFlowGraph
from repro.ir.ops import OpKind
from repro.ir.program import Block, Loop, Program, ProgramItem, Symbol

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Expression trees  (nested dicts; sharing is re-established by the
# DFG builder's interning on load)
# ----------------------------------------------------------------------

def _index_to_spec(index: Optional[ArrayIndex]) -> Optional[dict]:
    if index is None:
        return None
    return {"coeff": index.coeff, "offset": index.offset}


def _index_from_spec(spec: Optional[dict]) -> Optional[ArrayIndex]:
    if spec is None:
        return None
    return ArrayIndex(coeff=int(spec["coeff"]), offset=int(spec["offset"]))


def _node_to_spec(dfg: DataFlowGraph, ident: int) -> dict:
    node = dfg.node(ident)
    if node.kind is OpKind.CONST:
        return {"kind": "const", "value": node.value}
    if node.kind is OpKind.REF:
        return {"kind": "ref", "symbol": node.symbol,
                "index": _index_to_spec(node.index)}
    return {"kind": "compute", "op": node.operator.name,
            "children": [_node_to_spec(dfg, oid)
                         for oid in node.operands]}


def _node_from_spec(dfg: DataFlowGraph, spec: dict) -> int:
    kind = spec["kind"]
    if kind == "const":
        return dfg.const(int(spec["value"]))
    if kind == "ref":
        return dfg.ref(spec["symbol"], _index_from_spec(spec.get("index")))
    if kind == "compute":
        children = [_node_from_spec(dfg, child)
                    for child in spec["children"]]
        return dfg.compute(spec["op"], *children)
    raise ValueError(f"unknown expression kind {kind!r}")


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------

def _items_to_spec(items: List[ProgramItem]) -> List[dict]:
    specs: List[dict] = []
    for item in items:
        if isinstance(item, Block):
            specs.append({
                "kind": "block",
                "writes": [{
                    "symbol": output.symbol,
                    "index": _index_to_spec(output.index),
                    "expr": _node_to_spec(item.dfg, output.node),
                } for output in item.dfg.outputs],
            })
        elif isinstance(item, Loop):
            specs.append({
                "kind": "loop",
                "var": item.var,
                "count": item.count,
                "body": _items_to_spec(item.body),
            })
        else:
            raise ValueError(f"unexpected program item {item!r}")
    return specs


def _items_from_spec(specs: List[dict]) -> List[ProgramItem]:
    items: List[ProgramItem] = []
    for spec in specs:
        if spec["kind"] == "block":
            dfg = DataFlowGraph()
            for write in spec["writes"]:
                node = _node_from_spec(dfg, write["expr"])
                dfg.write(write["symbol"], node,
                          _index_from_spec(write.get("index")))
            items.append(Block(dfg=dfg))
        elif spec["kind"] == "loop":
            items.append(Loop(var=spec["var"], count=int(spec["count"]),
                              body=_items_from_spec(spec["body"])))
        else:
            raise ValueError(f"unknown item kind {spec['kind']!r}")
    return items


def program_to_spec(program: Program) -> dict:
    """A JSON-able dict capturing the whole lowered program."""
    return {
        "name": program.name,
        "symbols": [{
            "name": symbol.name,
            "size": symbol.size,
            "role": symbol.role,
            "init": symbol.init,
        } for symbol in program.symbols.values()],
        "body": _items_to_spec(program.body),
    }


def program_from_spec(spec: dict) -> Program:
    """Rebuild a :class:`Program` from :func:`program_to_spec` output."""
    program = Program(name=spec["name"])
    for entry in spec["symbols"]:
        program.declare(Symbol(name=entry["name"], size=entry["size"],
                               role=entry["role"], init=entry["init"]))
    program.body = _items_from_spec(spec["body"])
    return program


# ----------------------------------------------------------------------
# Failure-class fingerprints
# ----------------------------------------------------------------------
#
# A campaign checking 10^5-10^6 programs against one real bug produces
# thousands of mismatches that are all the *same* bug wearing different
# generated clothes.  The failure-class fingerprint collapses them: it
# hashes the triage class, the matrix cell, and the *normalized* shrunk
# program -- alpha-renamed symbols, scrubbed program name, bucketed
# constants -- so two reproducers differing only in generator
# accidents (symbol numbering, which scalar got picked, a 37 where
# another seed drew 41) dedup to one class, while genuinely different
# shapes (a MAC loop vs a straight-line add) stay distinct.

def normalize_spec(spec: dict) -> dict:
    """Canonical form of a program spec for fingerprinting.

    Symbols are renamed ``s0, s1, ...`` in first-use order (writes
    before reads, body order), the program name is dropped, and
    constants outside ``{-1, 0, 1}`` are bucketed to ``2`` (the
    shrinker drives constants toward 0/1, so surviving magnitudes are
    generator noise, not bug structure).  Purely a fingerprint-side
    view: the stored reproducer keeps its real names and constants.
    """
    renames: Dict[str, str] = {}

    def rename(name: str) -> str:
        if name not in renames:
            renames[name] = f"s{len(renames)}"
        return renames[name]

    def norm_expr(expr: dict) -> dict:
        if expr["kind"] == "const":
            value = expr["value"]
            return {"kind": "const",
                    "value": value if value in (-1, 0, 1) else 2}
        if expr["kind"] == "ref":
            return {"kind": "ref", "symbol": rename(expr["symbol"]),
                    "index": expr.get("index")}
        return {"kind": "compute", "op": expr["op"],
                "children": [norm_expr(child)
                             for child in expr["children"]]}

    def norm_items(items: List[dict]) -> List[dict]:
        normed: List[dict] = []
        for item in items:
            if item["kind"] == "block":
                normed.append({"kind": "block", "writes": [{
                    "symbol": rename(write["symbol"]),
                    "index": write.get("index"),
                    "expr": norm_expr(write["expr"]),
                } for write in item["writes"]]})
            else:
                normed.append({"kind": "loop", "var": item["var"],
                               "count": item["count"],
                               "body": norm_items(item["body"])})
        return normed

    body = norm_items(spec["body"])
    symbols = sorted(
        ({"name": rename(entry["name"]), "size": entry["size"],
          "role": entry["role"], "init": entry["init"]}
         for entry in spec["symbols"]),
        key=lambda entry: int(entry["name"][1:]))
    return {"symbols": symbols, "body": body}


def failure_fingerprint(mismatch_class: str,
                        cell: Optional[Dict[str, str]],
                        program_spec: dict) -> str:
    """The dedup key of one failure class.

    ``triage class + matrix cell (compiler/target/sim) + hash of the
    normalized shrunk spec``, digested to 16 hex chars.  Everything
    hashed is deterministic, so the same bug found by any seed, shard
    count or campaign produces the same fingerprint.
    """
    import hashlib
    payload = json.dumps({
        "class": mismatch_class,
        "cell": cell or {},
        "spec": normalize_spec(program_spec),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Corpus entries
# ----------------------------------------------------------------------

@dataclass
class CorpusEntry:
    """One checked-in reproducer.

    Attributes:
        name: entry identifier (also the file stem).
        seed: generator seed the failing program came from.
        program_spec: serialized program (see :func:`program_to_spec`).
        inputs: input environment that exposed the failure.
        fault: optional ``(original, replacement)`` decoder fault to
            inject on replay; ``None`` for clean-matrix regressions.
        cell: optional ``{"compiler", "target", "sim"}`` the failure
            was observed in; replay checks the full matrix regardless.
        mismatch_class: classification recorded at shrink time.
        note: free-text triage note.
        fingerprint: failure-class fingerprint recorded at shrink time
            (see :func:`failure_fingerprint`); auto-filing dedups on
            it, so one bug never accumulates near-identical entries.
    """

    name: str
    seed: int
    program_spec: dict
    inputs: Dict[str, object] = field(default_factory=dict)
    fault: Optional[Tuple[str, str]] = None
    cell: Optional[Dict[str, str]] = None
    mismatch_class: str = ""
    note: str = ""
    fingerprint: str = ""

    def class_fingerprint(self) -> str:
        """The entry's failure-class fingerprint (stored or derived)."""
        return self.fingerprint or failure_fingerprint(
            self.mismatch_class, self.cell, self.program_spec)

    @property
    def program(self) -> Program:
        """The deserialized program (rebuilt on each access)."""
        return program_from_spec(self.program_spec)

    def to_json(self) -> dict:
        """The on-disk representation."""
        return {
            "format": FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "program": self.program_spec,
            "inputs": self.inputs,
            "fault": list(self.fault) if self.fault else None,
            "cell": self.cell,
            "mismatch_class": self.mismatch_class,
            "note": self.note,
            "fingerprint": self.fingerprint,
        }

    @staticmethod
    def from_json(payload: dict) -> "CorpusEntry":
        """Parse the on-disk representation."""
        if payload.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported corpus format {payload.get('format')!r}")
        fault = payload.get("fault")
        return CorpusEntry(
            name=payload["name"],
            seed=int(payload["seed"]),
            program_spec=payload["program"],
            inputs=payload.get("inputs", {}),
            fault=(fault[0], fault[1]) if fault else None,
            cell=payload.get("cell"),
            mismatch_class=payload.get("mismatch_class", ""),
            note=payload.get("note", ""),
            fingerprint=payload.get("fingerprint", ""),
        )

    def write(self, directory: Path) -> Path:
        """Write the entry to ``directory/<name>.json``; returns the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        path.write_text(json.dumps(self.to_json(), indent=2,
                                   sort_keys=False) + "\n")
        return path


def default_corpus_dir() -> Path:
    """``tests/corpus/`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "corpus"


def load_corpus(directory: Optional[Path] = None) -> List[CorpusEntry]:
    """All corpus entries in ``directory`` (default checked-in corpus)."""
    directory = Path(directory) if directory else default_corpus_dir()
    entries: List[CorpusEntry] = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.json")):
        entries.append(CorpusEntry.from_json(
            json.loads(path.read_text())))
    return entries
