"""Command-line conformance runner: ``python -m repro.verify``.

Examples::

    # 50 programs, full matrix, fail on any unexplained mismatch
    python -m repro.verify --count 50 --seed 0

    # quick smoke on two targets with a 30s budget + JSON artifact
    python -m repro.verify --count 10 --budget 30 \\
        --targets tc25,risc16 --json conformance.json

    # heavy traffic: 4 worker processes + the persistent artifact
    # cache (.repro-cache/); a repeated run compiles nothing at all
    python -m repro.verify --count 500 --jobs 4

    # prove the harness detects a seeded decoder fault, shrink the
    # witness, and write the reproducer into tests/corpus/
    python -m repro.verify --count 20 --inject-fault ADD:SUB \\
        --write-corpus

    # a sharded, resumable, self-filing conformance campaign
    python -m repro.verify campaign --programs 100000 --shards 64 \\
        --budget 600 --resume --file-new-classes

Exit status: 0 when the matrix is clean (or, under ``--inject-fault``,
when the fault was detected); 1 otherwise.  Campaigns additionally
exit 0 when stopped by ``--budget`` (the state file resumes them) and
1 on any shard error.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

from repro.selftest.generator import Fault
from repro.verify.corpus import CorpusEntry, default_corpus_dir, \
    failure_fingerprint, load_corpus, program_to_spec
from repro.verify.diff import (
    DEFAULT_TARGETS, check_program, instruction_count, run_conformance,
    still_fails,
)
from repro.verify.progen import ProgenConfig, generate_inputs, \
    generate_program
from repro.verify.shrink import shrink_program


def _parse_targets(text: str):
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    for name in names:
        if name not in DEFAULT_TARGETS:
            raise argparse.ArgumentTypeError(
                f"unknown target {name!r}; choose from "
                f"{', '.join(DEFAULT_TARGETS)}")
    return names


def _default_jobs() -> int:
    """``--jobs`` default: the single ``REPRO_JOBS`` override the farm
    honors (see :func:`repro.evalx.farm.jobs_override`), else 1 --
    serial stays the no-surprises default for interactive runs."""
    from repro.evalx.farm import jobs_override
    return jobs_override() or 1


def _parse_fault(text: str) -> Fault:
    try:
        original, replacement = text.split(":")
    except ValueError:
        raise argparse.ArgumentTypeError(
            "fault must be ORIGINAL:REPLACEMENT, e.g. ADD:SUB")
    return Fault(original, replacement)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.verify`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.verify",
        description="differential conformance checking: generated "
                    "programs x {compilers} x {targets} x {simulators} "
                    "against the IR-level oracle")
    parser.add_argument("--count", type=int, default=20,
                        help="programs to generate (default 20)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fuzzer seed (default 0)")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds; the run "
                             "stops early when exhausted")
    parser.add_argument("--targets", type=_parse_targets,
                        default=DEFAULT_TARGETS, metavar="T1,T2,...",
                        help="comma-separated targets "
                             f"(default {','.join(DEFAULT_TARGETS)})")
    parser.add_argument("--inputs", type=int, default=2,
                        help="input sets per program (default 2)")
    parser.add_argument("--jobs", type=int, default=_default_jobs(),
                        metavar="N",
                        help="worker processes for the matrix checks "
                             "(default: $REPRO_JOBS if set, else 1 = "
                             "serial; same triage report at any value)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="use the persistent compilation-artifact "
                             "cache (default on; --no-cache disables)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache directory "
                             "(default .repro-cache/)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the mismatch report to this path")
    parser.add_argument("--inject-fault", type=_parse_fault, default=None,
                        metavar="ORIG:REPL",
                        help="inject a decoder fault into every "
                             "simulation; the run then must DETECT it")
    parser.add_argument("--write-corpus", action="store_true",
                        help="shrink failures and write reproducers "
                             "into tests/corpus/")
    parser.add_argument("--corpus-dir", type=Path,
                        default=None,
                        help="override the reproducer directory")
    parser.add_argument("--max-shrink", type=int, default=5,
                        help="failing programs to minimize per run "
                             "(default 5)")
    return parser


def _shrink_and_record(args, report) -> list:
    """Minimize each failing program; optionally write corpus entries.

    Reproducers dedup by failure-class fingerprint (triage class +
    matrix cell + normalized shrunk spec): a fingerprint already in
    the corpus directory -- or already shrunk earlier in this run --
    is reported but not filed again, so one bug surfacing in many
    generated programs yields exactly one corpus entry.
    """
    written = []
    seen_programs = set()
    directory = args.corpus_dir or default_corpus_dir()
    known_classes = {entry.class_fingerprint(): entry.name
                     for entry in load_corpus(directory)} \
        if args.write_corpus else {}
    for verdict, outcome in report.mismatches:
        if verdict.seed in seen_programs:
            continue
        if len(seen_programs) >= args.max_shrink:
            break
        seen_programs.add(verdict.seed)
        rng = random.Random(verdict.seed)
        index = verdict.seed % 1_000_000
        program = generate_program(rng, index)
        all_sets = [generate_inputs(rng, program)
                    for _ in range(args.inputs)]
        cell = outcome.cell if outcome.cell.sim != "*" else None
        # Pin the shrink to one exposing input set, so the recorded
        # reproducer is self-contained: (program, inputs) must fail on
        # replay with exactly what the corpus entry stores.
        input_sets = next(
            ([candidate] for candidate in all_sets
             if still_fails(program, [candidate], targets=args.targets,
                            fault=args.inject_fault, cell=cell)),
            all_sets)
        try:
            small = shrink_program(
                program,
                lambda candidate: still_fails(
                    candidate, input_sets, targets=args.targets,
                    fault=args.inject_fault, cell=cell))
        except ValueError:
            # Not reproducible standalone (e.g. decode-cache dependent);
            # record the unshrunk program instead.
            small = program
        kept = set(small.symbols)
        small_spec = program_to_spec(small)
        cell_dict = {"compiler": outcome.cell.compiler,
                     "target": outcome.cell.target,
                     "sim": outcome.cell.sim}
        fingerprint = failure_fingerprint(outcome.mismatch_class,
                                          cell_dict, small_spec)
        entry = CorpusEntry(
            name=f"shrunk-seed{verdict.seed}",
            seed=verdict.seed,
            program_spec=small_spec,
            inputs={k: v for inputs in input_sets[:1]
                    for k, v in inputs.items() if k in kept},
            fault=((args.inject_fault.original,
                    args.inject_fault.replacement)
                   if args.inject_fault else None),
            cell=cell_dict,
            mismatch_class=("injected-fault" if args.inject_fault
                            else outcome.mismatch_class),
            note="auto-minimized by repro.verify.shrink",
            fingerprint=fingerprint)
        try:
            size = instruction_count(small,
                                     target_name=outcome.cell.target)
        except Exception:
            size = -1
        print(f"  shrunk {verdict.name} (seed {verdict.seed}) -> "
              f"{size} instructions on {outcome.cell.target} "
              f"(class {fingerprint})")
        if args.write_corpus:
            if fingerprint in known_classes:
                print(f"  duplicate of class {fingerprint} "
                      f"({known_classes[fingerprint]}); not filed")
            else:
                path = entry.write(directory)
                known_classes[fingerprint] = entry.name
                print(f"  wrote {path}")
        written.append(entry)
    return written


def build_campaign_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.verify campaign`` argument parser."""
    from repro.verify.campaign import PROFILES
    parser = argparse.ArgumentParser(
        prog="repro.verify campaign",
        description="sharded, resumable, self-filing conformance "
                    "campaign: shard a seed range over worker "
                    "processes, checkpoint per shard, dedup failures "
                    "into fingerprinted classes")
    parser.add_argument("--programs", type=int, default=1000,
                        help="programs in the campaign range "
                             "(default 1000, max 10^6)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--shards", type=int, default=8,
                        help="work units the range is cut into "
                             "(default 8); triage is byte-identical "
                             "at any value")
    parser.add_argument("--jobs", type=int, default=_default_jobs(),
                        metavar="N",
                        help="worker processes running shards "
                             "(default: $REPRO_JOBS if set, else 1)")
    parser.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds for this "
                             "invocation; the campaign checkpoints "
                             "and --resume continues it")
    parser.add_argument("--resume", action="store_true",
                        help="continue an existing campaign state "
                             "file (config must match)")
    parser.add_argument("--state", type=Path,
                        default=Path(".repro-campaign.json"),
                        help="campaign state file "
                             "(default .repro-campaign.json)")
    parser.add_argument("--targets", type=_parse_targets,
                        default=DEFAULT_TARGETS, metavar="T1,T2,...",
                        help="comma-separated targets "
                             f"(default {','.join(DEFAULT_TARGETS)})")
    parser.add_argument("--inputs", type=int, default=2,
                        help="input sets per program (default 2)")
    parser.add_argument("--profile", default="default",
                        choices=sorted(PROFILES),
                        help="program-shape profile (default "
                             "'default'; 'small' trades structure "
                             "for volume)")
    parser.add_argument("--inject-fault", type=_parse_fault,
                        default=None, metavar="ORIG:REPL",
                        help="inject a decoder fault into every "
                             "simulation; the campaign must DETECT it")
    parser.add_argument("--file-new-classes", action="store_true",
                        help="file one shrunk reproducer per new "
                             "failure class into tests/corpus/")
    parser.add_argument("--corpus-dir", type=Path, default=None,
                        help="override the reproducer directory")
    parser.add_argument("--max-shrink", type=int, default=12,
                        help="total failing programs to minimize "
                             "during classification (default 12)")
    parser.add_argument("--no-classify", action="store_true",
                        help="skip shrinking/fingerprinting failures "
                             "(triage only)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="use the persistent compilation-artifact "
                             "cache (default on; --no-cache disables)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="artifact cache directory "
                             "(default .repro-cache/)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the merged triage + performance "
                             "record to this path")
    return parser


def campaign_main(argv=None) -> int:
    """``python -m repro.verify campaign``; returns an exit code."""
    import repro.cache
    from repro.verify.campaign import (
        CampaignConfig, CampaignError, merged_triage, run_campaign,
        summarize,
    )

    args = build_campaign_parser().parse_args(argv)
    if args.cache:
        repro.cache.configure(args.cache_dir
                              or repro.cache.default_cache_dir())
    else:
        repro.cache.configure(None)
    config = CampaignConfig(
        seed=args.seed, programs=args.programs, shards=args.shards,
        targets=tuple(args.targets), inputs_per_program=args.inputs,
        fault=((args.inject_fault.original,
                args.inject_fault.replacement)
               if args.inject_fault else None),
        profile=args.profile)
    try:
        result = run_campaign(
            config, args.state, resume=args.resume, jobs=args.jobs,
            budget_seconds=args.budget,
            classify=not args.no_classify,
            file_new_classes=args.file_new_classes,
            corpus_dir=args.corpus_dir, max_shrinks=args.max_shrink,
            progress=print)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summarize(result))

    if args.json is not None:
        record = merged_triage(result.state)
        record["performance"] = {
            "jobs": args.jobs,
            "this_run_programs": result.programs_run,
            "this_run_seconds": round(result.elapsed_seconds, 3),
            "programs_per_second": round(result.programs_per_second, 2),
            "accumulated_shard_seconds":
                result.state["elapsed_seconds"],
            "classes": len(result.state["classes"]),
        }
        args.json.write_text(json.dumps(record, indent=2) + "\n")
        print(f"report written to {args.json}")

    if result.errors:
        return 1
    if args.inject_fault is not None and result.complete:
        detected = result.mismatch_count > 0
        print(f"fault {args.inject_fault.name}: "
              f"{'DETECTED' if detected else 'NOT DETECTED'}")
        return 0 if detected else 1
    if result.complete and result.mismatch_count \
            and args.inject_fault is None:
        return 1
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    import repro.cache

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return campaign_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.cache:
        repro.cache.configure(args.cache_dir
                              or repro.cache.default_cache_dir())
    else:
        repro.cache.configure(None)
    report = run_conformance(count=args.count, seed=args.seed,
                             targets=args.targets,
                             inputs_per_program=args.inputs,
                             budget_seconds=args.budget,
                             fault=args.inject_fault,
                             jobs=args.jobs)
    print(report.summary())
    timings = report.stage_timings()
    if timings:
        total = sum(seconds for stage, seconds in timings.items()
                    if stage not in ("variants", "labeling"))
        print(f"  compile time {total:.2f}s by stage: " + ", ".join(
            f"{stage} {seconds:.2f}s"
            for stage, seconds in sorted(timings.items(),
                                         key=lambda kv: -kv[1])))
    decode = report.sim_stats.get("decode_cache")
    jit = report.sim_stats.get("jit")
    if decode is not None and jit is not None:
        print(f"  sim tiers: decode cache {decode['hits']} hits / "
              f"{decode['misses']} misses / "
              f"{decode['fallbacks']} fallbacks; "
              f"jit {jit['blocks_emitted']} blocks emitted "
              f"({jit['loop_blocks']} fused loops), "
              f"{jit['blocks_closure']} closure blocks, "
              f"{jit['fallbacks']} program fallbacks, "
              f"source cache {jit['source_cache_hits']} hits / "
              f"{jit['source_cache_misses']} misses")

    if args.json is not None:
        args.json.write_text(json.dumps(report.to_json(), indent=2) + "\n")
        print(f"report written to {args.json}")

    if args.inject_fault is not None:
        detected = bool(report.mismatches)
        if detected:
            _shrink_and_record(args, report)
        print(f"fault {args.inject_fault.name}: "
              f"{'DETECTED' if detected else 'NOT DETECTED'}")
        return 0 if detected else 1

    if report.mismatches and args.write_corpus:
        _shrink_and_record(args, report)
    return 0 if not report.mismatches else 1


if __name__ == "__main__":
    sys.exit(main())
