"""Long-running conformance campaigns: sharded, resumable, self-filing.

:func:`repro.verify.diff.run_conformance` answers "are these fifty
programs clean?".  A *campaign* answers the question the JIT tier and
every future target has to survive: "are the next hundred thousand?"
-- and it has to answer it on real machines, where runs get killed,
budgets expire, and one genuine bug surfaces as thousands of
superficially different mismatches.

The engine here is built from three deterministic layers:

- **sharding** -- the campaign's index range ``[0, programs)`` is cut
  into contiguous shards, each a picklable
  :class:`repro.evalx.farm.ShardJob` executed (in-process or on a farm
  worker pool) as a serial ``run_conformance(start=..., count=...)``.
  Case ``index`` is a pure function of ``(seed, index, profile)``, so
  the shard decomposition is invisible to the results: the merged
  triage is byte-identical for any shard count and any completion
  order (``tests/verify/test_campaign.py`` pins 1 vs 2 vs 7);

- **checkpointing** -- every completed shard is folded into one
  on-disk JSON state file, written atomically (tmp + ``os.replace``,
  the :mod:`repro.cache` discipline), so a killed campaign resumes
  from its last completed shard with no duplicated and no lost seeds.
  Partial shards simply re-run: their work is cached compile-side by
  the artifact store, so a warm resume recompiles nothing;

- **failure classes** -- mismatches are deduplicated by the
  failure-class fingerprint
  (:func:`repro.verify.corpus.failure_fingerprint`: triage class +
  matrix cell + normalized shrunk-spec hash).  The campaign shrinks a
  bounded number of representatives per coarse group, fingerprints the
  minimal forms, and -- with ``file_new_classes`` -- files exactly one
  reproducer per new class into ``tests/corpus/`` via the existing
  corpus machinery, where tier-1 replay makes it a permanent
  regression test.

CLI: ``python -m repro verify campaign --programs 100000 --shards 64
--resume --budget 600 --file-new-classes``.  Throughput contracts live
in ``benchmarks/bench_campaign.py`` -> ``BENCH_CAMPAIGN.json``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.verify.progen import ProgenConfig

STATE_FORMAT = 1

#: Named program-shape profiles.  A campaign stores the *name* in its
#: state file (a ProgenConfig is code, a name is data), so a resumed
#: run provably regenerates the same programs.
PROFILES: Dict[str, ProgenConfig] = {
    "default": ProgenConfig(),
    # Smaller programs for volume: one straight-line region, one loop,
    # shallow expressions.  ~4x the programs/sec of "default" at the
    # same matrix -- the 10^5-scale bench profile.
    "small": ProgenConfig(blocks=1, statements=2, loops=1, max_depth=2),
}

#: Derived program seeds are ``seed * 10**6 + index`` (see
#: ``repro.verify.diff._generate_case``), so one campaign can address
#: at most a million indices before seeds would collide.
MAX_PROGRAMS = 1_000_000


class CampaignError(RuntimeError):
    """A campaign cannot run as asked (state clash, config mismatch)."""


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's programs and matrix.

    Two campaigns with equal configs check the identical program set,
    whatever their shard count, worker count, or interruption history
    -- which is why resume refuses a state file whose stored config
    differs from the requested one.
    """

    seed: int = 0
    programs: int = 1000
    shards: int = 8
    targets: Tuple[str, ...] = ("tc25", "m56", "risc16", "asip")
    inputs_per_program: int = 2
    fault: Optional[Tuple[str, str]] = None
    profile: str = "default"

    def __post_init__(self) -> None:
        if self.programs < 1:
            raise ValueError("a campaign needs at least one program")
        if self.programs > MAX_PROGRAMS:
            raise ValueError(
                f"campaigns are capped at {MAX_PROGRAMS} programs "
                "(derived-seed space); split the range across seeds")
        if self.profile not in PROFILES:
            raise ValueError(f"unknown profile {self.profile!r}; "
                             f"choose from {', '.join(sorted(PROFILES))}")

    def progen_config(self) -> ProgenConfig:
        """The profile's generator shape."""
        return PROFILES[self.profile]

    def shard_ranges(self) -> List[Tuple[int, int]]:
        """Contiguous ``(start, count)`` per shard, near-equal sizes.

        Pure arithmetic on ``(programs, shards)``: the same split on
        every machine, every resume.  Zero-size shards (more shards
        than programs) are dropped.
        """
        shards = max(1, int(self.shards))
        base, extra = divmod(self.programs, shards)
        ranges: List[Tuple[int, int]] = []
        start = 0
        for index in range(shards):
            count = base + (1 if index < extra else 0)
            if count == 0:
                break
            ranges.append((start, count))
            start += count
        return ranges

    def to_json(self) -> dict:
        """The state-file representation (order-stable plain dict)."""
        return {
            "seed": self.seed,
            "programs": self.programs,
            "shards": self.shards,
            "targets": list(self.targets),
            "inputs_per_program": self.inputs_per_program,
            "fault": list(self.fault) if self.fault else None,
            "profile": self.profile,
        }

    @staticmethod
    def from_json(payload: dict) -> "CampaignConfig":
        """Rebuild a config from :meth:`to_json` output."""
        fault = payload.get("fault")
        return CampaignConfig(
            seed=int(payload["seed"]),
            programs=int(payload["programs"]),
            shards=int(payload["shards"]),
            targets=tuple(payload["targets"]),
            inputs_per_program=int(payload["inputs_per_program"]),
            fault=(fault[0], fault[1]) if fault else None,
            profile=payload.get("profile", "default"),
        )


# ----------------------------------------------------------------------
# Campaign state: one atomic JSON file
# ----------------------------------------------------------------------

def new_state(config: CampaignConfig) -> dict:
    """A fresh state dict: every shard pending, nothing classified."""
    return {
        "format": STATE_FORMAT,
        "config": config.to_json(),
        "shards": [{"index": index, "start": start, "count": count,
                    "status": "pending"}
                   for index, (start, count)
                   in enumerate(config.shard_ranges())],
        "classes": {},
        "classified": False,
        "elapsed_seconds": 0.0,
        "runs": 0,
    }


def load_state(path: Path) -> dict:
    """Parse a state file; raises :class:`CampaignError` on junk."""
    try:
        state = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise CampaignError(f"cannot read campaign state {path}: {exc}")
    if state.get("format") != STATE_FORMAT:
        raise CampaignError(
            f"unsupported campaign state format "
            f"{state.get('format')!r} in {path}")
    return state


def save_state(path: Path, state: dict) -> None:
    """Atomically persist the state (tmp + ``os.replace``).

    A reader -- including a resuming campaign after this process is
    killed mid-write -- only ever sees the previous complete state or
    the new complete state, never a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(state, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def merged_triage(state: dict) -> dict:
    """The deterministic campaign triage record.

    A pure function of the campaign config and the set of *completed*
    shards: shard records are merged in index order (== global seed
    order, since shards are contiguous ranges), so the result is
    byte-identical (after ``json.dumps(..., sort_keys=True)``) for any
    shard count, worker count, completion order, or resume history
    covering the same programs.  No timings, no cache state, no shard
    boundaries leak in.
    """
    config = state["config"]
    done = [shard for shard in state["shards"]
            if shard["status"] == "done"]
    done.sort(key=lambda shard: shard["index"])
    mismatches: List[dict] = []
    for shard in done:
        mismatches.extend(shard["mismatches"])
    class_counts: Dict[str, int] = {}
    for mismatch in mismatches:
        class_counts[mismatch["class"]] = \
            class_counts.get(mismatch["class"], 0) + 1
    return {
        "seed": config["seed"],
        "programs": config["programs"],
        "targets": config["targets"],
        "inputs_per_program": config["inputs_per_program"],
        "fault": config["fault"],
        "profile": config["profile"],
        "complete": len(done) == len(state["shards"]),
        "programs_checked": sum(shard["programs"] for shard in done),
        "cells": sum(shard["cells"] for shard in done),
        "class_counts": class_counts,
        "mismatches": mismatches,
    }


def merged_triage_text(state: dict) -> str:
    """Canonical serialization of :func:`merged_triage` (the byte
    string the shard-invariance contract compares)."""
    return json.dumps(merged_triage(state), sort_keys=True)


# ----------------------------------------------------------------------
# Running a campaign
# ----------------------------------------------------------------------

@dataclass
class CampaignResult:
    """What one ``run_campaign`` invocation did (state carries the rest)."""

    state_path: Path
    state: dict
    shards_run: int = 0
    programs_run: int = 0
    elapsed_seconds: float = 0.0
    budget_exhausted: bool = False
    errors: List[str] = field(default_factory=list)
    new_classes: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Every shard done (whether in this run or an earlier one)."""
        return all(shard["status"] == "done"
                   for shard in self.state["shards"])

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def programs_per_second(self) -> float:
        """Sustained checking rate of *this* invocation."""
        return (self.programs_run / self.elapsed_seconds
                if self.elapsed_seconds else 0.0)

    @property
    def mismatch_count(self) -> int:
        return sum(len(shard.get("mismatches", ()))
                   for shard in self.state["shards"]
                   if shard["status"] == "done")

    @property
    def class_count(self) -> int:
        return len(self.state["classes"])


def _shard_job(config: CampaignConfig, shard: dict):
    from repro.evalx.farm import ShardJob
    return ShardJob(seed=config.seed, start=shard["start"],
                    count=shard["count"], targets=config.targets,
                    inputs_per_program=config.inputs_per_program,
                    fault=config.fault,
                    config=config.progen_config())


def _fold_result(shard: dict, result) -> None:
    """Merge one ShardResult into its state record."""
    if result.ok:
        shard.update(result.payload)
        shard["status"] = "done"
        shard.pop("error", None)
    else:
        shard["error"] = f"{result.error_type}: {result.error}"


def _resolve_state(state_path: Path, config: CampaignConfig,
                   resume: bool) -> dict:
    if Path(state_path).exists():
        if not resume:
            raise CampaignError(
                f"campaign state {state_path} already exists; pass "
                "resume (or --resume) to continue it, or remove it to "
                "start over")
        state = load_state(state_path)
        if state["config"] != config.to_json():
            raise CampaignError(
                f"campaign state {state_path} was created with a "
                "different configuration; refusing to mix program "
                f"ranges (stored: {state['config']})")
        return state
    return new_state(config)


def run_campaign(config: CampaignConfig,
                 state_path: Path,
                 resume: bool = False,
                 jobs: int = 1,
                 budget_seconds: Optional[float] = None,
                 classify: bool = True,
                 file_new_classes: bool = False,
                 corpus_dir: Optional[Path] = None,
                 max_shrinks: int = 12,
                 reps_per_group: int = 3,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> CampaignResult:
    """Run (or continue) a campaign; checkpoint after every shard.

    ``resume`` continues an existing state file (config must match);
    without it, an existing file is refused rather than clobbered.
    ``budget_seconds`` bounds this invocation's wall clock: no new
    shard starts after it expires, completed work is checkpointed, and
    a later ``resume`` picks up the remainder.  ``jobs > 1`` runs
    shards on a farm worker pool (shared artifact cache, pooled verify
    sessions), falling back to the serial loop when no pool can start.
    A shard that *errors* stays pending -- its message lands in the
    state file and in ``result.errors`` -- and stops the campaign from
    scheduling further shards, exactly like a worker death: resume
    retries it.

    When every shard is done, mismatches (if any) are deduplicated
    into failure classes: up to ``reps_per_group`` representatives per
    coarse (class, cell) group -- ``max_shrinks`` overall -- are
    shrunk, fingerprinted, and recorded in the state; with
    ``file_new_classes`` each *new* fingerprint files one reproducer
    into ``corpus_dir`` (default ``tests/corpus/``).
    """
    from repro.evalx import farm

    started = time.monotonic()
    state = _resolve_state(state_path, config, resume)
    state["runs"] += 1
    save_state(state_path, state)
    result = CampaignResult(state_path=Path(state_path), state=state)
    pending = [shard for shard in state["shards"]
               if shard["status"] != "done"]
    total_done = sum(shard["programs"] for shard in state["shards"]
                     if shard["status"] == "done")

    def out_of_budget() -> bool:
        return (budget_seconds is not None
                and time.monotonic() - started > budget_seconds)

    def note_shard(shard: dict) -> None:
        nonlocal total_done
        result.shards_run += 1
        if shard["status"] == "done":
            result.programs_run += shard["programs"]
            total_done += shard["programs"]
        result.elapsed_seconds = time.monotonic() - started
        state["elapsed_seconds"] = round(
            state["elapsed_seconds"] + (shard.get("elapsed_seconds", 0.0)
                                        if shard["status"] == "done"
                                        else 0.0), 3)
        save_state(state_path, state)
        if progress is not None:
            rate = result.programs_per_second
            done_shards = sum(1 for s in state["shards"]
                              if s["status"] == "done")
            mismatches = result.mismatch_count
            progress(
                f"[shard {shard['index']}] "
                f"{done_shards}/{len(state['shards'])} shards, "
                f"{total_done}/{config.programs} programs, "
                f"{rate:.1f} programs/s, "
                f"{mismatches} mismatches, "
                f"{len(state['classes'])} classes")

    jobs = max(1, int(jobs))
    if jobs > 1 and len(pending) > 1:
        _run_shards_parallel(config, state, pending, jobs, out_of_budget,
                             note_shard, result, farm)
    else:
        for shard in pending:
            if out_of_budget():
                result.budget_exhausted = True
                break
            _fold_result(shard, farm.run_shard_job(_shard_job(config,
                                                              shard)))
            if shard["status"] != "done":
                result.errors.append(
                    f"shard {shard['index']}: {shard['error']}")
            note_shard(shard)
            if result.errors:
                break

    if out_of_budget() and not result.complete:
        result.budget_exhausted = True

    if result.complete and classify and not state["classified"]:
        result.new_classes = _classify(
            config, state, max_shrinks=max_shrinks,
            reps_per_group=reps_per_group,
            file_new_classes=file_new_classes, corpus_dir=corpus_dir,
            progress=progress)
        state["classified"] = True
        save_state(state_path, state)

    result.elapsed_seconds = time.monotonic() - started
    save_state(state_path, state)
    return result


def _run_shards_parallel(config: CampaignConfig, state: dict,
                         pending: List[dict], jobs: int,
                         out_of_budget: Callable[[], bool],
                         note_shard: Callable[[dict], None],
                         result: CampaignResult, farm) -> None:
    """Dispatch shards onto a farm pool, checkpointing per completion.

    At most ``jobs`` shards are in flight; completions are folded (and
    the state file replaced) as they land, in *any* order -- the merge
    sorts by shard index, so completion order cannot leak into the
    triage.  Pool startup failure degrades to the serial loop.
    """
    executor = farm.make_farm_executor(
        max_workers=min(jobs, len(pending)))
    if executor is None:
        for shard in pending:
            if out_of_budget():
                result.budget_exhausted = True
                break
            _fold_result(shard, farm.run_shard_job(_shard_job(config,
                                                              shard)))
            if shard["status"] != "done":
                result.errors.append(
                    f"shard {shard['index']}: {shard['error']}")
            note_shard(shard)
            if result.errors:
                break
        return
    try:
        queue = list(pending)
        in_flight = {}
        while queue and len(in_flight) < jobs and not out_of_budget():
            shard = queue.pop(0)
            in_flight[executor.submit(
                farm.run_shard_job, _shard_job(config, shard))] = shard
        if queue and out_of_budget():
            result.budget_exhausted = True
        while in_flight:
            finished, _ = wait(list(in_flight),
                               return_when=FIRST_COMPLETED)
            for future in finished:
                shard = in_flight.pop(future)
                try:
                    _fold_result(shard, future.result())
                except Exception as exc:               # noqa: BLE001
                    shard["error"] = f"{type(exc).__name__}: {exc}"
                if shard["status"] != "done":
                    result.errors.append(
                        f"shard {shard['index']}: {shard['error']}")
                note_shard(shard)
            if result.errors:
                queue.clear()
            stop = out_of_budget()
            if stop and queue:
                result.budget_exhausted = True
                queue.clear()
            while queue and len(in_flight) < jobs:
                shard = queue.pop(0)
                in_flight[executor.submit(
                    farm.run_shard_job,
                    _shard_job(config, shard))] = shard
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Failure classes: shrink, fingerprint, file
# ----------------------------------------------------------------------

def _parse_cell(text: str) -> Tuple[str, str, str]:
    compiler, target, sim = text.split("/")
    return compiler, target, sim


def _classify(config: CampaignConfig, state: dict,
              max_shrinks: int, reps_per_group: int,
              file_new_classes: bool, corpus_dir: Optional[Path],
              progress: Optional[Callable[[str], None]]) -> List[str]:
    """Dedup the campaign's mismatches into failure classes.

    One representative mismatch per failing *program* (its first
    failing cell, matching the single-run corpus writer), grouped by
    the coarse (class, cell) key; each group shrinks up to
    ``reps_per_group`` representatives in seed order, bounded by
    ``max_shrinks`` overall, and every shrunk form is fingerprinted.
    Returns the fingerprints newly added to the state.
    """
    import random

    from repro.selftest.generator import Fault
    from repro.verify.corpus import (
        CorpusEntry, default_corpus_dir, failure_fingerprint,
        load_corpus, program_to_spec,
    )
    from repro.verify.diff import Cell, instruction_count, still_fails
    from repro.verify.progen import generate_inputs, generate_program
    from repro.verify.shrink import shrink_program

    triage = merged_triage(state)
    groups: Dict[Tuple[str, str], List[dict]] = {}
    seen_programs = set()
    for mismatch in triage["mismatches"]:
        if mismatch["seed"] in seen_programs:
            continue
        seen_programs.add(mismatch["seed"])
        groups.setdefault((mismatch["class"], mismatch["cell"]),
                          []).append(mismatch)

    fault = Fault(*config.fault) if config.fault else None
    progen = config.progen_config()
    new_fingerprints: List[str] = []
    directory = Path(corpus_dir) if corpus_dir else default_corpus_dir()
    filed = {entry.class_fingerprint(): entry.name
             for entry in load_corpus(directory)} if file_new_classes \
        else {}
    shrinks = 0

    for key in sorted(groups):
        mismatch_class, cell_text = key
        for mismatch in groups[key][:reps_per_group]:
            if shrinks >= max_shrinks:
                break
            shrinks += 1
            seed = mismatch["seed"]
            index = seed - config.seed * 1_000_000
            rng = random.Random(seed)
            program = generate_program(rng, index, progen)
            all_sets = [generate_inputs(rng, program)
                        for _ in range(config.inputs_per_program)]
            compiler, target, sim = _parse_cell(cell_text)
            cell = Cell(compiler, target, sim) if sim != "*" else None
            check_targets = (target,)
            input_sets = next(
                ([candidate] for candidate in all_sets
                 if still_fails(program, [candidate],
                                targets=check_targets, fault=fault,
                                cell=cell)),
                all_sets)
            try:
                small = shrink_program(
                    program,
                    lambda candidate: still_fails(
                        candidate, input_sets, targets=check_targets,
                        fault=fault, cell=cell))
            except ValueError:
                small = program        # not reproducible standalone
            small_spec = program_to_spec(small)
            cell_dict = {"compiler": compiler, "target": target,
                         "sim": sim}
            fingerprint = failure_fingerprint(mismatch_class, cell_dict,
                                              small_spec)
            record = state["classes"].get(fingerprint)
            if record is not None:
                record["programs"] += 1
                continue
            try:
                size = instruction_count(small, target_name=target)
            except Exception:                          # noqa: BLE001
                size = -1
            record = {
                "class": mismatch_class,
                "cell": cell_dict,
                "seed": seed,
                "program": mismatch["program"],
                "instructions": size,
                "programs": 1,
                "filed": "",
            }
            if file_new_classes and fingerprint not in filed:
                kept = set(small.symbols)
                entry = CorpusEntry(
                    name=f"campaign-{mismatch_class}-{fingerprint[:8]}",
                    seed=seed,
                    program_spec=small_spec,
                    inputs={k: v for inputs in input_sets[:1]
                            for k, v in inputs.items() if k in kept},
                    fault=config.fault,
                    cell=cell_dict,
                    mismatch_class=("injected-fault" if fault
                                    else mismatch_class),
                    note="auto-filed by repro.verify.campaign",
                    fingerprint=fingerprint)
                record["filed"] = str(entry.write(directory))
                filed[fingerprint] = entry.name
            state["classes"][fingerprint] = record
            new_fingerprints.append(fingerprint)
            if progress is not None:
                progress(f"[class {fingerprint}] {mismatch_class} in "
                         f"{cell_text}: {size} instructions"
                         + (f" -> {record['filed']}"
                            if record["filed"] else ""))
        if shrinks >= max_shrinks:
            break
    return new_fingerprints


def summarize(result: CampaignResult) -> str:
    """Human-readable end-of-invocation summary."""
    state = result.state
    config = state["config"]
    done = sum(1 for shard in state["shards"]
               if shard["status"] == "done")
    checked = sum(shard["programs"] for shard in state["shards"]
                  if shard["status"] == "done")
    compiles = sum(shard.get("compiles", 0) for shard in state["shards"]
                   if shard["status"] == "done")
    hits = sum(shard.get("artifact_hits", 0)
               for shard in state["shards"]
               if shard["status"] == "done")
    lines = [
        f"campaign: {checked}/{config['programs']} programs over "
        f"{done}/{len(state['shards'])} shards "
        f"x {{{','.join(config['targets'])}}} "
        f"(profile {config['profile']}, seed {config['seed']})",
        f"  this run: {result.programs_run} programs in "
        f"{result.elapsed_seconds:.1f}s "
        f"({result.programs_per_second:.1f} programs/s, "
        f"{result.shards_run} shards)",
        f"  compiles: {compiles} fresh, {hits} artifact-cache hits",
    ]
    if result.budget_exhausted:
        lines.append("  budget exhausted; continue with --resume")
    for error in result.errors:
        lines.append(f"  ERROR {error}")
    mismatches = result.mismatch_count
    if result.complete and not mismatches:
        lines.append("  all cells agree with the IR oracle")
    elif mismatches:
        triage = merged_triage(state)
        for mismatch_class, count in sorted(
                triage["class_counts"].items()):
            lines.append(f"  {mismatch_class}: {count}")
        lines.append(f"  failure classes: {len(state['classes'])}")
        for fingerprint, record in sorted(state["classes"].items()):
            cell = record["cell"]
            filed = f" filed {record['filed']}" if record["filed"] else ""
            lines.append(
                f"    {fingerprint}: {record['class']} in "
                f"{cell['compiler']}/{cell['target']}/{cell['sim']} "
                f"({record['instructions']} instructions, seed "
                f"{record['seed']}){filed}")
    return "\n".join(lines)
