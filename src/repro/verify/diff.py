"""Cross-compiler / cross-simulator equivalence checking.

One generated program fans out over the full conformance matrix::

    {RECORD, baseline} x {tc25, m56, risc16, asip} x {Machine, FastMachine}

(the baseline compiler only exists for the TC25 family, so its cells
only appear there).  Every cell's final output environment is compared
against the independent IR-level oracle, and disagreements are
*classified* so a red run points at the right layer:

- ``compile-error``       the compiler refused or crashed on a legal
                          program;
- ``sim-crash``           the simulator raised while executing
                          compiled code;
- ``simulator``           the two simulators disagree on the *same*
                          compiled code (a decode/translation bug);
- ``overflow-semantics``  both simulators agree, the oracle disagrees,
                          but flipping the oracle's overflow mode
                          reproduces the simulated result (a wrap-vs-
                          saturate contract violation);
- ``compiler``            both simulators agree and no overflow story
                          explains the difference -- miscompilation.

:func:`run_conformance` is the fuzz loop: generate, check, optionally
shrink failures into ``tests/corpus/`` reproducers.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import CompileError, RecordCompiler
from repro.ir.fixedpoint import FixedPointContext, Overflow
from repro.ir.program import Program
from repro.sim.harness import run_many
from repro.verify.oracle import Oracle, OracleError
from repro.verify.progen import ProgenConfig, generate_inputs, generate_program

DEFAULT_TARGETS: Tuple[str, ...] = ("tc25", "m56", "risc16", "asip")
SIM_NAMES: Tuple[str, ...] = ("reference", "fast")


class MismatchClass:
    """Triage labels for conformance disagreements."""

    COMPILE_ERROR = "compile-error"
    SIM_CRASH = "sim-crash"
    SIMULATOR = "simulator"
    OVERFLOW = "overflow-semantics"
    COMPILER = "compiler"


@dataclass(frozen=True)
class Cell:
    """One point of the conformance matrix."""

    compiler: str
    target: str
    sim: str

    def describe(self) -> str:
        """``compiler/target/sim`` label used in reports."""
        return f"{self.compiler}/{self.target}/{self.sim}"


@dataclass
class CellOutcome:
    """Result of one program in one matrix cell."""

    cell: Cell
    ok: bool
    mismatch_class: str = ""
    detail: str = ""
    # For mismatches: (input set index, symbol, expected, got) samples.
    samples: List[Tuple[int, str, object, object]] = field(
        default_factory=list)

    def describe(self) -> str:
        """One-line outcome text."""
        if self.ok:
            return f"{self.cell.describe()}: ok"
        return (f"{self.cell.describe()}: {self.mismatch_class}"
                f" ({self.detail})" if self.detail else
                f"{self.cell.describe()}: {self.mismatch_class}")


@dataclass
class ProgramVerdict:
    """All cell outcomes for one generated program."""

    name: str
    seed: int
    outcomes: List[CellOutcome] = field(default_factory=list)

    @property
    def mismatches(self) -> List[CellOutcome]:
        """The failing cells only."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def make_target(name: str):
    """Instantiate a target model by registry name."""
    from repro.api import _resolve_target
    return _resolve_target(name)


def compilers_for(target_name: str) -> Tuple[str, ...]:
    """Compiler names applicable to a target (baseline is TC25-only)."""
    if target_name == "tc25":
        return ("record", "baseline")
    return ("record",)


def _make_compiler(name: str, target):
    if name == "record":
        return RecordCompiler(target)
    if name == "baseline":
        return BaselineCompiler(target)
    raise ValueError(f"unknown compiler {name!r}")


def _outputs_of(program: Program, env: Mapping[str, object]
                ) -> Dict[str, object]:
    return {name: env[name]
            for name, symbol in program.symbols.items()
            if symbol.role == "output" and name in env}


def _first_differences(expected: Mapping[str, object],
                       got: Mapping[str, object],
                       index: int, limit: int = 3
                       ) -> List[Tuple[int, str, object, object]]:
    samples = []
    for symbol in sorted(expected):
        if expected[symbol] != got.get(symbol):
            samples.append((index, symbol, expected[symbol],
                            got.get(symbol)))
            if len(samples) >= limit:
                break
    return samples


# ----------------------------------------------------------------------
# Single-program matrix check
# ----------------------------------------------------------------------

def check_program(program: Program,
                  input_sets: Sequence[Mapping[str, object]],
                  targets: Sequence[str] = DEFAULT_TARGETS,
                  fault=None,
                  seed: int = 0) -> ProgramVerdict:
    """Run ``program`` through the conformance matrix against the oracle.

    ``fault`` (a :class:`repro.selftest.generator.Fault`) injects a
    decoder fault into every simulation -- used to prove the harness
    *detects* seeded bugs, and by the shrinker's reproducer replay.
    """
    verdict = ProgramVerdict(name=program.name, seed=seed)
    oracle_cache: Dict[int, List[Dict[str, object]]] = {}

    for target_name in targets:
        target = make_target(target_name)
        width = target.fpc.width
        if width not in oracle_cache:
            oracle = Oracle(FixedPointContext(width))
            oracle_cache[width] = [
                _outputs_of(program, oracle.run(program, inputs))
                for inputs in input_sets]
        expected_sets = oracle_cache[width]

        for compiler_name in compilers_for(target_name):
            try:
                compiled = _make_compiler(compiler_name, target) \
                    .compile(program)
            except Exception as exc:
                verdict.outcomes.append(CellOutcome(
                    cell=Cell(compiler_name, target_name, "*"),
                    ok=False,
                    mismatch_class=MismatchClass.COMPILE_ERROR,
                    detail=f"{type(exc).__name__}: {exc}"))
                continue

            run_target = None
            if fault is not None:
                from repro.selftest.generator import FaultySim
                run_target = FaultySim(target, fault)

            per_sim: Dict[str, Optional[List[Dict[str, object]]]] = {}
            for sim_name in SIM_NAMES:
                cell = Cell(compiler_name, target_name, sim_name)
                try:
                    results = run_many(compiled, input_sets,
                                       fast_sim=(sim_name == "fast"),
                                       target=run_target)
                except Exception as exc:
                    per_sim[sim_name] = None
                    verdict.outcomes.append(CellOutcome(
                        cell=cell, ok=False,
                        mismatch_class=MismatchClass.SIM_CRASH,
                        detail=f"{type(exc).__name__}: {exc}"))
                    continue
                per_sim[sim_name] = [
                    _outputs_of(program, env) for env, _state in results]

            _classify(program, verdict, compiler_name, target_name,
                      per_sim, expected_sets, input_sets, target.fpc)
    return verdict


def _classify(program: Program, verdict: ProgramVerdict,
              compiler_name: str, target_name: str,
              per_sim: Dict[str, Optional[List[Dict[str, object]]]],
              expected_sets: Sequence[Mapping[str, object]],
              input_sets: Sequence[Mapping[str, object]],
              fpc: FixedPointContext) -> None:
    """Append outcomes for the sims that ran, with triage classes."""
    ran = {name: outs for name, outs in per_sim.items()
           if outs is not None}
    sims_disagree = (len(ran) == 2
                     and ran["reference"] != ran["fast"])
    saturating: Optional[List[Dict[str, object]]] = None

    for sim_name, outputs_sets in ran.items():
        cell = Cell(compiler_name, target_name, sim_name)
        bad_index = next(
            (k for k, (expected, got)
             in enumerate(zip(expected_sets, outputs_sets))
             if expected != got), None)
        if bad_index is None:
            verdict.outcomes.append(CellOutcome(cell=cell, ok=True))
            continue
        if sims_disagree:
            mismatch_class = MismatchClass.SIMULATOR
        else:
            if saturating is None:
                sat_oracle = Oracle(fpc.with_overflow(Overflow.SATURATE))
                try:
                    saturating = [
                        _outputs_of(program, sat_oracle.run(program, inp))
                        for inp in input_sets]
                except OracleError:
                    saturating = []
            mismatch_class = (
                MismatchClass.OVERFLOW
                if saturating and saturating == outputs_sets
                else MismatchClass.COMPILER)
        verdict.outcomes.append(CellOutcome(
            cell=cell, ok=False, mismatch_class=mismatch_class,
            detail=f"first divergence at input set {bad_index}",
            samples=_first_differences(expected_sets[bad_index],
                                       outputs_sets[bad_index],
                                       bad_index)))


def still_fails(program: Program,
                input_sets: Sequence[Mapping[str, object]],
                targets: Sequence[str] = DEFAULT_TARGETS,
                fault=None,
                cell: Optional[Cell] = None) -> bool:
    """Shrink predicate: does the program still expose a mismatch?

    With ``cell`` the failure must reproduce in that exact matrix cell
    (the shrinker then cannot wander onto a different bug); without it
    any mismatch anywhere in the matrix counts.
    """
    verdict = check_program(program, input_sets, targets=targets,
                            fault=fault)
    if cell is None:
        return not verdict.ok
    return any(outcome.cell == cell and not outcome.ok
               for outcome in verdict.outcomes)


def instruction_count(program: Program, compiler_name: str = "record",
                      target_name: str = "tc25") -> int:
    """Number of machine instructions a program compiles to.

    The yardstick for "minimal reproducer": acceptance for seeded
    decoder faults is a reproducer of at most a handful of
    instructions.
    """
    from repro.codegen.asm import AsmInstr
    target = make_target(target_name)
    compiled = _make_compiler(compiler_name, target).compile(program)
    return sum(1 for item in compiled.code if isinstance(item, AsmInstr))


# ----------------------------------------------------------------------
# Fuzz loop
# ----------------------------------------------------------------------

@dataclass
class ConformanceReport:
    """Aggregate of a fuzz run."""

    seed: int
    count: int
    targets: Tuple[str, ...]
    verdicts: List[ProgramVerdict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    budget_exhausted: bool = False

    @property
    def mismatches(self) -> List[Tuple[ProgramVerdict, CellOutcome]]:
        """Every failing (program, cell) pair."""
        return [(verdict, outcome)
                for verdict in self.verdicts
                for outcome in verdict.mismatches]

    @property
    def cells_checked(self) -> int:
        return sum(len(verdict.outcomes) for verdict in self.verdicts)

    def class_counts(self) -> Dict[str, int]:
        """Mismatch tally per triage class."""
        counts: Dict[str, int] = {}
        for _verdict, outcome in self.mismatches:
            counts[outcome.mismatch_class] = \
                counts.get(outcome.mismatch_class, 0) + 1
        return counts

    def summary(self) -> str:
        """Human-readable multi-line run summary."""
        lines = [
            f"conformance: {len(self.verdicts)} programs x "
            f"{{record,baseline}} x {{{','.join(self.targets)}}} x "
            f"{{reference,fast}} = {self.cells_checked} cells "
            f"in {self.elapsed_seconds:.1f}s"
        ]
        if self.budget_exhausted:
            lines.append("  (time budget exhausted before --count)")
        if not self.mismatches:
            lines.append("  all cells agree with the IR oracle")
            return "\n".join(lines)
        for mismatch_class, count in sorted(self.class_counts().items()):
            lines.append(f"  {mismatch_class}: {count}")
        for verdict, outcome in self.mismatches[:20]:
            lines.append(f"    {verdict.name} (seed {verdict.seed}): "
                         f"{outcome.describe()}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-able run record (the CI artifact)."""
        return {
            "seed": self.seed,
            "count": self.count,
            "targets": list(self.targets),
            "programs": len(self.verdicts),
            "cells": self.cells_checked,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "budget_exhausted": self.budget_exhausted,
            "class_counts": self.class_counts(),
            "mismatches": [{
                "program": verdict.name,
                "seed": verdict.seed,
                "cell": outcome.cell.describe(),
                "class": outcome.mismatch_class,
                "detail": outcome.detail,
                "samples": [list(sample) for sample in outcome.samples],
            } for verdict, outcome in self.mismatches],
        }


def run_conformance(count: int = 20,
                    seed: int = 0,
                    targets: Sequence[str] = DEFAULT_TARGETS,
                    inputs_per_program: int = 2,
                    config: Optional[ProgenConfig] = None,
                    budget_seconds: Optional[float] = None,
                    fault=None,
                    on_program: Optional[Callable] = None
                    ) -> ConformanceReport:
    """Generate ``count`` programs and check each across the matrix.

    Each program gets its own derived seed (``seed * 10**6 + index``)
    so any failure is reproducible in isolation without replaying the
    whole run.  ``budget_seconds`` stops the loop early (the report
    records that it did).
    """
    report = ConformanceReport(seed=seed, count=count,
                               targets=tuple(targets))
    started = time.monotonic()
    for index in range(count):
        if budget_seconds is not None \
                and time.monotonic() - started > budget_seconds:
            report.budget_exhausted = True
            break
        program_seed = seed * 1_000_000 + index
        rng = random.Random(program_seed)
        program = generate_program(rng, index, config)
        input_sets = [generate_inputs(rng, program)
                      for _ in range(inputs_per_program)]
        verdict = check_program(program, input_sets, targets=targets,
                                fault=fault, seed=program_seed)
        report.verdicts.append(verdict)
        if on_program is not None:
            on_program(program, input_sets, verdict)
    report.elapsed_seconds = time.monotonic() - started
    return report
