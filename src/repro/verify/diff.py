"""Cross-compiler / cross-simulator equivalence checking.

One generated program fans out over the full conformance matrix::

    {RECORD, baseline} x {tc25, m56, risc16, asip}
                       x {Machine, FastMachine, JitMachine}

(the baseline compiler only exists for the TC25 family, so its cells
only appear there).  Every cell's final output environment is compared
against the independent IR-level oracle, and disagreements are
*classified* so a red run points at the right layer:

- ``compile-error``       the compiler refused or crashed on a legal
                          program;
- ``sim-crash``           the simulator raised while executing
                          compiled code;
- ``simulator``           the simulator tiers disagree on the *same*
                          compiled code (a decode/translation bug);
- ``overflow-semantics``  both simulators agree, the oracle disagrees,
                          but flipping the oracle's overflow mode
                          reproduces the simulated result (a wrap-vs-
                          saturate contract violation);
- ``compiler``            both simulators agree and no overflow story
                          explains the difference -- miscompilation.

:func:`run_conformance` is the fuzz loop: generate, check, optionally
shrink failures into ``tests/corpus/`` reproducers.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import CompileError, RecordCompiler
from repro.ir.fixedpoint import FixedPointContext, Overflow
from repro.ir.program import Program
from repro.sim.harness import run_many
from repro.verify.oracle import Oracle, OracleError
from repro.verify.progen import ProgenConfig, generate_inputs, generate_program

DEFAULT_TARGETS: Tuple[str, ...] = ("tc25", "m56", "risc16", "asip")
SIM_NAMES: Tuple[str, ...] = ("reference", "fast", "jit")


class MismatchClass:
    """Triage labels for conformance disagreements."""

    COMPILE_ERROR = "compile-error"
    SIM_CRASH = "sim-crash"
    SIMULATOR = "simulator"
    OVERFLOW = "overflow-semantics"
    COMPILER = "compiler"


@dataclass(frozen=True)
class Cell:
    """One point of the conformance matrix."""

    compiler: str
    target: str
    sim: str

    def describe(self) -> str:
        """``compiler/target/sim`` label used in reports."""
        return f"{self.compiler}/{self.target}/{self.sim}"


@dataclass
class CellOutcome:
    """Result of one program in one matrix cell."""

    cell: Cell
    ok: bool
    mismatch_class: str = ""
    detail: str = ""
    # For mismatches: (input set index, symbol, expected, got) samples.
    samples: List[Tuple[int, str, object, object]] = field(
        default_factory=list)

    def describe(self) -> str:
        """One-line outcome text."""
        if self.ok:
            return f"{self.cell.describe()}: ok"
        return (f"{self.cell.describe()}: {self.mismatch_class}"
                f" ({self.detail})" if self.detail else
                f"{self.cell.describe()}: {self.mismatch_class}")


@dataclass
class ProgramVerdict:
    """All cell outcomes for one generated program.

    Besides the triage outcomes the verdict carries the program's
    share of the run's performance accounting -- compiles performed,
    artifact-cache hits, and per-stage compile timings -- so parallel
    workers can report throughput without a side channel and the CLI
    can attribute a regression to a pipeline stage.  None of these
    fields participate in triage comparisons.
    """

    name: str
    seed: int
    outcomes: List[CellOutcome] = field(default_factory=list)
    compiles: int = 0
    cache_hits: int = 0
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def mismatches(self) -> List[CellOutcome]:
        """The failing cells only."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def make_target(name: str):
    """Instantiate a target model by registry name."""
    from repro.api import _resolve_target
    return _resolve_target(name)


def compilers_for(target_name: str) -> Tuple[str, ...]:
    """Compiler names applicable to a target (baseline is TC25-only)."""
    if target_name == "tc25":
        return ("record", "baseline")
    return ("record",)


def _make_compiler(name: str, target):
    if name == "record":
        return RecordCompiler(target)
    if name == "baseline":
        return BaselineCompiler(target)
    raise ValueError(f"unknown compiler {name!r}")


class VerifySession:
    """Targets, compilers and oracles pooled across ``check_program`` calls.

    Rebuilding a target model and a compiler for every program is pure
    overhead in a fuzz loop: target construction re-derives the grammar
    and a fresh compiler starts with a cold BURS label cache.  A session
    keeps one of each alive, so consecutive programs reuse the memoized
    grammar, the matcher pool and the label cache -- exactly the
    warm-compiler behaviour of :mod:`repro.evalx.farm` workers, which
    keep one session per process for the lifetime of the pool.

    Pooling is transparent: all pooled objects are either immutable
    configuration or caches whose hits are byte-identical to a cold
    computation (enforced by ``tests/codegen/test_label_cache.py``), so
    a session-run matrix and a fresh-per-program matrix produce the
    same triage report bit for bit.
    """

    def __init__(self):
        self._targets: Dict[str, object] = {}
        self._compilers: Dict[Tuple[str, str], object] = {}
        self._oracles: Dict[int, Oracle] = {}

    def target(self, name: str):
        """The pooled target model for ``name``."""
        target = self._targets.get(name)
        if target is None:
            target = make_target(name)
            self._targets[name] = target
        return target

    def compiler(self, compiler_name: str, target_name: str):
        """The pooled compiler instance for a matrix column."""
        key = (compiler_name, target_name)
        compiler = self._compilers.get(key)
        if compiler is None:
            compiler = _make_compiler(compiler_name,
                                      self.target(target_name))
            self._compilers[key] = compiler
        return compiler

    def oracle(self, width: int) -> Oracle:
        """The pooled wrap-mode oracle for a word width."""
        oracle = self._oracles.get(width)
        if oracle is None:
            oracle = Oracle(FixedPointContext(width))
            self._oracles[width] = oracle
        return oracle


def _outputs_of(program: Program, env: Mapping[str, object]
                ) -> Dict[str, object]:
    return {name: env[name]
            for name, symbol in program.symbols.items()
            if symbol.role == "output" and name in env}


def _first_differences(expected: Mapping[str, object],
                       got: Mapping[str, object],
                       index: int, limit: int = 3
                       ) -> List[Tuple[int, str, object, object]]:
    samples = []
    for symbol in sorted(expected):
        if expected[symbol] != got.get(symbol):
            samples.append((index, symbol, expected[symbol],
                            got.get(symbol)))
            if len(samples) >= limit:
                break
    return samples


def _account_compile(verdict: ProgramVerdict, compiled) -> None:
    """Fold one compile into the verdict's performance counters.

    Artifact-cache hits are counted separately and contribute no stage
    timings: their stored timings describe a historical compile, and
    adding them would double-count work this run never did.
    """
    if compiled.stats.get("artifact_cache") == "hit":
        verdict.cache_hits += 1
        return
    verdict.compiles += 1
    for stage, seconds in (compiled.stats.get("timings") or {}).items():
        verdict.timings[stage] = verdict.timings.get(stage, 0.0) + seconds


# ----------------------------------------------------------------------
# Single-program matrix check
# ----------------------------------------------------------------------

def check_program(program: Program,
                  input_sets: Sequence[Mapping[str, object]],
                  targets: Sequence[str] = DEFAULT_TARGETS,
                  fault=None,
                  seed: int = 0,
                  session: Optional[VerifySession] = None
                  ) -> ProgramVerdict:
    """Run ``program`` through the conformance matrix against the oracle.

    ``fault`` (a :class:`repro.selftest.generator.Fault`) injects a
    decoder fault into every simulation -- used to prove the harness
    *detects* seeded bugs, and by the shrinker's reproducer replay.

    ``session`` reuses pooled targets/compilers/oracles across calls
    (see :class:`VerifySession`); without one, everything is built
    fresh, as a standalone call always did.
    """
    if session is None:
        session = VerifySession()
    verdict = ProgramVerdict(name=program.name, seed=seed)
    oracle_cache: Dict[int, List[Dict[str, object]]] = {}

    for target_name in targets:
        target = session.target(target_name)
        width = target.fpc.width
        if width not in oracle_cache:
            oracle = session.oracle(width)
            oracle_cache[width] = [
                _outputs_of(program, oracle.run(program, inputs))
                for inputs in input_sets]
        expected_sets = oracle_cache[width]

        for compiler_name in compilers_for(target_name):
            try:
                compiled = session.compiler(compiler_name, target_name) \
                    .compile(program)
                _account_compile(verdict, compiled)
            except Exception as exc:
                verdict.outcomes.append(CellOutcome(
                    cell=Cell(compiler_name, target_name, "*"),
                    ok=False,
                    mismatch_class=MismatchClass.COMPILE_ERROR,
                    detail=f"{type(exc).__name__}: {exc}"))
                continue

            run_target = None
            if fault is not None:
                from repro.selftest.generator import FaultySim
                run_target = FaultySim(target, fault)

            per_sim: Dict[str, Optional[List[Dict[str, object]]]] = {}
            for sim_name in SIM_NAMES:
                cell = Cell(compiler_name, target_name, sim_name)
                try:
                    results = run_many(compiled, input_sets,
                                       sim=sim_name,
                                       target=run_target)
                except Exception as exc:
                    per_sim[sim_name] = None
                    verdict.outcomes.append(CellOutcome(
                        cell=cell, ok=False,
                        mismatch_class=MismatchClass.SIM_CRASH,
                        detail=f"{type(exc).__name__}: {exc}"))
                    continue
                per_sim[sim_name] = [
                    _outputs_of(program, env) for env, _state in results]

            _classify(program, verdict, compiler_name, target_name,
                      per_sim, expected_sets, input_sets, target.fpc)
    return verdict


def _classify(program: Program, verdict: ProgramVerdict,
              compiler_name: str, target_name: str,
              per_sim: Dict[str, Optional[List[Dict[str, object]]]],
              expected_sets: Sequence[Mapping[str, object]],
              input_sets: Sequence[Mapping[str, object]],
              fpc: FixedPointContext) -> None:
    """Append outcomes for the sims that ran, with triage classes."""
    ran = {name: outs for name, outs in per_sim.items()
           if outs is not None}
    ran_outputs = list(ran.values())
    sims_disagree = any(outputs != ran_outputs[0]
                        for outputs in ran_outputs[1:])
    saturating: Optional[List[Dict[str, object]]] = None

    for sim_name, outputs_sets in ran.items():
        cell = Cell(compiler_name, target_name, sim_name)
        bad_index = next(
            (k for k, (expected, got)
             in enumerate(zip(expected_sets, outputs_sets))
             if expected != got), None)
        if bad_index is None:
            verdict.outcomes.append(CellOutcome(cell=cell, ok=True))
            continue
        if sims_disagree:
            mismatch_class = MismatchClass.SIMULATOR
        else:
            if saturating is None:
                sat_oracle = Oracle(fpc.with_overflow(Overflow.SATURATE))
                try:
                    saturating = [
                        _outputs_of(program, sat_oracle.run(program, inp))
                        for inp in input_sets]
                except OracleError:
                    saturating = []
            mismatch_class = (
                MismatchClass.OVERFLOW
                if saturating and saturating == outputs_sets
                else MismatchClass.COMPILER)
        verdict.outcomes.append(CellOutcome(
            cell=cell, ok=False, mismatch_class=mismatch_class,
            detail=f"first divergence at input set {bad_index}",
            samples=_first_differences(expected_sets[bad_index],
                                       outputs_sets[bad_index],
                                       bad_index)))


def still_fails(program: Program,
                input_sets: Sequence[Mapping[str, object]],
                targets: Sequence[str] = DEFAULT_TARGETS,
                fault=None,
                cell: Optional[Cell] = None) -> bool:
    """Shrink predicate: does the program still expose a mismatch?

    With ``cell`` the failure must reproduce in that exact matrix cell
    (the shrinker then cannot wander onto a different bug); without it
    any mismatch anywhere in the matrix counts.
    """
    verdict = check_program(program, input_sets, targets=targets,
                            fault=fault)
    if cell is None:
        return not verdict.ok
    return any(outcome.cell == cell and not outcome.ok
               for outcome in verdict.outcomes)


def instruction_count(program: Program, compiler_name: str = "record",
                      target_name: str = "tc25") -> int:
    """Number of machine instructions a program compiles to.

    The yardstick for "minimal reproducer": acceptance for seeded
    decoder faults is a reproducer of at most a handful of
    instructions.
    """
    from repro.codegen.asm import AsmInstr
    target = make_target(target_name)
    compiled = _make_compiler(compiler_name, target).compile(program)
    return sum(1 for item in compiled.code if isinstance(item, AsmInstr))


# ----------------------------------------------------------------------
# Fuzz loop
# ----------------------------------------------------------------------

@dataclass
class ConformanceReport:
    """Aggregate of a fuzz run.

    Triage content (verdicts, classes, mismatch details) is a pure
    function of ``(seed, count, targets, config)`` -- the same at any
    worker count, with or without the artifact cache.
    :meth:`triage_json` serializes exactly that stable subset;
    :meth:`to_json` adds the run's performance measurements on top.
    """

    seed: int
    count: int
    targets: Tuple[str, ...]
    verdicts: List[ProgramVerdict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    budget_exhausted: bool = False
    jobs: int = 1
    #: decode/jit cache+codegen counters captured at the end of the run
    #: (this process only; parallel workers keep their own counters).
    sim_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def mismatches(self) -> List[Tuple[ProgramVerdict, CellOutcome]]:
        """Every failing (program, cell) pair."""
        return [(verdict, outcome)
                for verdict in self.verdicts
                for outcome in verdict.mismatches]

    @property
    def cells_checked(self) -> int:
        return sum(len(verdict.outcomes) for verdict in self.verdicts)

    def class_counts(self) -> Dict[str, int]:
        """Mismatch tally per triage class."""
        counts: Dict[str, int] = {}
        for _verdict, outcome in self.mismatches:
            counts[outcome.mismatch_class] = \
                counts.get(outcome.mismatch_class, 0) + 1
        return counts

    def compile_counts(self) -> Dict[str, int]:
        """Aggregate compile / artifact-cache-hit tallies."""
        return {
            "compiles": sum(v.compiles for v in self.verdicts),
            "artifact_hits": sum(v.cache_hits for v in self.verdicts),
        }

    def stage_timings(self) -> Dict[str, float]:
        """Total wall-clock per compile stage across all fresh compiles."""
        totals: Dict[str, float] = {}
        for verdict in self.verdicts:
            for stage, seconds in verdict.timings.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    @property
    def programs_per_second(self) -> float:
        return (len(self.verdicts) / self.elapsed_seconds
                if self.elapsed_seconds else 0.0)

    @property
    def cells_per_second(self) -> float:
        return (self.cells_checked / self.elapsed_seconds
                if self.elapsed_seconds else 0.0)

    def summary(self) -> str:
        """Human-readable multi-line run summary."""
        counts = self.compile_counts()
        lines = [
            f"conformance: {len(self.verdicts)} programs x "
            f"{{record,baseline}} x {{{','.join(self.targets)}}} x "
            f"{{{','.join(SIM_NAMES)}}} = {self.cells_checked} cells "
            f"in {self.elapsed_seconds:.1f}s "
            f"({self.programs_per_second:.1f} programs/s, "
            f"jobs={self.jobs})",
            f"  compiles: {counts['compiles']} fresh, "
            f"{counts['artifact_hits']} artifact-cache hits",
        ]
        if self.budget_exhausted:
            lines.append("  (time budget exhausted before --count)")
        if not self.mismatches:
            lines.append("  all cells agree with the IR oracle")
            return "\n".join(lines)
        for mismatch_class, count in sorted(self.class_counts().items()):
            lines.append(f"  {mismatch_class}: {count}")
        for verdict, outcome in self.mismatches[:20]:
            lines.append(f"    {verdict.name} (seed {verdict.seed}): "
                         f"{outcome.describe()}")
        return "\n".join(lines)

    def triage_json(self) -> dict:
        """The deterministic triage record: no timings, no cache state.

        Byte-identical (after ``json.dumps``) between serial and
        parallel runs at any worker count, and between cold and warm
        artifact caches -- the equality the throughput benchmark and
        the degradation tests enforce.
        """
        return {
            "seed": self.seed,
            "count": self.count,
            "targets": list(self.targets),
            "programs": len(self.verdicts),
            "cells": self.cells_checked,
            "budget_exhausted": self.budget_exhausted,
            "class_counts": self.class_counts(),
            "mismatches": [{
                "program": verdict.name,
                "seed": verdict.seed,
                "cell": outcome.cell.describe(),
                "class": outcome.mismatch_class,
                "detail": outcome.detail,
                "samples": [list(sample) for sample in outcome.samples],
            } for verdict, outcome in self.mismatches],
        }

    def to_json(self) -> dict:
        """JSON-able run record (the CI artifact): triage + performance."""
        record = self.triage_json()
        counts = self.compile_counts()
        attempted = counts["compiles"] + counts["artifact_hits"]
        record["elapsed_seconds"] = round(self.elapsed_seconds, 3)
        record["performance"] = {
            "jobs": self.jobs,
            "programs_per_second": round(self.programs_per_second, 2),
            "cells_per_second": round(self.cells_per_second, 2),
            "cache": {
                **counts,
                "hit_rate": (round(counts["artifact_hits"] / attempted, 4)
                             if attempted else 0.0),
            },
            "stage_timings_seconds": {
                stage: round(seconds, 4)
                for stage, seconds in sorted(self.stage_timings().items())
            },
            "simulators": self.sim_stats,
        }
        return record


def _generate_case(seed: int, index: int, inputs_per_program: int,
                   config: Optional[ProgenConfig]
                   ) -> Tuple[int, Program, List[Mapping[str, object]]]:
    """One fuzz case: (derived seed, program, input sets).

    The derived seed (``seed * 10**6 + index``) makes every failure
    reproducible in isolation without replaying the whole run, and the
    per-case ``random.Random`` makes generation independent of *when*
    (or in which process) the case is checked.
    """
    program_seed = seed * 1_000_000 + index
    rng = random.Random(program_seed)
    program = generate_program(rng, index, config)
    input_sets = [generate_inputs(rng, program)
                  for _ in range(inputs_per_program)]
    return program_seed, program, input_sets


def run_conformance(count: int = 20,
                    seed: int = 0,
                    targets: Sequence[str] = DEFAULT_TARGETS,
                    inputs_per_program: int = 2,
                    config: Optional[ProgenConfig] = None,
                    budget_seconds: Optional[float] = None,
                    fault=None,
                    on_program: Optional[Callable] = None,
                    jobs: int = 1,
                    start: int = 0,
                    session: Optional[VerifySession] = None
                    ) -> ConformanceReport:
    """Generate ``count`` programs and check each across the matrix.

    ``budget_seconds`` stops the loop early (the report records that it
    did).  ``jobs > 1`` fans the per-program matrix checks out over a
    worker-process pool (:func:`repro.evalx.farm.verify_many`); triage
    results come back in program order, so the triage report is
    identical to a serial run -- only the wall clock changes.  When the
    pool cannot start, the fan-out silently degrades to the serial
    loop.

    ``start`` offsets the generated index range to ``[start, start +
    count)`` without changing any program: case ``index`` is a pure
    function of ``(seed, index, config)``, so a campaign shard covering
    ``start=200, count=100`` checks exactly the programs a whole-range
    run would have checked at indices 200..299.  ``session`` lets a
    long-lived caller (a campaign shard worker) reuse pooled
    targets/compilers across calls in the serial path; by default the
    serial loop pools one session across its own programs, which is
    byte-identical to fresh-per-program checks (see
    :class:`VerifySession`).
    """
    jobs = max(1, int(jobs))
    report = ConformanceReport(seed=seed, count=count,
                               targets=tuple(targets), jobs=jobs)
    started = time.monotonic()
    if jobs > 1:
        _run_conformance_parallel(report, started, count, seed, targets,
                                  inputs_per_program, config,
                                  budget_seconds, fault, on_program,
                                  jobs, start)
    else:
        if session is None:
            session = VerifySession()
        for index in range(start, start + count):
            if budget_seconds is not None \
                    and time.monotonic() - started > budget_seconds:
                report.budget_exhausted = True
                break
            program_seed, program, input_sets = _generate_case(
                seed, index, inputs_per_program, config)
            verdict = check_program(program, input_sets, targets=targets,
                                    fault=fault, seed=program_seed,
                                    session=session)
            report.verdicts.append(verdict)
            if on_program is not None:
                on_program(program, input_sets, verdict)
    report.elapsed_seconds = time.monotonic() - started
    from repro.sim.decode import decode_cache_stats
    from repro.sim.jit import jit_cache_stats
    report.sim_stats = {"decode_cache": decode_cache_stats(),
                        "jit": jit_cache_stats()}
    return report


def _run_conformance_parallel(report: ConformanceReport, started: float,
                              count: int, seed: int,
                              targets: Sequence[str],
                              inputs_per_program: int,
                              config: Optional[ProgenConfig],
                              budget_seconds: Optional[float],
                              fault, on_program: Optional[Callable],
                              jobs: int, start: int = 0) -> None:
    """Fan program checks out to farm workers, aggregating in job order."""
    from repro.evalx.farm import VerifyJob, verify_many
    from repro.verify.corpus import program_to_spec

    cases = [_generate_case(seed, index, inputs_per_program, config)
             for index in range(start, start + count)]
    job_list = [
        VerifyJob(program_spec=program_to_spec(program),
                  input_sets=tuple(input_sets),
                  targets=tuple(targets),
                  fault=((fault.original, fault.replacement)
                         if fault is not None else None),
                  seed=program_seed)
        for program_seed, program, input_sets in cases]

    # With a wall-clock budget the work is scheduled in chunks so the
    # run can stop between them; without one, a single submission keeps
    # every worker busy end to end.
    chunk = max(jobs * 4, 8) if budget_seconds is not None else count
    for start in range(0, len(job_list), max(chunk, 1)):
        if budget_seconds is not None \
                and time.monotonic() - started > budget_seconds:
            report.budget_exhausted = True
            break
        results = verify_many(job_list[start:start + chunk],
                              max_workers=jobs)
        for offset, result in enumerate(results):
            if result.verdict is None:
                _program_seed, program, _inputs = cases[start + offset]
                raise RuntimeError(
                    f"conformance worker failed on {program.name} "
                    f"(seed {job_list[start + offset].seed}): "
                    f"{result.error_type}: {result.error}")
            report.verdicts.append(result.verdict)
            if on_program is not None:
                _seed, program, input_sets = cases[start + offset]
                on_program(program, input_sets, result.verdict)
