"""The IR-level semantic oracle.

A second, independent implementation of MiniDFL's execution semantics:
a big-step evaluator over the lowered :class:`~repro.ir.program.Program`
that computes the expected memory state directly from the
:mod:`repro.ir.fixedpoint` arithmetic contract.  It shares *nothing*
with the code generators or the instruction-set simulators -- no trees,
no selector, no machine state -- so agreement between a simulated run
and the oracle is evidence about the whole compile-and-simulate stack,
not a tautology.

It is also deliberately implemented differently from the reference
interpreter (:meth:`Program.run` / :meth:`DataFlowGraph.evaluate`):
node values are computed with an explicit work stack instead of
recursion, and block outputs are staged through a write log.  The two
evaluators cross-check each other in ``tests/verify/test_oracle.py``.

The semantic contract enforced here (and by the reference interpreter,
and -- transitively -- by every conforming compiler/simulator pair):

- constants and stored values are reduced to the word width,
- expression intermediates are exact (extended precision), except that
  word-port operators (:data:`FixedPointContext.WORD_OPERAND_OPS`)
  wrap their operands,
- a block's reads all observe the pre-block memory state; its writes
  commit afterwards (dataflow, not sequential, semantics),
- a counted loop binds the induction value ``0 .. count-1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, MutableMapping, Optional, Tuple

from repro.ir.dfg import ArrayIndex, DataFlowGraph
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.ops import OpKind
from repro.ir.program import Block, Loop, Program, ProgramItem


class OracleError(Exception):
    """A program is not evaluable (bad symbol, bad index, bad operand)."""


class Oracle:
    """Big-step evaluator for lowered programs.

    One instance is immutable configuration (the fixed-point context);
    :meth:`run` is a pure function from ``(program, inputs)`` to the
    final environment.
    """

    def __init__(self, fpc: Optional[FixedPointContext] = None):
        self.fpc = fpc if fpc is not None else FixedPointContext(16)

    # ------------------------------------------------------------------
    # Environments
    # ------------------------------------------------------------------

    def initial_environment(self, program: Program) -> Dict[str, object]:
        """Declared initializers and zeroed storage, reduced to width."""
        env: Dict[str, object] = {}
        for symbol in program.symbols.values():
            if symbol.is_array:
                values = list(symbol.init) if symbol.init is not None \
                    else [0] * symbol.size
                if len(values) != symbol.size:
                    raise OracleError(
                        f"initializer for {symbol.name!r} has "
                        f"{len(values)} elements, declared {symbol.size}")
                env[symbol.name] = [self.fpc.wrap(int(v)) for v in values]
            else:
                init = int(symbol.init) if symbol.init is not None else 0
                env[symbol.name] = self.fpc.wrap(init)
        return env

    def load_inputs(self, env: MutableMapping[str, object],
                    inputs: Mapping[str, object]) -> None:
        """Overlay input values, wrapped to the word width.

        Mirrors what :func:`repro.sim.harness.load_environment` does on
        the machine side: values entering 16-bit data memory wrap.
        """
        for name, value in inputs.items():
            if isinstance(value, (list, tuple)):
                env[name] = [self.fpc.wrap(int(v)) for v in value]
            else:
                env[name] = self.fpc.wrap(int(value))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, program: Program,
            inputs: Optional[Mapping[str, object]] = None
            ) -> Dict[str, object]:
        """Evaluate ``program`` on ``inputs``; returns the final env."""
        env = self.initial_environment(program)
        if inputs:
            self.load_inputs(env, inputs)
        self._exec_items(program.body, env, induction_value=0)
        return env

    def outputs(self, program: Program,
                inputs: Optional[Mapping[str, object]] = None
                ) -> Dict[str, object]:
        """The output-role slice of :meth:`run`'s environment."""
        env = self.run(program, inputs)
        return {name: env[name]
                for name, symbol in program.symbols.items()
                if symbol.role == "output"}

    def _exec_items(self, items: Iterable[ProgramItem],
                    env: MutableMapping[str, object],
                    induction_value: int) -> None:
        for item in items:
            if isinstance(item, Block):
                self._exec_block(item.dfg, env, induction_value)
            elif isinstance(item, Loop):
                for iteration in range(item.count):
                    self._exec_items(item.body, env,
                                     induction_value=iteration)
            else:
                raise OracleError(f"unexpected program item {item!r}")

    def _exec_block(self, dfg: DataFlowGraph,
                    env: MutableMapping[str, object],
                    induction_value: int) -> None:
        values = self._node_values(dfg, env, induction_value)
        # Stage every write, then commit: all reads above observed the
        # pre-block state, and the commit order cannot matter unless
        # two outputs alias -- in which case the later one wins, which
        # is also what the generated code does.
        writes: List[Tuple[str, Optional[ArrayIndex], int]] = []
        for output in dfg.outputs:
            writes.append((output.symbol, output.index,
                           self.fpc.reduce(values[output.node])))
        for symbol, index, value in writes:
            self._write(env, symbol, index, induction_value, value)

    def _node_values(self, dfg: DataFlowGraph,
                     env: Mapping[str, object],
                     induction_value: int) -> Dict[int, int]:
        """Values of every node feeding an output (explicit stack)."""
        values: Dict[int, int] = {}
        stack: List[int] = [output.node for output in dfg.outputs]
        while stack:
            ident = stack.pop()
            if ident in values:
                continue
            node = dfg.node(ident)
            if node.kind is OpKind.CONST:
                values[ident] = self.fpc.reduce(node.value)
            elif node.kind is OpKind.REF:
                values[ident] = self._read(env, node.symbol, node.index,
                                           induction_value)
            else:
                pending = [oid for oid in node.operands
                           if oid not in values]
                if pending:
                    stack.append(ident)
                    stack.extend(pending)
                    continue
                operands = [values[oid] for oid in node.operands]
                try:
                    values[ident] = self.fpc.apply(node.operator, *operands)
                except ValueError as exc:
                    raise OracleError(
                        f"node n{ident} ({node.describe()}): {exc}")
        return values

    # ------------------------------------------------------------------
    # Memory access
    # ------------------------------------------------------------------

    def _read(self, env: Mapping[str, object], symbol: str,
              index: Optional[ArrayIndex], induction_value: int) -> int:
        if symbol not in env:
            raise OracleError(f"symbol {symbol!r} is not bound")
        stored = env[symbol]
        if index is None:
            if isinstance(stored, list):
                raise OracleError(f"{symbol!r} is an array; index required")
            return int(stored)
        if not isinstance(stored, list):
            raise OracleError(f"{symbol!r} is a scalar; cannot index")
        element = index.coeff * induction_value + index.offset
        if not 0 <= element < len(stored):
            raise OracleError(
                f"{symbol}[{element}] out of bounds (size {len(stored)})")
        return int(stored[element])

    def _write(self, env: MutableMapping[str, object], symbol: str,
               index: Optional[ArrayIndex], induction_value: int,
               value: int) -> None:
        if index is None:
            env[symbol] = value
            return
        stored = env.get(symbol)
        if not isinstance(stored, list):
            raise OracleError(f"{symbol!r} is not a declared array")
        element = index.coeff * induction_value + index.offset
        if not 0 <= element < len(stored):
            raise OracleError(
                f"{symbol}[{element}] out of bounds (size {len(stored)})")
        stored[element] = value

    # ------------------------------------------------------------------
    # Tree evaluation (for the algebraic-equivalence property tests)
    # ------------------------------------------------------------------

    def evaluate_tree(self, tree, env: Mapping[str, object],
                      induction_value: int = 0) -> int:
        """Evaluate an expression :class:`~repro.ir.trees.Tree`.

        Same semantics as node evaluation (exact intermediates, word
        ports wrap), implemented with an explicit stack so it stays
        independent of :meth:`Tree.evaluate`.
        """
        todo: List[Tuple[object, bool]] = [(tree, False)]
        results: List[int] = []
        while todo:
            current, expanded = todo.pop()
            if current.kind is OpKind.CONST:
                results.append(self.fpc.reduce(current.value))
            elif current.kind is OpKind.REF:
                results.append(self._read(env, current.symbol,
                                          current.index, induction_value))
            elif not expanded:
                todo.append((current, True))
                for child in reversed(current.children):
                    todo.append((child, False))
            else:
                arity = len(current.children)
                operands = results[len(results) - arity:]
                del results[len(results) - arity:]
                try:
                    results.append(self.fpc.apply(current.operator,
                                                  *operands))
                except ValueError as exc:
                    raise OracleError(f"{current}: {exc}")
        assert len(results) == 1
        return results[0]
