"""High-level convenience API.

Most of the library is usable directly (targets, compilers, simulator);
this module wires the common end-to-end path into two calls::

    from repro import compile_kernel, compile_source

    result = compile_kernel("fir", target="tc25", compiler="record")
    print(result.listing())
    outputs, cycles = result.run({"x0": 100, "h": [...], "x": [...]})

    result = compile_source(my_minidfl_text, target="m56")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.baseline.compiler import BaselineCompiler, BaselineOptions
from repro.codegen.compiled import CompiledProgram
from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.dfl import compile_dfl
from repro.dspstone import KERNEL_NAMES, hand_reference, kernel
from repro.ir.program import Program
from repro.sim.harness import run_compiled
from repro.targets.model import TargetModel


def available_kernels() -> Tuple[str, ...]:
    """The DSPStone kernel names (Table 1 row order)."""
    return tuple(KERNEL_NAMES)


def available_targets() -> Tuple[str, ...]:
    """Names accepted by the ``target=`` arguments."""
    return ("tc25", "m56", "risc16", "asip")


def _resolve_target(target: Union[str, TargetModel, None]) -> TargetModel:
    if target is None:
        target = "tc25"
    if isinstance(target, str):
        if target == "tc25":
            from repro.targets.tc25 import TC25
            return TC25()
        if target == "m56":
            from repro.targets.m56 import M56
            return M56()
        if target == "risc16":
            from repro.targets.risc import Risc16
            return Risc16()
        if target == "asip":
            from repro.targets.asip import Asip
            return Asip()
        raise ValueError(f"unknown target {target!r}; "
                         f"available: {available_targets()}")
    return target


@dataclass
class CompilationResult:
    """A compiled program plus its source-level Program for running."""

    program: Program
    compiled: CompiledProgram

    def listing(self) -> str:
        """Annotated assembly listing of the compiled program."""
        return self.compiled.listing()

    def words(self) -> int:
        """Static code size in instruction words."""
        return self.compiled.words()

    def run(self, inputs: Mapping[str, object]
            ) -> Tuple[Dict[str, object], int]:
        """Simulate one invocation; returns (outputs, cycles)."""
        outputs, state = run_compiled(self.compiled, inputs)
        result = {
            name: outputs[name]
            for name, symbol in self.program.symbols.items()
            if symbol.role == "output" and name in outputs
        }
        return result, state.cycles


def compile_program(program: Program,
                    target: Union[str, TargetModel, None] = None,
                    compiler: str = "record",
                    options=None,
                    tuning_db=None) -> CompilationResult:
    """Compile an already-lowered Program.

    ``compiler="tuned"`` is the record pipeline steered by a tuning
    database (see :mod:`repro.tune`): ``tuning_db`` may be a
    :class:`~repro.tune.db.TuningDB`, a path to one, or ``None`` for
    the conventional ``.repro-tune.json``; ``options`` becomes the
    fallback for programs the database has no entry for.
    """
    target_model = _resolve_target(target)
    if compiler == "record":
        built = RecordCompiler(target_model, options).compile(program)
    elif compiler == "tuned":
        from repro.tune.db import TuningDB
        from repro.tune.tuned import TunedCompiler
        if tuning_db is None or isinstance(tuning_db, (str, bytes)) \
                or hasattr(tuning_db, "__fspath__"):
            tuning_db = TuningDB.load(tuning_db)
        built = TunedCompiler(target_model, db=tuning_db,
                              default_options=options).compile(program)
    elif compiler == "baseline":
        built = BaselineCompiler(target_model, options).compile(program)
    elif compiler == "hand":
        built = hand_reference(program.name, target_model)
    else:
        raise ValueError(f"unknown compiler {compiler!r}; expected "
                         "'record', 'tuned', 'baseline' or 'hand'")
    return CompilationResult(program=program, compiled=built)


def compile_source(source: str,
                   target: Union[str, TargetModel, None] = None,
                   compiler: str = "record",
                   options=None,
                   tuning_db=None) -> CompilationResult:
    """Compile MiniDFL source text end to end."""
    return compile_program(compile_dfl(source), target, compiler,
                           options, tuning_db=tuning_db)


def compile_kernel(name: str,
                   target: Union[str, TargetModel, None] = None,
                   compiler: str = "record",
                   options=None,
                   tuning_db=None) -> CompilationResult:
    """Compile one of the DSPStone kernels by name."""
    return compile_program(kernel(name).program, target, compiler,
                           options, tuning_db=tuning_db)
