"""The DSPStone kernel suite (Zivojnovic et al. [42]) -- Table 1's workload.

Ten kernels, written in MiniDFL, matching the rows of the paper's
Table 1: real_update, complex_multiply, complex_update, n_real_updates,
n_complex_updates, fir, iir_biquad_one_section, iir_biquad_N_sections,
dot_product, convolution.

Each kernel ships with:

- its MiniDFL source and lowered :class:`repro.ir.Program`,
- a seeded input generator producing realistic operand ranges
  (Q15-scaled coefficients for the fractional kernels),
- the paper's Table 1 row (target-specific compiler %, RECORD %) for
  the EXPERIMENTS.md comparison, and
- a hand-written TMS320C25 assembly reference
  (:mod:`repro.dspstone.reference`) -- the 100% denominator -- which the
  test suite executes and checks bit-exactly against the MiniDFL
  reference semantics.
"""

from repro.dspstone.kernels import (
    KERNEL_NAMES, KernelSpec, all_kernels, kernel,
)
from repro.dspstone.reference import hand_reference

__all__ = ["KERNEL_NAMES", "KernelSpec", "all_kernels", "kernel",
           "hand_reference"]
