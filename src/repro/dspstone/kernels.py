"""MiniDFL sources and metadata for the ten DSPStone kernels.

Operand-range conventions (chosen so that intermediate products fit the
32-bit accumulator of the TC25 with margin -- see DESIGN.md):

- integer kernels: operands in [-1000, 1000];
- fractional (Q15) kernels: coefficients in [-30000, 30000] used with
  ``>> 15`` rescaling, signals in [-2000, 2000].
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dfl import compile_dfl
from repro.ir.program import Program

FIR_TAPS = 16
CONV_LENGTH = 16
N_UPDATES = 16
N_COMPLEX = 8
BIQUAD_SECTIONS = 4


@dataclass
class KernelSpec:
    """One DSPStone kernel: source, program, inputs, paper row."""

    name: str
    description: str
    source: str
    # Paper Table 1 row: (target-specific compiler %, RECORD %) of hand
    # assembly size.
    paper_baseline_pct: int
    paper_record_pct: int
    make_inputs: Callable[[random.Random], Dict[str, object]] = None
    program_: Optional[Program] = field(default=None, repr=False)

    @property
    def program(self) -> Program:
        if self.program_ is None:
            self.program_ = compile_dfl(self.source)
        return self.program_

    def inputs(self, seed: int = 0) -> Dict[str, object]:
        """Seeded, deterministic input environment for the kernel."""
        return self.make_inputs(random.Random(seed))


def _ints(rng: random.Random, count: int, lo: int = -1000,
          hi: int = 1000) -> List[int]:
    return [rng.randint(lo, hi) for _ in range(count)]


def _q15(rng: random.Random, count: int) -> List[int]:
    return [rng.randint(-30000, 30000) for _ in range(count)]


_SPECS: List[KernelSpec] = []


def _register(spec: KernelSpec) -> None:
    _SPECS.append(spec)


# ----------------------------------------------------------------------
# 1. real_update: d = a*b + c
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="real_update",
    description="single real multiply-accumulate: d = a*b + c",
    paper_baseline_pct=60, paper_record_pct=60,
    source="""
program real_update;
input  a, b, c;
output d;
begin
  d := a*b + c;
end.
""",
    make_inputs=lambda rng: {"a": rng.randint(-170, 170),
                             "b": rng.randint(-170, 170),
                             "c": rng.randint(-1000, 1000)},
))


# ----------------------------------------------------------------------
# 2. complex_multiply: c = a * b (complex)
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="complex_multiply",
    description="complex multiply: cr+j*ci = (ar+j*ai)*(br+j*bi)",
    paper_baseline_pct=84, paper_record_pct=79,
    source="""
program complex_multiply;
input  ar, ai, br, bi;
output cr, ci;
begin
  cr := ar*br - ai*bi;
  ci := ar*bi + ai*br;
end.
""",
    make_inputs=lambda rng: {name: rng.randint(-120, 120)
                             for name in ("ar", "ai", "br", "bi")},
))


# ----------------------------------------------------------------------
# 3. complex_update: d = c + a*b (complex)
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="complex_update",
    description="complex update: d = c + a*b (complex MAC)",
    paper_baseline_pct=148, paper_record_pct=86,
    source="""
program complex_update;
input  ar, ai, br, bi, cr, ci;
output dr, di;
begin
  dr := cr + ar*br - ai*bi;
  di := ci + ar*bi + ai*br;
end.
""",
    make_inputs=lambda rng: {name: rng.randint(-120, 120)
                             for name in ("ar", "ai", "br", "bi",
                                          "cr", "ci")},
))


# ----------------------------------------------------------------------
# 4. n_real_updates: d[i] = a[i]*b[i] + c[i]
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="n_real_updates",
    description=f"{N_UPDATES} independent real updates "
                "d[i] = a[i]*b[i] + c[i]",
    paper_baseline_pct=180, paper_record_pct=100,
    source=f"""
program n_real_updates;
const N = {N_UPDATES};
input  a[N], b[N], c[N];
output d[N];
begin
  for i in 0 .. N-1 do
    d[i] := a[i]*b[i] + c[i];
  end;
end.
""",
    make_inputs=lambda rng: {"a": _ints(rng, N_UPDATES, -170, 170),
                             "b": _ints(rng, N_UPDATES, -170, 170),
                             "c": _ints(rng, N_UPDATES)},
))


# ----------------------------------------------------------------------
# 5. n_complex_updates: d[i] = c[i] + a[i]*b[i], complex, interleaved
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="n_complex_updates",
    description=f"{N_COMPLEX} complex updates on re/im-interleaved "
                "arrays",
    paper_baseline_pct=182, paper_record_pct=118,
    source=f"""
program n_complex_updates;
const N = {N_COMPLEX};
input  a[2*N], b[2*N], c[2*N];
output d[2*N];
begin
  for i in 0 .. N-1 do
    d[2*i]   := c[2*i]   + a[2*i]*b[2*i]   - a[2*i+1]*b[2*i+1];
    d[2*i+1] := c[2*i+1] + a[2*i]*b[2*i+1] + a[2*i+1]*b[2*i];
  end;
end.
""",
    make_inputs=lambda rng: {"a": _ints(rng, 2 * N_COMPLEX, -120, 120),
                             "b": _ints(rng, 2 * N_COMPLEX, -120, 120),
                             "c": _ints(rng, 2 * N_COMPLEX)},
))


# ----------------------------------------------------------------------
# 6. fir: y = sum(h[i]*x[i]) >> 15, with delay-line shift
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="fir",
    description=f"{FIR_TAPS}-tap Q15 FIR filter with delay-line update",
    paper_baseline_pct=700, paper_record_pct=200,
    source=f"""
program fir;
const N = {FIR_TAPS};
input  x0;          {{ new sample }}
input  h[N];        {{ Q15 coefficients }}
var    x[N];        {{ delay line (persistent state) }}
output y;
var    acc;
begin
  x[0] := x0;
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + ((h[i] * x[i]) >> 15);
  end;
  {{ shift the delay line towards higher indexes (DMOV direction) }}
  for k in 0 .. N-2 do
    x[N-1-k] := x[N-2-k];
  end;
  y := acc;
end.
""",
    make_inputs=lambda rng: {"x0": rng.randint(-2000, 2000),
                             "h": _q15(rng, FIR_TAPS),
                             "x": _ints(rng, FIR_TAPS, -2000, 2000)},
))


# ----------------------------------------------------------------------
# 7. iir_biquad_one_section (direct form II, Q15)
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="iir_biquad_one_section",
    description="one direct-form-II biquad section, Q15 coefficients",
    paper_baseline_pct=130, paper_record_pct=145,
    source="""
program iir_biquad_one_section;
input  x;
input  b0, b1, b2, a1, a2;   { Q15 }
output y;
var    w;
begin
  w := x - ((a1 * w@1) >> 15) - ((a2 * w@2) >> 15);
  y := ((b0 * w) >> 15) + ((b1 * w@1) >> 15) + ((b2 * w@2) >> 15);
end.
""",
    make_inputs=lambda rng: {
        "x": rng.randint(-2000, 2000),
        "b0": rng.randint(-30000, 30000),
        "b1": rng.randint(-30000, 30000),
        "b2": rng.randint(-30000, 30000),
        "a1": rng.randint(-15000, 15000),
        "a2": rng.randint(-15000, 15000),
        ".h.w": _ints(rng, 2, -2000, 2000),
    },
))


# ----------------------------------------------------------------------
# 8. iir_biquad_N_sections (cascade, per-section state arrays)
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="iir_biquad_N_sections",
    description=f"cascade of {BIQUAD_SECTIONS} biquad sections, Q15",
    paper_baseline_pct=300, paper_record_pct=258,
    source=f"""
program iir_biquad_N_sections;
const NS = {BIQUAD_SECTIONS};
input  x;
input  b0[NS], b1[NS], b2[NS], a1[NS], a2[NS];   {{ Q15 }}
var    w1[NS], w2[NS];                           {{ section states }}
output y;
var    s, w;
begin
  s := x;
  for j in 0 .. NS-1 do
    w := s - ((a1[j]*w1[j]) >> 15) - ((a2[j]*w2[j]) >> 15);
    s := ((b0[j]*w) >> 15) + ((b1[j]*w1[j]) >> 15)
         + ((b2[j]*w2[j]) >> 15);
    w2[j] := w1[j];
    w1[j] := w;
  end;
  y := s;
end.
""",
    make_inputs=lambda rng: {
        "x": rng.randint(-2000, 2000),
        "b0": _q15(rng, BIQUAD_SECTIONS),
        "b1": _q15(rng, BIQUAD_SECTIONS),
        "b2": _q15(rng, BIQUAD_SECTIONS),
        "a1": [rng.randint(-15000, 15000)
               for _ in range(BIQUAD_SECTIONS)],
        "a2": [rng.randint(-15000, 15000)
               for _ in range(BIQUAD_SECTIONS)],
        "w1": _ints(rng, BIQUAD_SECTIONS, -2000, 2000),
        "w2": _ints(rng, BIQUAD_SECTIONS, -2000, 2000),
    },
))


# ----------------------------------------------------------------------
# 9. dot_product (DSPStone: vector length 2, straight-line)
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="dot_product",
    description="dot product of two length-2 vectors (straight-line)",
    paper_baseline_pct=120, paper_record_pct=120,
    source="""
program dot_product;
input  a[2], b[2];
output y;
begin
  y := a[0]*b[0] + a[1]*b[1];
end.
""",
    make_inputs=lambda rng: {"a": _ints(rng, 2, -120, 120),
                             "b": _ints(rng, 2, -120, 120)},
))


# ----------------------------------------------------------------------
# 10. convolution: y = sum x[i]*h[N-1-i]
# ----------------------------------------------------------------------

_register(KernelSpec(
    name="convolution",
    description=f"length-{CONV_LENGTH} convolution sum "
                "y = sum x[i]*h[N-1-i]",
    paper_baseline_pct=500, paper_record_pct=600,
    source=f"""
program convolution;
const N = {CONV_LENGTH};
input  x[N], h[N];
output y;
var    acc;
begin
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + x[i] * h[N-1-i];
  end;
  y := acc;
end.
""",
    make_inputs=lambda rng: {"x": _ints(rng, CONV_LENGTH, -120, 120),
                             "h": _ints(rng, CONV_LENGTH, -120, 120)},
))


# ----------------------------------------------------------------------
# Public accessors
# ----------------------------------------------------------------------

KERNEL_NAMES: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)

_BY_NAME: Dict[str, KernelSpec] = {spec.name: spec for spec in _SPECS}


def kernel(name: str) -> KernelSpec:
    """Look up a kernel by its Table 1 row name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(KERNEL_NAMES)
        raise KeyError(f"unknown kernel {name!r}; available: {known}")


def all_kernels() -> List[KernelSpec]:
    """All ten kernels, in Table 1 row order."""
    return list(_SPECS)
