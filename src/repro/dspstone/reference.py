"""Hand-written TMS320C25 assembly references -- Table 1's denominator.

The paper's Table 1 reports compiled code size *relative to assembly
code*; these are our expert-level assembly programs, one per kernel.
They use the full idiom repertoire a DSP programmer of the era would:
combo instructions (LTA/LTS/LTP), T-register sharing across products,
post-modified pointer walks, hardware repeat with MAC/MACD and reversed
program-memory coefficient tables.

Every program here is *executed* by the test suite and checked
bit-exactly against the MiniDFL reference semantics of its kernel -- a
hand reference that does not compute the right answer would silently
skew every ratio in the reproduction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.codegen.asm import (
    AsmInstr, CodeSeq, Imm, Label, LabelRef, Mem, Reg,
)
from repro.codegen.compiled import (
    CompiledProgram, PmemTable, build_memory_map,
)
from repro.dspstone.kernels import (
    BIQUAD_SECTIONS, CONV_LENGTH, FIR_TAPS, N_COMPLEX, N_UPDATES, kernel,
)
from repro.ir.program import Program


class _Asm:
    """Tiny assembler helper bound to a kernel's memory map."""

    def __init__(self, program: Program, target):
        self.program = program
        self.target = target
        self.memory_map = build_memory_map(program.symbols, [])
        self.code = CodeSeq()
        self.tables: List[PmemTable] = []

    # -- operands -------------------------------------------------------

    def d(self, symbol: str, offset: int = 0) -> Mem:
        """Direct memory operand for symbol[offset]."""
        return Mem(symbol=symbol, mode="direct",
                   address=self.memory_map.address_of(symbol, offset))

    def ind(self, areg: str, post: int = 0) -> Mem:
        """Indirect operand through an address register."""
        return Mem(symbol=f"<{areg}>", mode="indirect", areg=areg,
                   post_modify=post)

    # -- emission ---------------------------------------------------------

    def emit(self, opcode: str, *operands, words: int = 1,
             cycles: int = 1, comment: str = "") -> None:
        self.code.append(AsmInstr(opcode=opcode, operands=tuple(operands),
                                  words=words, cycles=cycles,
                                  comment=comment))

    def label(self, name: str) -> None:
        self.code.append(Label(name))

    def lrlk(self, areg: str, symbol: str, offset: int = 0) -> None:
        self.emit("LRLK", Reg(areg),
                  Imm(self.memory_map.address_of(symbol, offset)),
                  words=2, cycles=2)

    def table(self, label: str, symbol: str, start: int, stride: int,
              count: int) -> None:
        self.tables.append(PmemTable(label=label, symbol=symbol,
                                     start=start, stride=stride,
                                     count=count))

    def finish(self, name: str) -> CompiledProgram:
        return CompiledProgram(
            name=name, target=self.target, code=self.code,
            memory_map=self.memory_map,
            symbols=dict(self.program.symbols),
            pmem_tables=self.tables, compiler="hand",
            stats={"words": self.code.words()})


# ----------------------------------------------------------------------
# Kernel programs
# ----------------------------------------------------------------------

def _real_update(a: _Asm) -> None:
    a.emit("LT", a.d("a"))
    a.emit("MPY", a.d("b"))
    a.emit("PAC")
    a.emit("ADD", a.d("c"))
    a.emit("SACL", a.d("d"))


def _complex_multiply(a: _Asm) -> None:
    a.emit("LT", a.d("ar"))
    a.emit("MPY", a.d("br"))
    a.emit("LTP", a.d("ai"), comment="acc=ar*br, T=ai")
    a.emit("MPY", a.d("bi"))
    a.emit("SPAC")
    a.emit("SACL", a.d("cr"))
    a.emit("MPY", a.d("br"), comment="T still ai")
    a.emit("LTP", a.d("ar"), comment="acc=ai*br, T=ar")
    a.emit("MPY", a.d("bi"))
    a.emit("APAC")
    a.emit("SACL", a.d("ci"))


def _complex_update(a: _Asm) -> None:
    a.emit("LAC", a.d("cr"))
    a.emit("LT", a.d("ar"))
    a.emit("MPY", a.d("br"))
    a.emit("LTA", a.d("ai"), comment="acc+=ar*br, T=ai")
    a.emit("MPY", a.d("bi"))
    a.emit("SPAC")
    a.emit("SACL", a.d("dr"))
    a.emit("LAC", a.d("ci"))
    a.emit("MPY", a.d("br"), comment="T still ai")
    a.emit("LTA", a.d("ar"), comment="acc+=ai*br, T=ar")
    a.emit("MPY", a.d("bi"))
    a.emit("APAC")
    a.emit("SACL", a.d("di"))


def _n_real_updates(a: _Asm) -> None:
    a.lrlk("AR0", "a")
    a.lrlk("AR1", "b")
    a.lrlk("AR2", "c")
    a.lrlk("AR3", "d")
    a.emit("LARK", Reg("AR7"), Imm(N_UPDATES - 1))
    a.label("L")
    a.emit("LT", a.ind("AR0", 1))
    a.emit("MPY", a.ind("AR1", 1))
    a.emit("PAC")
    a.emit("ADD", a.ind("AR2", 1))
    a.emit("SACL", a.ind("AR3", 1))
    a.emit("BANZ", LabelRef("L"), Reg("AR7"), words=2, cycles=2)


def _n_complex_updates(a: _Asm) -> None:
    a.lrlk("AR0", "a")
    a.lrlk("AR1", "b")
    a.lrlk("AR2", "c")
    a.lrlk("AR3", "d")
    a.emit("LARK", Reg("AR7"), Imm(N_COMPLEX - 1))
    a.label("L")
    a.emit("LT", a.ind("AR0", 1), comment="T=ar")
    a.emit("MPY", a.ind("AR1", 1), comment="P=ar*br")
    a.emit("LAC", a.ind("AR2", 1), comment="acc=cr")
    a.emit("LTA", a.ind("AR0", -1), comment="acc+=ar*br, T=ai")
    a.emit("MPY", a.ind("AR1", -1), comment="P=ai*bi")
    a.emit("SPAC")
    a.emit("SACL", a.ind("AR3", 1), comment="dr")
    a.emit("MPY", a.ind("AR1", 1), comment="P=ai*br (T=ai)")
    a.emit("LAC", a.ind("AR2", 1), comment="acc=ci")
    a.emit("LTA", a.ind("AR0", 2), comment="acc+=ai*br, T=ar, a+=2")
    a.emit("MPY", a.ind("AR1", 1), comment="P=ar*bi")
    a.emit("APAC")
    a.emit("SACL", a.ind("AR3", 1), comment="di")
    a.emit("BANZ", LabelRef("L"), Reg("AR7"), words=2, cycles=2)


def _fir(a: _Asm) -> None:
    # Insert the new sample, then one MACD pass computes the Q15 sum
    # over all taps while shifting the delay line (coefficients stream
    # reversed from program memory).
    a.emit("LAC", a.d("x0"))
    a.emit("SACL", a.d("x", 0), comment="insert new sample")
    a.emit("SPM", Imm(15), comment="Q15 product shift")
    a.emit("LT", a.d("x", FIR_TAPS - 1))
    a.emit("MPY", a.d("h", FIR_TAPS - 1), comment="P=h[15]*x[15]")
    a.emit("ZAC")
    a.lrlk("AR0", "x", FIR_TAPS - 2)
    a.emit("RPTK", Imm(FIR_TAPS - 2))
    a.emit("MACD", LabelRef("HREV"), a.ind("AR0", -1), words=2, cycles=2,
           comment="taps 14..0, shifting x up")
    a.emit("APAC", comment="fold last product")
    a.emit("SACL", a.d("y"))
    a.table("HREV", "h", start=FIR_TAPS - 2, stride=-1,
            count=FIR_TAPS - 1)


def _iir_biquad_one_section(a: _Asm) -> None:
    hist = ".h.w"
    a.emit("SPM", Imm(15))
    a.emit("LAC", a.d("x"))
    a.emit("LT", a.d(hist, 0), comment="T=w[n-1]")
    a.emit("MPY", a.d("a1"))
    a.emit("LTS", a.d(hist, 1), comment="acc-=a1*w1>>15, T=w[n-2]")
    a.emit("MPY", a.d("a2"))
    a.emit("SPAC")
    a.emit("SACL", a.d("w"))
    a.emit("LT", a.d("w"))
    a.emit("MPY", a.d("b0"))
    a.emit("LTP", a.d(hist, 0), comment="acc=b0*w>>15, T=w1")
    a.emit("MPY", a.d("b1"))
    a.emit("LTA", a.d(hist, 1), comment="acc+=b1*w1>>15, T=w2")
    a.emit("MPY", a.d("b2"))
    a.emit("APAC")
    a.emit("SACL", a.d("y"))
    a.emit("DMOV", a.d(hist, 0), comment="w2 := w1")
    a.emit("LAC", a.d("w"))
    a.emit("SACL", a.d(hist, 0), comment="w1 := w")


def _iir_biquad_n_sections(a: _Asm) -> None:
    a.emit("SPM", Imm(15))
    a.emit("LAC", a.d("x"))
    a.emit("SACL", a.d("s"))
    a.lrlk("AR0", "a1")
    a.lrlk("AR1", "a2")
    a.lrlk("AR2", "b0")
    a.lrlk("AR3", "b1")
    a.lrlk("AR4", "b2")
    a.lrlk("AR5", "w1")
    a.lrlk("AR6", "w2")
    a.emit("LARK", Reg("AR7"), Imm(BIQUAD_SECTIONS - 1))
    a.label("L")
    a.emit("LAC", a.d("s"))
    a.emit("LT", a.ind("AR5"), comment="T=w1[j]")
    a.emit("MPY", a.ind("AR0", 1), comment="P=a1*w1")
    a.emit("LTS", a.ind("AR6"), comment="acc-=, T=w2[j]")
    a.emit("MPY", a.ind("AR1", 1), comment="P=a2*w2")
    a.emit("SPAC")
    a.emit("SACL", a.d("w"))
    a.emit("LT", a.d("w"))
    a.emit("MPY", a.ind("AR2", 1), comment="P=b0*w")
    a.emit("LTP", a.ind("AR5"), comment="acc=b0*w>>15, T=w1[j]")
    a.emit("MPY", a.ind("AR3", 1), comment="P=b1*w1")
    a.emit("LTA", a.ind("AR6"), comment="acc+=, T=w2[j]")
    a.emit("MPY", a.ind("AR4", 1), comment="P=b2*w2")
    a.emit("APAC")
    a.emit("SACL", a.d("s"))
    a.emit("LAC", a.ind("AR5"), comment="w2[j] := w1[j]")
    a.emit("SACL", a.ind("AR6", 1))
    a.emit("LAC", a.d("w"), comment="w1[j] := w")
    a.emit("SACL", a.ind("AR5", 1))
    a.emit("BANZ", LabelRef("L"), Reg("AR7"), words=2, cycles=2)
    a.emit("LAC", a.d("s"))
    a.emit("SACL", a.d("y"))


def _dot_product(a: _Asm) -> None:
    a.emit("LT", a.d("a", 0))
    a.emit("MPY", a.d("b", 0))
    a.emit("LTP", a.d("a", 1))
    a.emit("MPY", a.d("b", 1))
    a.emit("APAC")
    a.emit("SACL", a.d("y"))


def _convolution(a: _Asm) -> None:
    # x streams forward from program memory, h walks backward in data
    # memory: RPT/MAC does the whole sum.
    a.emit("ZAC")
    a.emit("MPYK", Imm(0), comment="clear P")
    a.lrlk("AR0", "h", CONV_LENGTH - 1)
    a.emit("RPTK", Imm(CONV_LENGTH - 1))
    a.emit("MAC", LabelRef("XTAB"), a.ind("AR0", -1), words=2, cycles=2)
    a.emit("APAC")
    a.emit("SACL", a.d("y"))
    a.table("XTAB", "x", start=0, stride=1, count=CONV_LENGTH)


_BUILDERS = {
    "real_update": _real_update,
    "complex_multiply": _complex_multiply,
    "complex_update": _complex_update,
    "n_real_updates": _n_real_updates,
    "n_complex_updates": _n_complex_updates,
    "fir": _fir,
    "iir_biquad_one_section": _iir_biquad_one_section,
    "iir_biquad_N_sections": _iir_biquad_n_sections,
    "dot_product": _dot_product,
    "convolution": _convolution,
}


def hand_reference(name: str, target=None) -> CompiledProgram:
    """The hand-written TC25 program for a DSPStone kernel."""
    if target is None:
        from repro.targets.tc25 import TC25
        target = TC25()
    spec = kernel(name)
    asm = _Asm(spec.program, target)
    _BUILDERS[name](asm)
    return asm.finish(name)
