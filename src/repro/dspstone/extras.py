"""Additional DSPStone kernels beyond the paper's Table 1 rows.

DSPStone [42] contains more kernels than Table 1 reports; these are the
ones expressible in MiniDFL v1 (single-induction affine indexing):

- ``lms``: the adaptive FIR filter -- filtering, error computation and
  coefficient update with a Q15 step size, plus the delay-line shift.
  Exercises multi-access streams (``h[i]`` is read and written in the
  same iteration) and cross-statement scalar forwarding.
- ``matrix_1x3``: a 1x3 vector times 3x3 matrix product over a
  flattened, stride-3-walked coefficient array.  Exercises stream chain
  merging (offsets 0/1/2 at stride 3 share one address register).

The true matrix-times-matrix kernels need two induction variables in
one index expression (``a[N*i+k]``), which MiniDFL v1 deliberately does
not have -- see DESIGN.md, restrictions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dspstone.kernels import KernelSpec, _ints, _q15

LMS_TAPS = 8


EXTRA_SPECS: List[KernelSpec] = [
    KernelSpec(
        name="lms",
        description=f"{LMS_TAPS}-tap Q15 LMS adaptive filter "
                    "(filter + error + coefficient update)",
        paper_baseline_pct=0, paper_record_pct=0,     # not a Table 1 row
        source=f"""
program lms;
const N = {LMS_TAPS};
const MU = 1024;         {{ adaptation step, Q8 scaling }}
input  x0, d;            {{ new sample, desired response }}
var    x[N];             {{ delay line (state) }}
var    h[N];             {{ adaptive coefficients (state) }}
output y, e;
var    acc, mu_e;
begin
  x[0] := x0;
  acc := 0;
  for i in 0 .. N-1 do
    acc := acc + ((h[i] * x[i]) >> 15);
  end;
  y := acc;
  e := d - acc;
  mu_e := (MU * e) >> 8;
  for j in 0 .. N-1 do
    h[j] := h[j] + ((mu_e * x[j]) >> 15);
  end;
  for k in 0 .. N-2 do
    x[N-1-k] := x[N-2-k];
  end;
end.
""",
        make_inputs=lambda rng: {
            "x0": rng.randint(-2000, 2000),
            "d": rng.randint(-2000, 2000),
            "x": _ints(rng, LMS_TAPS, -2000, 2000),
            "h": _q15(rng, LMS_TAPS),
        },
    ),
    KernelSpec(
        name="matrix_1x3",
        description="1x3 vector times 3x3 matrix (flattened, stride-3 "
                    "coefficient walk)",
        paper_baseline_pct=0, paper_record_pct=0,     # not a Table 1 row
        source="""
program matrix_1x3;
input  a[9];             { row-major 3x3 matrix }
input  x[3];
output y[3];
begin
  for i in 0 .. 2 do
    y[i] := a[3*i]*x[0] + a[3*i+1]*x[1] + a[3*i+2]*x[2];
  end;
end.
""",
        make_inputs=lambda rng: {
            "a": _ints(rng, 9, -120, 120),
            "x": _ints(rng, 3, -120, 120),
        },
    ),
]

_BY_NAME: Dict[str, KernelSpec] = {spec.name: spec
                                   for spec in EXTRA_SPECS}


def extra_kernel(name: str) -> KernelSpec:
    """Look up an extra (non-Table-1) kernel by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown extra kernel {name!r}; available: "
                       f"{known}")


def all_extra_kernels() -> List[KernelSpec]:
    """All extra kernels, in definition order."""
    return list(EXTRA_SPECS)
