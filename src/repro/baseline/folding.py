"""Classic scalar optimizations: constant folding and canonicalization.

These are the "standard optimization techniques" the paper says RECORD
lacks (Sec. 4.3.5).  They operate on expression trees before selection:

- :func:`fold_constants` evaluates operator nodes whose children are all
  constants (exact arithmetic; a fold is skipped when the result would
  not fit the machine word, keeping the fold semantics-preserving for
  non-ring operators downstream);
- :func:`canonicalize` normalizes commutative operators (constant to the
  right), removes identities (``x+0``, ``x*1``, ``x<<0``), simplifies
  annihilators (``x*0 -> 0``), and strength-reduces multiplications by
  powers of two into shifts.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.fixedpoint import FixedPointContext
from repro.ir.ops import OpKind
from repro.ir.trees import Tree


def fold_constants(tree: Tree, fpc: FixedPointContext) -> Tree:
    """Fold constant subtrees bottom-up (exact, width-guarded)."""
    if tree.kind is not OpKind.COMPUTE:
        return tree
    children = tuple(fold_constants(child, fpc) for child in tree.children)
    if children != tree.children:
        tree = Tree(tree.kind, operator=tree.operator, children=children,
                    value=tree.value, symbol=tree.symbol, index=tree.index)
    if all(child.kind is OpKind.CONST for child in tree.children):
        try:
            value = fpc.apply(tree.operator,
                              *[child.value for child in tree.children])
        except ValueError:
            return tree
        if fpc.in_range(value):
            return Tree.const(value)
    return tree


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def canonicalize(tree: Tree) -> Tree:
    """Normalize a (possibly folded) tree; see module docstring."""
    if tree.kind is not OpKind.COMPUTE:
        return tree
    children = tuple(canonicalize(child) for child in tree.children)
    tree = Tree(tree.kind, operator=tree.operator, children=children,
                value=tree.value, symbol=tree.symbol, index=tree.index)
    op = tree.operator

    # Commutative: constant operand to the right.
    if op.commutative and len(children) == 2:
        left, right = children
        if left.kind is OpKind.CONST and right.kind is not OpKind.CONST:
            children = (right, left)
            tree = Tree(OpKind.COMPUTE, operator=op, children=children)

    left = children[0] if children else None
    right = children[1] if len(children) > 1 else None

    def left_fits_word() -> bool:
        from repro.ir.ranges import fits_word
        return fits_word(left, FixedPointContext(16))

    # Identity elimination (guarded for word-port operators: removing
    # mul/or/xor also removes the port's wrap of the operand).
    if op.identity is not None and right is not None \
            and right.kind is OpKind.CONST and right.value == op.identity:
        if op.name in FixedPointContext.WORD_OPERAND_OPS \
                and not left_fits_word():
            pass
        else:
            return left
    if op.name in ("shl", "shr") and right is not None \
            and right.kind is OpKind.CONST and right.value == 0:
        return left

    # Annihilator: x * 0 -> 0 (pure IR: no side effects to lose).
    if op.name == "mul" and right is not None \
            and right.kind is OpKind.CONST and right.value == 0:
        return Tree.const(0)

    # Strength reduction: x * 2^k -> x << k (guarded: the multiplier
    # port wraps x, a shift does not).
    if op.name == "mul" and right is not None \
            and right.kind is OpKind.CONST \
            and _is_power_of_two(right.value) and right.value > 1 \
            and left_fits_word():
        shift = right.value.bit_length() - 1
        return Tree.compute("shl", left, Tree.const(shift))

    # Double negation.
    if op.name == "neg" and left is not None \
            and left.kind is OpKind.COMPUTE \
            and left.operator.name == "neg":
        return left.children[0]

    return tree


def optimize_tree(tree: Tree, fpc: FixedPointContext) -> Tree:
    """fold + canonicalize to a fixpoint (bounded; each pass shrinks or
    leaves the tree unchanged)."""
    for _ in range(8):
        folded = canonicalize(fold_constants(tree, fpc))
        if folded == tree:
            return tree
        tree = folded
    return tree
