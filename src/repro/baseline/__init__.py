"""The conventional target-specific compiler (Table 1's comparison).

The paper's Table 1 compares RECORD against "a target-specific compiler
for the TI C25" -- a classic early-90s DSP C compiler.  This package is
our reconstruction of that technology level:

*strong* at the classic scalar repertoire -- constant folding and
propagation into expressions, operand canonicalization, strength
reduction (:mod:`repro.baseline.folding`) -- exactly the optimizations
the paper notes RECORD lacks ("it does not contain any standard
optimization technique (such as constant folding)");

*weak* at everything DSP-specific, which is what the DSPStone project
measured as a 2x-8x overhead (Sec. 3.1): the loop induction variable
lives in data memory, every array access recomputes its address through
the accumulator, values are never promoted into machine registers across
statements or iterations, parallel/fused instructions and hardware
repeat are never used, and mode changes are inserted naively.
"""

from repro.baseline.folding import canonicalize, fold_constants
from repro.baseline.compiler import BaselineCompiler, BaselineOptions

__all__ = ["BaselineCompiler", "BaselineOptions", "canonicalize",
           "fold_constants"]
