"""The conventional target-specific compiler for the TC25.

See the package docstring for the technology level being modelled.  The
characteristic code shapes (each of which the RECORD pipeline avoids,
and each of which DSPStone observed in contemporary compilers):

- the loop induction variable is an ordinary memory variable ``$iN``,
  initialized, incremented and tested through the accumulator;
- an array access ``a[c*i+d]`` recomputes its address every time:
  the index is loaded (scaled through the multiplier when ``c != 1``),
  the array base is added, the result is stored and loaded into an
  address register, and the element is copied to a scratch cell before
  the expression consumes it;
- every statement starts and ends in memory (no accumulator reuse
  across statements or loop iterations);
- mode changes are inserted naively (tracking invalidated at loops);
- hardware repeat, fused instructions and parallel moves are not used.

Being target-specific is the point: the paper's baseline is TI's own
C25 compiler, so this class refuses any target that is not TC25-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.baseline.folding import optimize_tree
from repro.codegen.addressing import AddressAssigner
from repro.codegen.asm import (
    AddrOf, AsmInstr, CodeSeq, Imm, LoopBegin, LoopEnd, Mem, Reg,
)
from repro.codegen.compiled import CompiledProgram, build_memory_map
from repro.codegen.grammar import EmitContext
from repro.codegen.modes import minimize_mode_changes
from repro.codegen.pipeline import (
    CompileError, collect_extra_scalars, finalize_loops,
)
from repro.codegen.selector import Selector
from repro.ir.dfg import ArrayIndex
from repro.ir.ops import OpKind
from repro.ir.program import Block, Loop, Program, ProgramItem
from repro.ir.trees import Tree, TreeAssignment, decompose


@dataclass(frozen=True)
class BaselineOptions:
    """Switchboard (the folding flag is the Sec. 3.1 ablation point)."""

    metric: str = "size"
    fold_constants: bool = True
    eliminate_redundant_loads: bool = True
    # TI's compiler did use the C25 combo instructions (LTA/LTS/LTP):
    peephole: bool = True


# Redundant-load elimination safety sets (see eliminate_redundant_loads).
_ACC_REDEFINERS = frozenset({
    "ZAC", "LAC", "LACS", "LACK", "LALK", "PAC", "LTP",
})
# Opcodes through which "ACC holds the exact value, memory the wrapped
# one" stays observationally equivalent: ring operations (+, -, <<, and
# the bitwise ops, whose low 16 bits depend only on the operands' low 16
# bits) and instructions that do not touch ACC.  SFR/ABS/SATL inspect
# high bits of the exact value and are NOT safe.
_ACC_SAFE_USES = frozenset({
    "ADD", "SUB", "ADDK", "SUBK", "ADLK", "SBLK", "APAC", "SPAC",
    "LTA", "LTS", "SFL", "NEG", "CMPL", "AND", "OR", "XOR", "SACL",
    "MAC", "MACD", "LT", "MPY", "MPYK", "DMOV", "MAR", "SPM",
    "LARK", "LRLK", "LAR", "SAR", "NOP",
})


def eliminate_redundant_loads(code: CodeSeq) -> CodeSeq:
    """Remove ``SACL m ; LAC m`` reloads (classic redundant-load
    elimination -- a "standard optimization technique" the paper notes
    RECORD lacks, Sec. 4.3.5).

    Subtlety: after the elimination ACC holds the *exact* 32-bit value
    while a reload would have produced the 16-bit-wrapped one.  The two
    are indistinguishable as long as every ACC use up to the next ACC
    redefinition is a ring operation (wrapping commutes with those); the
    pass scans forward and keeps the reload whenever it sees SFR / ABS /
    SATL / a control-flow boundary first.
    """
    items = list(code.items)
    result: List = []
    index = 0
    while index < len(items):
        current = items[index]
        nxt = items[index + 1] if index + 1 < len(items) else None
        if (isinstance(current, AsmInstr) and isinstance(nxt, AsmInstr)
                and current.opcode == "SACL" and nxt.opcode == "LAC"
                and current.operands == nxt.operands
                and _reload_elimination_safe(items, index + 2)):
            result.append(current)
            index += 2
            continue
        result.append(current)
        index += 1
    return CodeSeq(result)


def _reload_elimination_safe(items: List, start: int) -> bool:
    for position in range(start, len(items)):
        item = items[position]
        if not isinstance(item, AsmInstr):
            return False       # label / loop marker: control may re-enter
        if item.opcode in _ACC_REDEFINERS:
            return True
        if item.opcode not in _ACC_SAFE_USES:
            return False
    return True                # nothing consumes ACC afterwards


def _ins(opcode: str, *operands, words: int = 1, cycles: int = 1,
         modes=None, comment: str = "") -> AsmInstr:
    return AsmInstr(opcode=opcode, operands=tuple(operands), words=words,
                    cycles=cycles, modes=modes or {}, comment=comment)


class BaselineCompiler:
    """Conventional syntax-directed compiler for the TC25 family."""

    name = "baseline"

    def __init__(self, target, options: Optional[BaselineOptions] = None):
        if not hasattr(target, "STREAM_ADDRESS_REGISTERS") \
                or target.name not in ("tc25",):
            raise CompileError(
                "the baseline compiler is target-specific (TC25 only); "
                f"got {target.name!r} -- use RecordCompiler to retarget")
        self.target = target
        self.options = options or BaselineOptions()

    # ------------------------------------------------------------------

    def compile(self, program: Program) -> CompiledProgram:
        """Compile a program (artifact-cached when a cache is active).

        Same contract as :meth:`RecordCompiler.compile
        <repro.codegen.pipeline.RecordCompiler.compile>`: a
        content-addressed hit returns the stored artifact, everything
        else runs the conventional pipeline.
        """
        from repro.cache import cached_compile
        return cached_compile(self, program, self._compile_uncached)

    def _compile_uncached(self, program: Program) -> CompiledProgram:
        """Compile a program with the conventional TC25 pipeline."""
        selector = Selector(self.target.grammar(),
                            metric=self.options.metric,
                            algebraic=False,
                            fpc=self.target.fpc)
        ctx = EmitContext()
        state = _WalkState()
        self._compile_items(program.body, selector, ctx, state,
                            loop_sym=None)
        code = ctx.code
        if self.options.eliminate_redundant_loads:
            code = eliminate_redundant_loads(code)
        if self.options.peephole:
            code = self.target.peephole(code)

        extra_scalars = collect_extra_scalars(code, program)
        memory_map = build_memory_map(program.symbols, extra_scalars)
        code = AddressAssigner(self.target, memory_map,
                               code).run(code)
        code = minimize_mode_changes(code, self.target, naive=True)
        code = finalize_loops(code, self.target)

        return CompiledProgram(
            name=program.name,
            target=self.target,
            code=code,
            memory_map=memory_map,
            symbols=dict(program.symbols),
            pmem_tables=[],
            compiler=self.name,
            stats={"selection": selector.stats, "words": code.words()},
        )

    # ------------------------------------------------------------------

    def _compile_items(self, items: List[ProgramItem], selector: Selector,
                       ctx: EmitContext, state: "_WalkState",
                       loop_sym: Optional[str]) -> None:
        for item in items:
            if isinstance(item, Block):
                assignments = decompose(
                    item.dfg, temp_counter_start=state.temp_counter,
                    fpc=self.target.fpc)
                state.temp_counter += sum(
                    1 for a in assignments if a.is_temp)
                for assignment in assignments:
                    self._compile_assignment(assignment, selector, ctx,
                                             loop_sym)
            elif isinstance(item, Loop):
                loop_id = state.loop_counter
                state.loop_counter += 1
                induction = f"$i{loop_id}"
                selector.select_assignment(
                    TreeAssignment(induction, None, Tree.const(0)), ctx)
                ctx.code.append(LoopBegin(count=item.count,
                                          loop_id=loop_id))
                self._compile_items(item.body, selector, ctx, state,
                                    loop_sym=induction)
                selector.select_assignment(
                    TreeAssignment(induction, None,
                                   Tree.compute("add",
                                                Tree.ref(induction),
                                                Tree.const(1))), ctx)
                ctx.code.append(LoopEnd(loop_id=loop_id))
            else:
                raise CompileError(f"unexpected program item {item!r}")

    def _compile_assignment(self, assignment: TreeAssignment,
                            selector: Selector, ctx: EmitContext,
                            loop_sym: Optional[str]) -> None:
        tree = assignment.tree
        if self.options.fold_constants:
            tree = optimize_tree(tree, self.target.fpc)
        tree = self._lower_induction_reads(tree, ctx, loop_sym)
        dest_index = assignment.index
        if dest_index is not None and dest_index.coeff != 0:
            # Indexed store: value to a scratch cell, then explicit
            # address computation and an indirect store.
            value_cell = ctx.scratch()
            selector.select_assignment(
                TreeAssignment(value_cell.symbol, None, tree), ctx)
            self._emit_indexed_address(ctx, loop_sym, assignment.symbol,
                                       dest_index)
            ctx.emit(_ins("LAC", value_cell))
            ctx.emit(_ins("SACL", _indirect(assignment.symbol,
                                            dest_index)))
            return
        selector.select_assignment(
            TreeAssignment(assignment.symbol, dest_index, tree), ctx)

    # -- explicit array addressing ------------------------------------------

    def _lower_induction_reads(self, tree: Tree, ctx: EmitContext,
                               loop_sym: Optional[str]) -> Tree:
        """Replace every induction-indexed read with a scratch scalar
        filled by an explicit address-computation sequence."""
        loads: Dict[Tuple[str, int, int], str] = {}

        def walk(node: Tree) -> Tree:
            if node.kind is OpKind.REF and node.index is not None \
                    and node.index.coeff != 0:
                key = (node.symbol, node.index.coeff, node.index.offset)
                if key not in loads:
                    cell = ctx.scratch()
                    self._emit_indexed_address(ctx, loop_sym, node.symbol,
                                               node.index)
                    ctx.emit(_ins("LAC", _indirect(node.symbol,
                                                   node.index)))
                    ctx.emit(_ins("SACL", cell))
                    loads[key] = cell.symbol
                return Tree.ref(loads[key])
            if not node.children:
                return node
            children = tuple(walk(child) for child in node.children)
            if children == node.children:
                return node
            return Tree(node.kind, operator=node.operator,
                        children=children, value=node.value,
                        symbol=node.symbol, index=node.index)

        return walk(tree)

    def _emit_indexed_address(self, ctx: EmitContext,
                              loop_sym: Optional[str], symbol: str,
                              index: ArrayIndex) -> None:
        """ACC := &symbol[coeff*i + offset]; AR0 := ACC (via memory)."""
        if loop_sym is None:
            raise CompileError(
                f"induction access to {symbol!r} outside any loop")
        if index.coeff == 1:
            ctx.emit(_ins("LAC", Mem(loop_sym)))
        else:
            ctx.emit(_ins("LT", Mem(loop_sym)))
            ctx.emit(_ins("MPYK", Imm(index.coeff)))
            ctx.emit(_ins("PAC", modes={"pm": 0}))
        ctx.emit(_ins("ADLK", AddrOf(symbol, index.offset),
                      words=2, cycles=2))
        address_cell = ctx.scratch()
        ctx.emit(_ins("SACL", address_cell))
        ctx.emit(_ins("LAR", Reg("AR0"), address_cell))


def _indirect(symbol: str, index: ArrayIndex) -> Mem:
    return Mem(symbol=symbol, index=index, mode="indirect", areg="AR0",
               post_modify=0)


@dataclass
class _WalkState:
    temp_counter: int = 0
    loop_counter: int = 0
