"""Diagnostics for the MiniDFL frontend.

All frontend errors carry a source position so that users get
``file:line:column``-style messages instead of stack traces -- one of the
dependability requirements (Sec. 3.2, req. 3) that pushed embedded
developers toward high-level languages in the first place.
"""

from __future__ import annotations


class DflError(Exception):
    """Base class for all MiniDFL frontend diagnostics."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")


class DflSyntaxError(DflError):
    """Lexical or grammatical error in the source text."""


class DflSemanticError(DflError):
    """Well-formed syntax with inconsistent meaning (undeclared symbol,
    bad array bound, loop variable misuse, ...)."""
