"""Recursive-descent parser for MiniDFL.

Grammar (EBNF)::

    program   = "program" IDENT ";" { decl } "begin" { stmt } "end" "." ;
    decl      = role item { "," item } ";"
              | "const" IDENT "=" expr { "," IDENT "=" expr } ";" ;
    role      = "input" | "output" | "var" ;
    item      = IDENT [ "[" expr "]" ] ;
    stmt      = assign | for ;
    assign    = IDENT [ "[" expr "]" ] ":=" expr ";" ;
    for       = "for" IDENT "in" expr ".." expr "do" { stmt } "end" ";" ;
    expr      = or ;  (precedence: | < ^ < & < shifts < +- < * < unary)
    primary   = NUMBER | IDENT [ "[" expr "]" | "@" NUMBER ]
              | "(" expr ")" | ("sat"|"abs") "(" expr ")"
              | ("min"|"max") "(" expr "," expr ")" ;
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dfl.ast_nodes import (
    Assign, Binary, Decl, Delay, Expr, For, Index, Num, Position,
    ProgramAst, Unary, Var,
)
from repro.dfl.errors import DflSyntaxError
from repro.dfl.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._position += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        token = self._current
        wanted = text if text is not None else kind
        found = token.text or token.kind
        raise DflSyntaxError(f"expected {wanted!r}, found {found!r}",
                             token.line, token.column)

    def _pos(self) -> Position:
        return Position(self._current.line, self._current.column)

    # -- grammar --------------------------------------------------------

    def parse_program(self) -> ProgramAst:
        pos = self._pos()
        self._expect("keyword", "program")
        name = self._expect("ident").text
        self._expect("op", ";")
        decls: List[Decl] = []
        while self._current.kind == "keyword" and \
                self._current.text in ("input", "output", "var", "const"):
            decls.extend(self._parse_decl())
        self._expect("keyword", "begin")
        body = self._parse_statements(terminators=("end",))
        self._expect("keyword", "end")
        self._expect("op", ".")
        self._expect("eof")
        return ProgramAst(name=name, decls=tuple(decls), body=tuple(body),
                          pos=pos)

    def _parse_decl(self) -> List[Decl]:
        role_token = self._advance()
        role = role_token.text
        decls: List[Decl] = []
        while True:
            pos = self._pos()
            name = self._expect("ident").text
            if role == "const":
                self._expect("op", "=")
                value = self._parse_expression()
                decls.append(Decl(role, name, value_expr=value, pos=pos))
            else:
                size: Optional[Expr] = None
                if self._accept("op", "["):
                    size = self._parse_expression()
                    self._expect("op", "]")
                decls.append(Decl(role, name, size_expr=size, pos=pos))
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        return decls

    def _parse_statements(self, terminators: Tuple[str, ...]) -> List[object]:
        statements: List[object] = []
        while not (self._current.kind == "keyword"
                   and self._current.text in terminators):
            if self._current.kind == "eof":
                token = self._current
                raise DflSyntaxError("unexpected end of input inside body",
                                     token.line, token.column)
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self) -> object:
        if self._check("keyword", "for"):
            return self._parse_for()
        return self._parse_assign()

    def _parse_for(self) -> For:
        pos = self._pos()
        self._expect("keyword", "for")
        var = self._expect("ident").text
        self._expect("keyword", "in")
        low = self._parse_expression()
        self._expect("op", "..")
        high = self._parse_expression()
        self._expect("keyword", "do")
        body = self._parse_statements(terminators=("end",))
        self._expect("keyword", "end")
        self._expect("op", ";")
        return For(var=var, low=low, high=high, body=tuple(body), pos=pos)

    def _parse_assign(self) -> Assign:
        pos = self._pos()
        target = self._expect("ident").text
        index: Optional[Expr] = None
        if self._accept("op", "["):
            index = self._parse_expression()
            self._expect("op", "]")
        self._expect("op", ":=")
        expr = self._parse_expression()
        self._expect("op", ";")
        return Assign(target=target, index=index, expr=expr, pos=pos)

    # -- expressions (precedence climbing) -------------------------------

    def _parse_expression(self) -> Expr:
        return self._parse_binary_level(0)

    _LEVELS = [("|",), ("^",), ("&",), ("<<", ">>"), ("+", "-"), ("*",)]

    def _parse_binary_level(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self._parse_unary()
        operators = self._LEVELS[level]
        left = self._parse_binary_level(level + 1)
        while self._current.kind == "op" and self._current.text in operators:
            pos = self._pos()
            operator = self._advance().text
            right = self._parse_binary_level(level + 1)
            left = Binary(op=operator, left=left, right=right, pos=pos)
        return left

    def _parse_unary(self) -> Expr:
        pos = self._pos()
        if self._accept("op", "-"):
            return Unary(op="-", operand=self._parse_unary(), pos=pos)
        if self._accept("op", "~"):
            return Unary(op="~", operand=self._parse_unary(), pos=pos)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        pos = self._pos()
        token = self._current
        if token.kind == "number":
            self._advance()
            return Num(value=int(token.text, 0), pos=pos)
        if token.kind == "keyword" and token.text in ("sat", "abs"):
            self._advance()
            self._expect("op", "(")
            operand = self._parse_expression()
            self._expect("op", ")")
            return Unary(op=token.text, operand=operand, pos=pos)
        if token.kind == "keyword" and token.text in ("min", "max"):
            self._advance()
            self._expect("op", "(")
            left = self._parse_expression()
            self._expect("op", ",")
            right = self._parse_expression()
            self._expect("op", ")")
            return Binary(op=token.text, left=left, right=right, pos=pos)
        if token.kind == "ident":
            self._advance()
            if self._accept("op", "["):
                index = self._parse_expression()
                self._expect("op", "]")
                return Index(name=token.text, index=index, pos=pos)
            if self._accept("op", "@"):
                depth_token = self._expect("number")
                return Delay(name=token.text,
                             depth=int(depth_token.text, 0), pos=pos)
            return Var(name=token.text, pos=pos)
        if self._accept("op", "("):
            inner = self._parse_expression()
            self._expect("op", ")")
            return inner
        raise DflSyntaxError(
            f"expected expression, found {token.text or token.kind!r}",
            token.line, token.column)


def parse(source: str) -> ProgramAst:
    """Parse MiniDFL source text into an AST."""
    return _Parser(tokenize(source)).parse_program()
