"""Tokenizer for MiniDFL.

Hand-written single-pass scanner.  Comments are Pascal-style ``{ ... }``
(DFL inherited a Pascal-ish surface syntax) and may span lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.dfl.errors import DflSyntaxError

KEYWORDS = frozenset({
    "program", "const", "input", "output", "var", "begin", "end",
    "for", "in", "do", "sat", "abs", "min", "max", "not",
})

# Multi-character operators first so maximal munch works.
OPERATORS = [
    ":=", "..", "<<", ">>",
    "+", "-", "*", "&", "|", "^", "~", "(", ")", "[", "]",
    ";", ",", ":", "@", "=", ".",
]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str      # "ident", "number", "keyword", "op", "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Scan MiniDFL source text into a token list ending with ``eof``."""
    tokens: List[Token] = []
    line, column = 1, 1
    position = 0
    length = len(source)

    def error(message: str) -> DflSyntaxError:
        return DflSyntaxError(message, line, column)

    while position < length:
        char = source[position]
        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue
        if char == "{":
            start_line, start_column = line, column
            position += 1
            column += 1
            while position < length and source[position] != "}":
                if source[position] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                position += 1
            if position >= length:
                raise DflSyntaxError("unterminated comment",
                                     start_line, start_column)
            position += 1
            column += 1
            continue
        if char.isdigit():
            start = position
            start_column = column
            while position < length and (source[position].isdigit()
                                         or source[position] in "xXabcdefABCDEF"):
                position += 1
                column += 1
            text = source[start:position]
            try:
                int(text, 0)
            except ValueError:
                raise DflSyntaxError(f"bad number literal {text!r}",
                                     line, start_column)
            tokens.append(Token("number", text, line, start_column))
            continue
        if char.isalpha() or char == "_":
            start = position
            start_column = column
            while position < length and (source[position].isalnum()
                                         or source[position] == "_"):
                position += 1
                column += 1
            text = source[start:position]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_column))
            continue
        for operator in OPERATORS:
            if source.startswith(operator, position):
                tokens.append(Token("op", operator, line, column))
                position += len(operator)
                column += len(operator)
                break
        else:
            raise error(f"unexpected character {char!r}")
    tokens.append(Token("eof", "", line, column))
    return tokens
