"""Lowering: checked MiniDFL AST -> :class:`repro.ir.Program`.

Responsibilities:

- translate expressions into interned DFG nodes (constants folded for
  declared ``const`` symbols);
- build maximal straight-line blocks with *store-to-load forwarding* so
  that the data-flow semantics of a block coincide with the sequential
  semantics of the source (a read of a scalar written earlier in the same
  block uses the defining node, not memory);
- split blocks when array aliasing cannot be decided statically;
- normalize loop ranges to ``0 .. count-1`` and rewrite affine indexes
  accordingly;
- materialize DFL delay lines: ``x@k`` reads the compiler-maintained
  state array ``.h.x`` and a shift block appended at the end of the
  program implements the once-per-tick delay-line update (on the TC25
  back end this becomes the classic ``DMOV`` idiom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dfl.ast_nodes import (
    Assign, Binary, Delay, Expr, For, Index, Num, ProgramAst, Unary, Var,
)
from repro.dfl.errors import DflSemanticError
from repro.dfl.parser import parse
from repro.dfl.semantics import AnalyzedProgram, analyze
from repro.ir.dfg import ArrayIndex, DataFlowGraph
from repro.ir.program import Block, Loop, Program, ProgramItem, Symbol

# Name of the compiler-maintained delay line for signal ``x``; the dot
# prefix cannot collide with user identifiers.
def history_array(name: str) -> str:
    """Name of the compiler-maintained delay line for signal ``name``."""
    return f".h.{name}"


_BINARY_OPS = {
    "+": "add", "-": "sub", "*": "mul", "<<": "shl", ">>": "shr",
    "&": "and", "|": "or", "^": "xor", "min": "min", "max": "max",
}

_UNARY_OPS = {"-": "neg", "~": "not", "abs": "abs", "sat": "sat"}


@dataclass(frozen=True)
class _LoopContext:
    var: str
    low: int


def _may_alias(a: Optional[ArrayIndex], b: Optional[ArrayIndex]) -> bool:
    """Conservative alias test for two indexes of the *same* array."""
    if a is None or b is None:
        return True
    if a.coeff == b.coeff:
        return a.offset == b.offset
    return True


class _BlockBuilder:
    """Accumulates one DFG with store-to-load forwarding."""

    def __init__(self) -> None:
        self.dfg = DataFlowGraph()
        # (symbol, index or None) -> defining node for forwarding
        self._defs: Dict[Tuple[str, Optional[ArrayIndex]], int] = {}
        # symbol -> list of indexes written (for alias checks)
        self._written: Dict[str, List[Optional[ArrayIndex]]] = {}

    @property
    def empty(self) -> bool:
        return not self.dfg.outputs and len(self.dfg) == 0

    def read(self, symbol: str,
             index: Optional[ArrayIndex]) -> Tuple[bool, Optional[int]]:
        """Attempt a read.  Returns (ok, node).

        ``ok`` is False when the read may alias an earlier write in this
        block without matching it exactly -- the caller must flush the
        block and retry in a fresh one.
        """
        forwarded = self._defs.get((symbol, index))
        if forwarded is not None:
            # Reading back an assigned variable observes the *stored*
            # (word-wrapped) value, not the exact expression value --
            # compiled code rereads memory, so must the semantics.
            return True, self.dfg.compute("wrap", forwarded)
        for written_index in self._written.get(symbol, []):
            if _may_alias(written_index, index):
                return False, None
        return True, self.dfg.ref(symbol, index)

    def write(self, symbol: str, index: Optional[ArrayIndex],
              node: int) -> None:
        self.dfg.write(symbol, node, index)
        self._defs[(symbol, index)] = node
        self._written.setdefault(symbol, []).append(index)


class _Lowerer:
    def __init__(self, analyzed: AnalyzedProgram):
        self._analyzed = analyzed
        self._program = Program(name=analyzed.ast.name)
        self._items: List[List[ProgramItem]] = [[]]   # stack of bodies
        self._builder = _BlockBuilder()
        self._loop: Optional[_LoopContext] = None

    # ------------------------------------------------------------------

    def run(self) -> Program:
        self._declare_symbols()
        for statement in self._analyzed.ast.body:
            self._lower_statement(statement)
        self._flush()
        self._append_delay_shifts()
        self._flush()
        self._program.body = self._items[0]
        return self._program

    def _declare_symbols(self) -> None:
        analyzed = self._analyzed
        for name, role in analyzed.roles.items():
            if role == "const":
                continue
            size = analyzed.array_sizes.get(name)
            program_role = "local" if role == "var" else role
            self._program.declare(Symbol(name=name, size=size,
                                         role=program_role))
        for name, depth in analyzed.delay_depths.items():
            self._program.declare(Symbol(name=history_array(name),
                                         size=depth, role="state"))

    # -- block / item management ----------------------------------------

    def _flush(self) -> None:
        if not self._builder.empty:
            self._items[-1].append(Block(dfg=self._builder.dfg))
        self._builder = _BlockBuilder()

    # -- statements -------------------------------------------------------

    def _lower_statement(self, statement: object) -> None:
        if isinstance(statement, Assign):
            self._lower_assign(statement)
        elif isinstance(statement, For):
            self._lower_for(statement)
        else:
            raise TypeError(f"unexpected statement {statement!r}")

    def _lower_assign(self, stmt: Assign) -> None:
        index = None
        if stmt.index is not None:
            index = self._array_index(stmt.index, stmt.target)
        node = self._lower_expression(stmt.expr)
        self._builder.write(stmt.target, index, node)

    def _lower_for(self, stmt: For) -> None:
        if self._loop is not None:
            # Nested loops: lower the inner loop into the enclosing body.
            # The innermost-variable-only indexing rule was already
            # enforced by semantic analysis.
            pass
        analyzer_consts = self._analyzed
        low = _fold_const(stmt.low, analyzer_consts)
        high = _fold_const(stmt.high, analyzer_consts)
        count = high - low + 1
        self._flush()
        outer_loop = self._loop
        self._loop = _LoopContext(var=stmt.var, low=low)
        self._items.append([])
        for inner in stmt.body:
            self._lower_statement(inner)
        self._flush()
        body = self._items.pop()
        self._loop = outer_loop
        self._items[-1].append(Loop(var=stmt.var, count=count, body=body))

    # -- expressions ------------------------------------------------------

    def _lower_expression(self, expr: Expr) -> int:
        builder = self._builder
        if isinstance(expr, Num):
            return builder.dfg.const(expr.value)
        if isinstance(expr, Var):
            if expr.name in self._analyzed.consts:
                return builder.dfg.const(self._analyzed.consts[expr.name])
            return self._read(expr.name, None, expr)
        if isinstance(expr, Index):
            index = self._array_index(expr.index, expr.name)
            return self._read(expr.name, index, expr)
        if isinstance(expr, Delay):
            index = ArrayIndex(0, expr.depth - 1)
            return self._read(history_array(expr.name), index, expr)
        if isinstance(expr, Unary):
            operand = self._lower_expression(expr.operand)
            return builder.dfg.compute(_UNARY_OPS[expr.op], operand)
        if isinstance(expr, Binary):
            left = self._lower_expression(expr.left)
            right = self._lower_expression(expr.right)
            return builder.dfg.compute(_BINARY_OPS[expr.op], left, right)
        raise TypeError(f"unexpected expression {expr!r}")

    def _read(self, symbol: str, index: Optional[ArrayIndex],
              expr: Expr) -> int:
        ok, node = self._builder.read(symbol, index)
        if not ok:
            # Ambiguous aliasing with an earlier write: memory order must
            # be respected, so the current block ends here.  NOTE: this is
            # only legal when no value computed so far is pending -- the
            # lowering of one assignment never spans a flush because reads
            # happen before the write is recorded, and forwarding keeps
            # every already-lowered node inside the flushed block.
            raise DflSemanticError(
                f"cannot statically disambiguate access to {symbol!r}; "
                "split the statement or use distinct arrays",
                getattr(expr, "pos").line, getattr(expr, "pos").column)
        return node

    def _array_index(self, expr: Expr, array: str) -> ArrayIndex:
        # Re-run the (cheap) affine analysis; semantics already validated.
        from repro.dfl.semantics import _Analyzer
        analyzer = _Analyzer(self._analyzed.ast)
        analyzer._result = self._analyzed
        if self._loop is not None:
            analyzer._loop_stack = [self._loop.var]
        affine = analyzer.affine_index(expr, array)
        if affine.var is None:
            return ArrayIndex(0, affine.offset)
        low = self._loop.low if self._loop else 0
        return ArrayIndex(affine.coeff, affine.offset + affine.coeff * low)

    # -- delay lines ------------------------------------------------------

    def _append_delay_shifts(self) -> None:
        """One shift block per tick: hist[k] := hist[k-1], hist[0] := x.

        A single DFG block gives the required semantics for free: all
        reads observe the pre-tick values.
        """
        depths = self._analyzed.delay_depths
        if not depths:
            return
        self._flush()
        builder = self._builder
        for name in sorted(depths):
            depth = depths[name]
            hist = history_array(name)
            for k in range(depth - 1, 0, -1):
                source = builder.dfg.ref(hist, ArrayIndex(0, k - 1))
                builder.write(hist, ArrayIndex(0, k), source)
            current = builder.dfg.ref(name)
            builder.write(hist, ArrayIndex(0, 0), current)


def _fold_const(expr: Expr, analyzed: AnalyzedProgram) -> int:
    from repro.dfl.semantics import _Analyzer
    analyzer = _Analyzer(analyzed.ast)
    analyzer._result = analyzed
    return analyzer._fold(expr)


def lower(analyzed: AnalyzedProgram) -> Program:
    """Lower a checked AST to the structured program IR."""
    return _Lowerer(analyzed).run()


def compile_dfl(source: str) -> Program:
    """Convenience: parse, analyze and lower MiniDFL source text."""
    return lower(analyze(parse(source)))
