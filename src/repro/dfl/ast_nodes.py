"""Abstract syntax tree for MiniDFL.

The AST stays close to the source; all resolution (constant folding of
declared consts, affine index analysis, delay-line materialization)
happens in :mod:`repro.dfl.semantics` and :mod:`repro.dfl.lowering`.
Every node carries its source position for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Position:
    line: int = 0
    column: int = 0


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    pos: Position = field(default_factory=Position, compare=False)


@dataclass(frozen=True)
class Num(Expr):
    value: int = 0


@dataclass(frozen=True)
class Var(Expr):
    """A scalar read, a const reference, or a loop-variable occurrence."""
    name: str = ""


@dataclass(frozen=True)
class Index(Expr):
    """Array element read ``name[expr]``."""
    name: str = ""
    index: Optional[Expr] = None


@dataclass(frozen=True)
class Delay(Expr):
    """DFL delay ``name@k``: value of the scalar signal k ticks ago."""
    name: str = ""
    depth: int = 1


@dataclass(frozen=True)
class Unary(Expr):
    op: str = ""            # "-", "~", "abs", "sat"
    operand: Optional[Expr] = None


@dataclass(frozen=True)
class Binary(Expr):
    op: str = ""            # "+", "-", "*", "<<", ">>", "&", "|", "^",
    left: Optional[Expr] = None          # "min", "max"
    right: Optional[Expr] = None


# ----------------------------------------------------------------------
# Declarations and statements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Decl:
    """``role name`` / ``role name[size]`` / ``const name = value``.

    ``size_expr`` is resolved to an int by semantic analysis (it may
    mention previously declared consts).
    """
    role: str                      # "input", "output", "var", "const"
    name: str
    size_expr: Optional[Expr] = None
    value_expr: Optional[Expr] = None    # const declarations only
    pos: Position = field(default_factory=Position, compare=False)


@dataclass(frozen=True)
class Assign:
    """``target := expr`` or ``target[index] := expr``."""
    target: str
    index: Optional[Expr]
    expr: Expr
    pos: Position = field(default_factory=Position, compare=False)


@dataclass(frozen=True)
class For:
    """``for var in lo .. hi do body end``; bounds are const expressions."""
    var: str
    low: Expr
    high: Expr
    body: Tuple["Stmt", ...]
    pos: Position = field(default_factory=Position, compare=False)


Stmt = object  # Union[Assign, For]; kept loose for isinstance dispatch


@dataclass(frozen=True)
class ProgramAst:
    name: str
    decls: Tuple[Decl, ...]
    body: Tuple[Stmt, ...]
    pos: Position = field(default_factory=Position, compare=False)
