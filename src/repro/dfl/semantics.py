"""Semantic analysis for MiniDFL.

Checks performed here (all reported as :class:`DflSemanticError` with a
source position):

- every referenced symbol is declared; no symbol is declared twice;
- ``const`` expressions and array sizes fold to compile-time integers;
- arrays are always indexed, scalars never are;
- constant array indexes are within bounds;
- loop bounds are compile-time constants with ``low <= high``;
- the loop induction variable is only used inside array index
  expressions (it has no runtime storage -- address generation units
  materialize it), and only the *innermost* loop variable may appear in
  an index;
- only ``const`` symbols and outputs/vars may be written / not written
  respectively (writing a ``const`` is an error, writing an ``input`` is
  allowed -- DSP kernels update their delay lines in place);
- ``@`` delays apply only to scalar signals and have depth >= 1.

The result records everything lowering needs: folded constants, array
sizes, symbol roles and the maximum delay depth per signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dfl.ast_nodes import (
    Assign, Binary, Decl, Delay, Expr, For, Index, Num, ProgramAst,
    Unary, Var,
)
from repro.dfl.errors import DflSemanticError


@dataclass
class AnalyzedProgram:
    """AST plus resolved compile-time facts."""

    ast: ProgramAst
    consts: Dict[str, int] = field(default_factory=dict)
    roles: Dict[str, str] = field(default_factory=dict)     # name -> role
    array_sizes: Dict[str, int] = field(default_factory=dict)
    delay_depths: Dict[str, int] = field(default_factory=dict)

    def is_array(self, name: str) -> bool:
        """Whether ``name`` was declared with an array size."""
        return name in self.array_sizes

    def is_scalar_signal(self, name: str) -> bool:
        """Whether ``name`` is a scalar signal (delays apply to these)."""
        return name in self.roles and name not in self.array_sizes \
            and self.roles[name] != "const"


@dataclass(frozen=True)
class AffineIndex:
    """Index expression resolved to ``coeff * loop_var + offset``."""

    coeff: int
    offset: int
    var: Optional[str] = None     # which loop variable; None if constant


class _Analyzer:
    def __init__(self, ast: ProgramAst):
        self._ast = ast
        self._result = AnalyzedProgram(ast=ast)
        self._loop_stack: List[str] = []

    # ------------------------------------------------------------------

    def run(self) -> AnalyzedProgram:
        for decl in self._ast.decls:
            self._declare(decl)
        for statement in self._ast.body:
            self._check_statement(statement)
        return self._result

    # -- declarations ---------------------------------------------------

    def _declare(self, decl: Decl) -> None:
        result = self._result
        if decl.name in result.roles or decl.name in result.consts:
            raise DflSemanticError(f"symbol {decl.name!r} declared twice",
                                   decl.pos.line, decl.pos.column)
        if decl.role == "const":
            result.consts[decl.name] = self._fold(decl.value_expr)
            result.roles[decl.name] = "const"
            return
        result.roles[decl.name] = decl.role
        if decl.size_expr is not None:
            size = self._fold(decl.size_expr)
            if size < 1:
                raise DflSemanticError(
                    f"array {decl.name!r} must have positive size, "
                    f"got {size}", decl.pos.line, decl.pos.column)
            result.array_sizes[decl.name] = size

    def _fold(self, expr: Expr) -> int:
        """Fold a compile-time constant expression, or fail."""
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Var):
            if expr.name in self._result.consts:
                return self._result.consts[expr.name]
            raise DflSemanticError(
                f"{expr.name!r} is not a compile-time constant",
                expr.pos.line, expr.pos.column)
        if isinstance(expr, Unary):
            value = self._fold(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            if expr.op == "abs":
                return abs(value)
            raise DflSemanticError(
                f"operator {expr.op!r} not allowed in constant expression",
                expr.pos.line, expr.pos.column)
        if isinstance(expr, Binary):
            left = self._fold(expr.left)
            right = self._fold(expr.right)
            table = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "min": lambda: min(left, right),
                "max": lambda: max(left, right),
            }
            return table[expr.op]()
        raise DflSemanticError(
            "expression is not a compile-time constant",
            expr.pos.line, expr.pos.column)

    # -- statements -----------------------------------------------------

    def _check_statement(self, statement: object) -> None:
        if isinstance(statement, Assign):
            self._check_assign(statement)
        elif isinstance(statement, For):
            self._check_for(statement)
        else:
            raise TypeError(f"unexpected statement {statement!r}")

    def _check_assign(self, stmt: Assign) -> None:
        result = self._result
        if stmt.target in self._loop_stack:
            raise DflSemanticError(
                f"cannot assign to loop variable {stmt.target!r}",
                stmt.pos.line, stmt.pos.column)
        role = result.roles.get(stmt.target)
        if role is None:
            raise DflSemanticError(f"undeclared symbol {stmt.target!r}",
                                   stmt.pos.line, stmt.pos.column)
        if role == "const":
            raise DflSemanticError(f"cannot assign to const {stmt.target!r}",
                                   stmt.pos.line, stmt.pos.column)
        if result.is_array(stmt.target):
            if stmt.index is None:
                raise DflSemanticError(
                    f"array {stmt.target!r} requires an index",
                    stmt.pos.line, stmt.pos.column)
            self.affine_index(stmt.index, array=stmt.target)
        elif stmt.index is not None:
            raise DflSemanticError(
                f"scalar {stmt.target!r} cannot be indexed",
                stmt.pos.line, stmt.pos.column)
        self._check_expression(stmt.expr)

    def _check_for(self, stmt: For) -> None:
        low = self._fold(stmt.low)
        high = self._fold(stmt.high)
        if low > high:
            raise DflSemanticError(
                f"loop range {low}..{high} is empty",
                stmt.pos.line, stmt.pos.column)
        if stmt.var in self._result.roles or stmt.var in self._loop_stack:
            raise DflSemanticError(
                f"loop variable {stmt.var!r} shadows another symbol",
                stmt.pos.line, stmt.pos.column)
        self._loop_stack.append(stmt.var)
        try:
            for inner in stmt.body:
                self._check_statement(inner)
        finally:
            self._loop_stack.pop()

    # -- expressions ----------------------------------------------------

    def _check_expression(self, expr: Expr) -> None:
        result = self._result
        if isinstance(expr, Num):
            return
        if isinstance(expr, Var):
            if expr.name in self._loop_stack:
                raise DflSemanticError(
                    f"loop variable {expr.name!r} may only be used in "
                    "array indexes", expr.pos.line, expr.pos.column)
            if expr.name not in result.roles:
                raise DflSemanticError(f"undeclared symbol {expr.name!r}",
                                       expr.pos.line, expr.pos.column)
            if result.is_array(expr.name):
                raise DflSemanticError(
                    f"array {expr.name!r} requires an index",
                    expr.pos.line, expr.pos.column)
            return
        if isinstance(expr, Index):
            if expr.name not in result.roles:
                raise DflSemanticError(f"undeclared symbol {expr.name!r}",
                                       expr.pos.line, expr.pos.column)
            if not result.is_array(expr.name):
                raise DflSemanticError(
                    f"scalar {expr.name!r} cannot be indexed",
                    expr.pos.line, expr.pos.column)
            self.affine_index(expr.index, array=expr.name)
            return
        if isinstance(expr, Delay):
            if expr.depth < 1:
                raise DflSemanticError(
                    f"delay depth must be >= 1, got {expr.depth}",
                    expr.pos.line, expr.pos.column)
            if not result.is_scalar_signal(expr.name):
                raise DflSemanticError(
                    f"delay {expr.name}@{expr.depth} requires a scalar "
                    "signal", expr.pos.line, expr.pos.column)
            depth = self._result.delay_depths.get(expr.name, 0)
            self._result.delay_depths[expr.name] = max(depth, expr.depth)
            return
        if isinstance(expr, Unary):
            self._check_expression(expr.operand)
            return
        if isinstance(expr, Binary):
            self._check_expression(expr.left)
            self._check_expression(expr.right)
            return
        raise TypeError(f"unexpected expression {expr!r}")

    # -- affine index analysis -------------------------------------------

    def affine_index(self, expr: Expr, array: str) -> AffineIndex:
        """Resolve an index expression to ``coeff * loop_var + offset``.

        Only the innermost loop variable may appear.  Pure constants get
        ``coeff == 0`` and a bounds check against the array size.
        """
        coeff, offset, var = self._affine(expr)
        if var is not None and self._loop_stack and \
                var != self._loop_stack[-1]:
            raise DflSemanticError(
                f"only the innermost loop variable "
                f"({self._loop_stack[-1]!r}) may index arrays; "
                f"found {var!r}", expr.pos.line, expr.pos.column)
        size = self._result.array_sizes[array]
        if var is None and not 0 <= offset < size:
            raise DflSemanticError(
                f"index {offset} out of bounds for {array}[{size}]",
                expr.pos.line, expr.pos.column)
        return AffineIndex(coeff=coeff, offset=offset, var=var)

    def _affine(self, expr: Expr) -> Tuple[int, int, Optional[str]]:
        """Return (coeff, offset, loop_var or None) for an index expr."""

        def combine(op: str, a, b, pos):
            coeff_a, offset_a, var_a = a
            coeff_b, offset_b, var_b = b
            var = var_a or var_b
            if var_a and var_b and var_a != var_b:
                raise DflSemanticError(
                    "index mixes two loop variables", pos.line, pos.column)
            if op == "+":
                return coeff_a + coeff_b, offset_a + offset_b, var
            if op == "-":
                return coeff_a - coeff_b, offset_a - offset_b, var
            if op == "*":
                if coeff_a and coeff_b:
                    raise DflSemanticError(
                        "index is not affine in the loop variable",
                        pos.line, pos.column)
                if coeff_a:
                    return coeff_a * offset_b, offset_a * offset_b, var
                return coeff_b * offset_a, offset_a * offset_b, var
            raise DflSemanticError(
                f"operator {op!r} not allowed in array index",
                pos.line, pos.column)

        if isinstance(expr, Num):
            return 0, expr.value, None
        if isinstance(expr, Var):
            if expr.name in self._loop_stack:
                return 1, 0, expr.name
            if expr.name in self._result.consts:
                return 0, self._result.consts[expr.name], None
            raise DflSemanticError(
                f"{expr.name!r} is neither a constant nor a loop variable",
                expr.pos.line, expr.pos.column)
        if isinstance(expr, Unary) and expr.op == "-":
            coeff, offset, var = self._affine(expr.operand)
            return -coeff, -offset, var
        if isinstance(expr, Binary):
            return combine(expr.op, self._affine(expr.left),
                           self._affine(expr.right), expr.pos)
        raise DflSemanticError("array index must be affine in the loop "
                               "variable",
                               expr.pos.line, expr.pos.column)


def analyze(ast: ProgramAst) -> AnalyzedProgram:
    """Run semantic analysis, returning resolved compile-time facts."""
    return _Analyzer(ast).run()
