"""MiniDFL -- the DSP source language of this reproduction.

The original RECORD compiler consumed Mentor Graphics' proprietary DFL
("Data Flow Language") [30].  MiniDFL is our open substitution: a small
declarative DSP language with

- scalar and array signals with ``input`` / ``output`` / ``const`` roles,
- fixed-point-friendly integer arithmetic with an explicit ``sat()``
  saturation operator,
- counted ``for`` loops over compile-time bounds,
- affine array indexing in the loop induction variable, and
- the classic DFL *delay* operator ``x@k`` (the value of ``x`` from ``k``
  invocations ago), lowered onto compiler-maintained delay lines.

A MiniDFL program describes the work of one sample tick; running the
program repeatedly processes a stream, with delay lines shifted once per
tick -- exactly the signal-flow semantics DFL had.

Pipeline:  source text --lexer--> tokens --parser--> AST
           --semantics--> checked AST --lowering--> repro.ir.Program
"""

from repro.dfl.errors import DflError, DflSyntaxError, DflSemanticError
from repro.dfl.lexer import Token, tokenize
from repro.dfl.parser import parse
from repro.dfl.semantics import analyze
from repro.dfl.lowering import lower, compile_dfl

__all__ = [
    "DflError",
    "DflSyntaxError",
    "DflSemanticError",
    "Token",
    "tokenize",
    "parse",
    "analyze",
    "lower",
    "compile_dfl",
]
