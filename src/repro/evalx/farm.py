"""A job farm: many compile or conformance-check jobs, one call.

Every evaluation harness in this repository compiles the same closed
set of DSPStone kernels against the same closed set of targets --
Table 1, the timing bench, the retargeting matrix, the full report --
and the conformance fuzzer runs generated programs through the same
compiler x target x simulator matrix.  This module gives them one
shared engine:

- a :class:`CompileJob` names its work by *registry key* (kernel name,
  compiler name, target name) plus a frozen options dataclass, so a job
  pickles in a few bytes and the worker rebuilds everything from the
  registries;
- a :class:`VerifyJob` does the same for a full ``check_program``
  conformance cell-matrix: the program ships as its corpus spec form
  (plain dicts), everything else by registry name, and the worker
  rebuilds the program and fans it over the matrix;
- :func:`compile_many` / :func:`verify_many` run a job list either
  serially or on a ``concurrent.futures`` process pool.  Results come
  back in job order in both modes (``Executor.map`` preserves
  ordering), so callers are oblivious to how the work was scheduled;
- a worker process keeps compilers (and, for verify jobs, the whole
  :class:`~repro.verify.diff.VerifySession` of targets, compilers and
  oracles) alive between jobs, so BURS label caches, memoized target
  grammars and decode caches pay off across jobs exactly as they do in
  a long-lived serial session -- and the persistent artifact cache
  (:mod:`repro.cache`), when configured, is shared by every worker;
- failures never kill the farm: a worker catches ``CompileError`` (and
  anything else the pipeline or the harness raises) and returns it
  *as a string* inside the result, keyed to its job, in order -- an
  unpicklable exception object therefore never crosses the process
  boundary.

Parallelism degrades gracefully: on a single-core container, when the
pool cannot start or dies mid-run, or for a singleton job list, the
farm simply runs serially in-process -- same results, same order.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.codegen.compiled import CompiledProgram

if TYPE_CHECKING:   # pragma: no cover
    from repro.verify.diff import ProgramVerdict

#: Compiler registry: name -> (factory, options default). Extended here
#: rather than imported lazily so job validation can happen up front.
COMPILER_NAMES = ("record", "baseline", "hand")


@dataclass(frozen=True)
class CompileJob:
    """One unit of farm work, picklable by construction.

    ``kernel``, ``compiler`` and ``target`` are registry names (see
    :func:`repro.api.available_kernels` / ``available_targets``);
    ``options`` is the compiler's frozen options dataclass or ``None``
    for defaults.  ``fresh`` bypasses the worker's compiler pool -- the
    job then compiles with a cold compiler instance (used as the
    uncached baseline by ``benchmarks/bench_compile_speed.py``).
    """

    kernel: str
    compiler: str = "record"
    target: str = "tc25"
    options: object = None
    fresh: bool = False


@dataclass
class FarmResult:
    """Outcome of one job: a compiled program or a captured error."""

    job: CompileJob
    compiled: Optional[CompiledProgram] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

# One compiler instance per (compiler, target, options) per process:
# RecordCompiler's matcher pool and the target's grammar cache then
# persist across every job this worker handles.
_POOL: Dict[Tuple[str, str, str], object] = {}


def _build_compiler(job: CompileJob):
    from repro.api import _resolve_target
    target = _resolve_target(job.target)
    if job.compiler == "record":
        from repro.codegen.pipeline import RecordCompiler
        return RecordCompiler(target, job.options)
    if job.compiler == "baseline":
        from repro.baseline.compiler import BaselineCompiler
        return BaselineCompiler(target, job.options)
    raise ValueError(f"unknown compiler {job.compiler!r}; "
                     f"expected one of {COMPILER_NAMES}")


def _compiler_for(job: CompileJob):
    if job.fresh:
        return _build_compiler(job)
    key = (job.compiler, job.target, repr(job.options))
    compiler = _POOL.get(key)
    if compiler is None:
        compiler = _build_compiler(job)
        _POOL[key] = compiler
    return compiler


def run_job(job: CompileJob) -> FarmResult:
    """Execute one job; never raises -- errors travel in the result."""
    started = perf_counter()
    try:
        if job.compiler == "hand":
            from repro.api import _resolve_target
            from repro.dspstone import hand_reference
            compiled = hand_reference(job.kernel,
                                      _resolve_target(job.target))
        else:
            from repro.dspstone import kernel
            program = kernel(job.kernel).program
            compiled = _compiler_for(job).compile(program)
    except Exception as exc:                      # noqa: BLE001
        return FarmResult(job=job, error=str(exc),
                          error_type=type(exc).__name__,
                          seconds=perf_counter() - started)
    return FarmResult(job=job, compiled=compiled,
                      seconds=perf_counter() - started)


def clear_worker_pool() -> None:
    """Drop this process's pooled compilers (cold-start measurements)."""
    _POOL.clear()


# ----------------------------------------------------------------------
# Conformance-check jobs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class VerifyJob:
    """One full conformance matrix check, picklable by construction.

    ``program_spec`` is the corpus serialization of the lowered program
    (:func:`repro.verify.corpus.program_to_spec` -- plain dicts);
    ``input_sets`` the input environments to replay; ``targets`` the
    registry names of the matrix columns; ``fault`` an optional
    ``(original, replacement)`` decoder-fault pair; ``seed`` the
    derived fuzzer seed recorded in the verdict.
    """

    program_spec: dict
    input_sets: Tuple[dict, ...]
    targets: Tuple[str, ...] = ("tc25", "m56", "risc16", "asip")
    fault: Optional[Tuple[str, str]] = None
    seed: int = 0


@dataclass
class VerifyResult:
    """Outcome of one verify job: a verdict or a captured error."""

    job: VerifyJob
    verdict: Optional["ProgramVerdict"] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


# One VerifySession per worker process: targets, compilers (with their
# label caches) and oracles persist across every verify job the worker
# handles, mirroring what _POOL does for compile jobs.
_VERIFY_SESSION: List[object] = []


def _verify_session():
    if not _VERIFY_SESSION:
        from repro.verify.diff import VerifySession
        _VERIFY_SESSION.append(VerifySession())
    return _VERIFY_SESSION[0]


def clear_verify_session() -> None:
    """Drop this process's pooled verify session (cold-start runs)."""
    _VERIFY_SESSION.clear()


def run_verify_job(job: VerifyJob) -> VerifyResult:
    """Execute one job; never raises -- errors travel in the result.

    Errors are stringified before they travel, so an exception type
    that cannot pickle (or whose constructor a round-trip would choke
    on) still reports cleanly from a worker process.
    """
    started = perf_counter()
    try:
        from repro.verify.corpus import program_from_spec
        from repro.verify.diff import check_program
        program = program_from_spec(job.program_spec)
        fault = None
        if job.fault is not None:
            from repro.selftest.generator import Fault
            fault = Fault(job.fault[0], job.fault[1])
        verdict = check_program(program, list(job.input_sets),
                                targets=job.targets, fault=fault,
                                seed=job.seed,
                                session=_verify_session())
    except Exception as exc:                          # noqa: BLE001
        return VerifyResult(job=job, error=str(exc),
                            error_type=type(exc).__name__,
                            seconds=perf_counter() - started)
    return VerifyResult(job=job, verdict=verdict,
                        seconds=perf_counter() - started)


def _verify_worker_init(cache_dir: Optional[str],
                        cache_max_bytes: Optional[int]) -> None:
    """Pool initializer: point the worker at the shared artifact cache.

    Explicit (rather than relying on fork inheriting the parent's
    configured cache) so spawn-based start methods behave identically,
    and so each worker gets its own stats counters.
    """
    if cache_dir:
        import repro.cache
        repro.cache.configure(
            cache_dir,
            max_bytes=cache_max_bytes or repro.cache.DEFAULT_MAX_BYTES)


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

def default_workers() -> int:
    """Worker count the farm would use: one per core, at most 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def compile_many(jobs: Sequence[CompileJob],
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None) -> List[FarmResult]:
    """Run all jobs; results are returned in job order.

    ``parallel=None`` auto-detects: a process pool when the machine has
    more than one core and there is more than one job, serial
    otherwise.  ``parallel=True`` requests a pool but still falls back
    to serial execution when the pool cannot be started (restricted
    environments, missing fork support) -- the results are identical
    either way, only the wall clock differs.
    """
    jobs = list(jobs)
    workers = max_workers if max_workers is not None else default_workers()
    if parallel is None:
        parallel = workers > 1 and len(jobs) > 1
    if parallel and len(jobs) > 1 and workers > 1:
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(workers, len(jobs))) as pool:
                return list(pool.map(run_job, jobs))
        except Exception:                          # noqa: BLE001
            pass          # pool refused to start or died: run serially
    return [run_job(job) for job in jobs]


def verify_many(jobs: Sequence[VerifyJob],
                parallel: Optional[bool] = None,
                max_workers: Optional[int] = None,
                cache_dir: Optional[object] = None,
                cache_max_bytes: Optional[int] = None
                ) -> List[VerifyResult]:
    """Run conformance jobs; results are returned in job order.

    Scheduling rules match :func:`compile_many` -- auto-detected
    parallelism, serial fallback whenever the pool cannot start (or
    dies mid-run: the whole list is then recomputed serially, which is
    safe because jobs are pure functions of their specs).

    Workers are pointed at ``cache_dir`` (default: the driver's active
    :mod:`repro.cache` directory, if any), so all processes share one
    persistent artifact store.
    """
    jobs = list(jobs)
    workers = max_workers if max_workers is not None else default_workers()
    if parallel is None:
        parallel = workers > 1 and len(jobs) > 1
    if cache_dir is None:
        from repro.cache import active_cache
        active = active_cache()
        if active is not None:
            cache_dir = active.root
            if cache_max_bytes is None:
                cache_max_bytes = active.max_bytes
    if parallel and len(jobs) > 1 and workers > 1:
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(workers, len(jobs)),
                    initializer=_verify_worker_init,
                    initargs=(str(cache_dir) if cache_dir else None,
                              cache_max_bytes)) as pool:
                return list(pool.map(run_verify_job, jobs))
        except Exception:                          # noqa: BLE001
            pass          # pool refused to start or died: run serially
    return [run_verify_job(job) for job in jobs]
