"""A compile farm: many (kernel, compiler, target) jobs, one call.

Every evaluation harness in this repository compiles the same closed
set of DSPStone kernels against the same closed set of targets --
Table 1, the timing bench, the retargeting matrix, the full report.
This module gives them one shared engine:

- a :class:`CompileJob` names its work by *registry key* (kernel name,
  compiler name, target name) plus a frozen options dataclass, so a job
  pickles in a few bytes and the worker rebuilds everything from the
  registries;
- :func:`compile_many` runs a job list either serially or on a
  ``concurrent.futures`` process pool.  Results come back in job order
  in both modes (``Executor.map`` preserves ordering), so callers are
  oblivious to how the work was scheduled;
- a worker process keeps one compiler instance per (compiler, target,
  options) triple alive between jobs, so the BURS label cache and the
  memoized target grammar pay off across kernels exactly as they do in
  a long-lived serial session;
- failures never kill the farm: a worker catches ``CompileError`` (and
  anything else the pipeline raises) and returns it inside the
  :class:`FarmResult`, keyed to its job, in order.

Parallelism degrades gracefully: on a single-core container, when the
pool cannot start, or for a singleton job list, the farm simply runs
serially in-process -- same results, same order.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.compiled import CompiledProgram

#: Compiler registry: name -> (factory, options default). Extended here
#: rather than imported lazily so job validation can happen up front.
COMPILER_NAMES = ("record", "baseline", "hand")


@dataclass(frozen=True)
class CompileJob:
    """One unit of farm work, picklable by construction.

    ``kernel``, ``compiler`` and ``target`` are registry names (see
    :func:`repro.api.available_kernels` / ``available_targets``);
    ``options`` is the compiler's frozen options dataclass or ``None``
    for defaults.  ``fresh`` bypasses the worker's compiler pool -- the
    job then compiles with a cold compiler instance (used as the
    uncached baseline by ``benchmarks/bench_compile_speed.py``).
    """

    kernel: str
    compiler: str = "record"
    target: str = "tc25"
    options: object = None
    fresh: bool = False


@dataclass
class FarmResult:
    """Outcome of one job: a compiled program or a captured error."""

    job: CompileJob
    compiled: Optional[CompiledProgram] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

# One compiler instance per (compiler, target, options) per process:
# RecordCompiler's matcher pool and the target's grammar cache then
# persist across every job this worker handles.
_POOL: Dict[Tuple[str, str, str], object] = {}


def _build_compiler(job: CompileJob):
    from repro.api import _resolve_target
    target = _resolve_target(job.target)
    if job.compiler == "record":
        from repro.codegen.pipeline import RecordCompiler
        return RecordCompiler(target, job.options)
    if job.compiler == "baseline":
        from repro.baseline.compiler import BaselineCompiler
        return BaselineCompiler(target, job.options)
    raise ValueError(f"unknown compiler {job.compiler!r}; "
                     f"expected one of {COMPILER_NAMES}")


def _compiler_for(job: CompileJob):
    if job.fresh:
        return _build_compiler(job)
    key = (job.compiler, job.target, repr(job.options))
    compiler = _POOL.get(key)
    if compiler is None:
        compiler = _build_compiler(job)
        _POOL[key] = compiler
    return compiler


def run_job(job: CompileJob) -> FarmResult:
    """Execute one job; never raises -- errors travel in the result."""
    started = perf_counter()
    try:
        if job.compiler == "hand":
            from repro.api import _resolve_target
            from repro.dspstone import hand_reference
            compiled = hand_reference(job.kernel,
                                      _resolve_target(job.target))
        else:
            from repro.dspstone import kernel
            program = kernel(job.kernel).program
            compiled = _compiler_for(job).compile(program)
    except Exception as exc:                      # noqa: BLE001
        return FarmResult(job=job, error=str(exc),
                          error_type=type(exc).__name__,
                          seconds=perf_counter() - started)
    return FarmResult(job=job, compiled=compiled,
                      seconds=perf_counter() - started)


def clear_worker_pool() -> None:
    """Drop this process's pooled compilers (cold-start measurements)."""
    _POOL.clear()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

def default_workers() -> int:
    """Worker count the farm would use: one per core, at most 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def compile_many(jobs: Sequence[CompileJob],
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None) -> List[FarmResult]:
    """Run all jobs; results are returned in job order.

    ``parallel=None`` auto-detects: a process pool when the machine has
    more than one core and there is more than one job, serial
    otherwise.  ``parallel=True`` requests a pool but still falls back
    to serial execution when the pool cannot be started (restricted
    environments, missing fork support) -- the results are identical
    either way, only the wall clock differs.
    """
    jobs = list(jobs)
    workers = max_workers if max_workers is not None else default_workers()
    if parallel is None:
        parallel = workers > 1 and len(jobs) > 1
    if parallel and len(jobs) > 1 and workers > 1:
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(workers, len(jobs))) as pool:
                return list(pool.map(run_job, jobs))
        except Exception:                          # noqa: BLE001
            pass          # pool refused to start or died: run serially
    return [run_job(job) for job in jobs]
