"""A job farm: many compile or conformance-check jobs, one call.

Every evaluation harness in this repository compiles the same closed
set of DSPStone kernels against the same closed set of targets --
Table 1, the timing bench, the retargeting matrix, the full report --
and the conformance fuzzer runs generated programs through the same
compiler x target x simulator matrix.  This module gives them one
shared engine:

- a :class:`CompileJob` names its work by *registry key* (kernel name,
  compiler name, target name) plus a frozen options dataclass, so a job
  pickles in a few bytes and the worker rebuilds everything from the
  registries;
- a :class:`VerifyJob` does the same for a full ``check_program``
  conformance cell-matrix: the program ships as its corpus spec form
  (plain dicts), everything else by registry name, and the worker
  rebuilds the program and fans it over the matrix;
- :func:`compile_many` / :func:`verify_many` run a job list either
  serially, on a per-call ``concurrent.futures`` process pool, or on a
  caller-owned persistent executor (:func:`make_farm_executor`).
  Results come back in job order in all modes (``Executor.map``
  preserves ordering), so callers are oblivious to how the work was
  scheduled.  Identical jobs within one submission are keyed by
  content hash and dispatched once, the shared result fanned back out
  to every duplicate -- a batch of N equal kernels compiles once even
  when the artifact cache is cold;
- a worker process keeps compilers (and, for verify jobs, the whole
  :class:`~repro.verify.diff.VerifySession` of targets, compilers and
  oracles) alive between jobs, so BURS label caches, memoized target
  grammars and decode caches pay off across jobs exactly as they do in
  a long-lived serial session -- and the persistent artifact cache
  (:mod:`repro.cache`), when configured, is shared by every worker;
- failures never kill the farm: a worker catches ``CompileError`` (and
  anything else the pipeline or the harness raises) and returns it
  *as a string* inside the result, keyed to its job, in order -- an
  unpicklable exception object therefore never crosses the process
  boundary.

Parallelism degrades gracefully: on a single-core container, when the
pool cannot start or dies mid-run, or for a singleton job list, the
farm simply runs serially in-process -- same results, same order.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, \
    TYPE_CHECKING

from repro.codegen.compiled import CompiledProgram

if TYPE_CHECKING:   # pragma: no cover
    from repro.verify.diff import ProgramVerdict

#: Compiler registry: name -> (factory, options default). Extended here
#: rather than imported lazily so job validation can happen up front.
COMPILER_NAMES = ("record", "baseline", "hand")


@dataclass(frozen=True)
class CompileJob:
    """One unit of farm work, picklable by construction.

    ``kernel``, ``compiler`` and ``target`` are registry names (see
    :func:`repro.api.available_kernels` / ``available_targets``);
    ``options`` is the compiler's frozen options dataclass or ``None``
    for defaults.  ``fresh`` bypasses the worker's compiler pool -- the
    job then compiles with a cold compiler instance (used as the
    uncached baseline by ``benchmarks/bench_compile_speed.py``).
    """

    kernel: str
    compiler: str = "record"
    target: str = "tc25"
    options: object = None
    fresh: bool = False
    #: Canonical serialized program (``json.dumps(program_to_spec(p),
    #: sort_keys=True)``).  When set, the worker compiles *this*
    #: program instead of looking ``kernel`` up in the DSPStone
    #: registry -- the compile service farms arbitrary client programs
    #: this way.  A string (not a dict) so the job stays hashable and
    #: two jobs carrying the same program compare equal.
    program_spec: Optional[str] = None


@dataclass
class FarmResult:
    """Outcome of one job: a compiled program or a captured error."""

    job: CompileJob
    compiled: Optional[CompiledProgram] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

# One compiler instance per (compiler, target, options) per process:
# RecordCompiler's matcher pool and the target's grammar cache then
# persist across every job this worker handles.
_POOL: Dict[Tuple[str, str, str], object] = {}


def _build_compiler(job: CompileJob):
    from repro.api import _resolve_target
    target = _resolve_target(job.target)
    if job.compiler == "record":
        from repro.codegen.pipeline import RecordCompiler
        return RecordCompiler(target, job.options)
    if job.compiler == "baseline":
        from repro.baseline.compiler import BaselineCompiler
        return BaselineCompiler(target, job.options)
    raise ValueError(f"unknown compiler {job.compiler!r}; "
                     f"expected one of {COMPILER_NAMES}")


def _compiler_for(job: CompileJob):
    if job.fresh:
        return _build_compiler(job)
    key = (job.compiler, job.target, repr(job.options))
    compiler = _POOL.get(key)
    if compiler is None:
        compiler = _build_compiler(job)
        _POOL[key] = compiler
    return compiler


def run_job(job: CompileJob) -> FarmResult:
    """Execute one job; never raises -- errors travel in the result."""
    started = perf_counter()
    try:
        if job.compiler == "hand":
            from repro.api import _resolve_target
            from repro.dspstone import hand_reference
            compiled = hand_reference(job.kernel,
                                      _resolve_target(job.target))
        elif job.program_spec is not None:
            from repro.verify.corpus import program_from_spec
            program = program_from_spec(json.loads(job.program_spec))
            compiled = _compiler_for(job).compile(program)
        else:
            from repro.dspstone import kernel
            program = kernel(job.kernel).program
            compiled = _compiler_for(job).compile(program)
    except Exception as exc:                      # noqa: BLE001
        return FarmResult(job=job, error=str(exc),
                          error_type=type(exc).__name__,
                          seconds=perf_counter() - started)
    return FarmResult(job=job, compiled=compiled,
                      seconds=perf_counter() - started)


def clear_worker_pool() -> None:
    """Drop this process's pooled compilers (cold-start measurements)."""
    _POOL.clear()


# ----------------------------------------------------------------------
# Conformance-check jobs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class VerifyJob:
    """One full conformance matrix check, picklable by construction.

    ``program_spec`` is the corpus serialization of the lowered program
    (:func:`repro.verify.corpus.program_to_spec` -- plain dicts);
    ``input_sets`` the input environments to replay; ``targets`` the
    registry names of the matrix columns; ``fault`` an optional
    ``(original, replacement)`` decoder-fault pair; ``seed`` the
    derived fuzzer seed recorded in the verdict.
    """

    program_spec: dict
    input_sets: Tuple[dict, ...]
    targets: Tuple[str, ...] = ("tc25", "m56", "risc16", "asip")
    fault: Optional[Tuple[str, str]] = None
    seed: int = 0


@dataclass
class VerifyResult:
    """Outcome of one verify job: a verdict or a captured error."""

    job: VerifyJob
    verdict: Optional["ProgramVerdict"] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ShardJob:
    """One campaign shard: a contiguous run of conformance indices.

    A shard is pure work-description -- ``(seed, start, count)`` names
    the exact program subrange of the campaign's global index space
    (case ``index`` is a pure function of ``(seed, index, config)``),
    ``targets``/``inputs_per_program``/``fault`` the matrix, and
    ``config`` the :class:`~repro.verify.progen.ProgenConfig` (a frozen
    dataclass, picklable as-is; ``None`` for defaults).  Workers run
    the shard as a serial :func:`repro.verify.diff.run_conformance`
    over ``[start, start + count)`` and return a plain-dict digest, so
    the result pickles small and merges deterministically whatever
    order shards complete in.
    """

    seed: int
    start: int
    count: int
    targets: Tuple[str, ...] = ("tc25", "m56", "risc16", "asip")
    inputs_per_program: int = 2
    fault: Optional[Tuple[str, str]] = None
    config: object = None


@dataclass
class ShardResult:
    """Outcome of one shard: a triage digest or a captured error.

    ``payload`` carries the shard's deterministic triage slice (the
    ``mismatches`` list in :meth:`ConformanceReport.triage_json` shape,
    plus program/cell tallies) and its performance counters (compiles,
    artifact hits, elapsed) -- everything the campaign state file
    checkpoints per shard.
    """

    job: ShardJob
    payload: Optional[dict] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# Tuner measurement jobs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MeasureJob:
    """One autotuner measurement cell, picklable by construction.

    Every ingredient travels as a *canonical JSON string* (sorted
    keys), not a dict, so the job stays hashable and two jobs
    measuring the same cell compare equal -- which is what lets
    :func:`measure_many` dedup a batch the way :func:`compile_many`
    does.  ``program_spec`` is the corpus form of the program,
    ``options_json`` a :meth:`RecordOptions.to_dict` blob,
    ``inputs_json`` the list of input environments to accumulate
    cycles over, ``sim`` the simulator tier to measure with.
    """

    program_spec: str
    target: str = "tc25"
    options_json: str = "{}"
    inputs_json: str = "[]"
    sim: str = "jit"


@dataclass
class MeasureResult:
    """Outcome of one measurement: a record dict or a captured error."""

    job: MeasureJob
    payload: Optional[dict] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Whether the cell replayed a cached record (``cached`` never
    #: travels inside the payload -- records are canonical -- so the
    #: flag rides alongside it).
    cached: bool = False
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def run_measure_job(job: MeasureJob) -> MeasureResult:
    """Execute one measurement; never raises -- errors travel in the
    result.  (A *compile* failure of the measured configuration is not
    an error: it comes back as a record with an ``error`` field, so
    the tuner can disqualify the configuration and keep searching.)"""
    started = perf_counter()
    try:
        from repro.codegen.pipeline import RecordOptions
        from repro.tune.measure import measure_cell
        from repro.verify.corpus import program_from_spec
        program = program_from_spec(json.loads(job.program_spec))
        options = RecordOptions.from_dict(json.loads(job.options_json))
        measurement = measure_cell(program, job.target, options,
                                   json.loads(job.inputs_json),
                                   sim=job.sim)
    except Exception as exc:                          # noqa: BLE001
        return MeasureResult(job=job, error=str(exc),
                             error_type=type(exc).__name__,
                             seconds=perf_counter() - started)
    return MeasureResult(job=job, payload=measurement.to_json(),
                         cached=measurement.cached,
                         seconds=perf_counter() - started)


def measure_job_key(job: MeasureJob) -> Tuple:
    """Content key of a measurement job (every field is already
    canonical, so the job tuple itself is the key)."""
    return (job.program_spec, job.target, job.options_json,
            job.inputs_json, job.sim)


# One VerifySession per worker process: targets, compilers (with their
# label caches) and oracles persist across every verify job the worker
# handles, mirroring what _POOL does for compile jobs.
_VERIFY_SESSION: List[object] = []


def _verify_session():
    if not _VERIFY_SESSION:
        from repro.verify.diff import VerifySession
        _VERIFY_SESSION.append(VerifySession())
    return _VERIFY_SESSION[0]


def clear_verify_session() -> None:
    """Drop this process's pooled verify session (cold-start runs)."""
    _VERIFY_SESSION.clear()


def run_verify_job(job: VerifyJob) -> VerifyResult:
    """Execute one job; never raises -- errors travel in the result.

    Errors are stringified before they travel, so an exception type
    that cannot pickle (or whose constructor a round-trip would choke
    on) still reports cleanly from a worker process.
    """
    started = perf_counter()
    try:
        from repro.verify.corpus import program_from_spec
        from repro.verify.diff import check_program
        program = program_from_spec(job.program_spec)
        fault = None
        if job.fault is not None:
            from repro.selftest.generator import Fault
            fault = Fault(job.fault[0], job.fault[1])
        verdict = check_program(program, list(job.input_sets),
                                targets=job.targets, fault=fault,
                                seed=job.seed,
                                session=_verify_session())
    except Exception as exc:                          # noqa: BLE001
        return VerifyResult(job=job, error=str(exc),
                            error_type=type(exc).__name__,
                            seconds=perf_counter() - started)
    return VerifyResult(job=job, verdict=verdict,
                        seconds=perf_counter() - started)


def run_shard_job(job: ShardJob) -> ShardResult:
    """Execute one campaign shard; never raises.

    The shard runs serially inside this process (campaign parallelism
    is *across* shards), against the worker's pooled
    :class:`~repro.verify.diff.VerifySession` and whatever artifact
    cache :func:`_verify_worker_init` configured, so consecutive shards
    in one worker stay warm exactly like consecutive verify jobs do.
    """
    started = perf_counter()
    try:
        from repro.verify.diff import run_conformance
        fault = None
        if job.fault is not None:
            from repro.selftest.generator import Fault
            fault = Fault(job.fault[0], job.fault[1])
        report = run_conformance(
            count=job.count, seed=job.seed, targets=job.targets,
            inputs_per_program=job.inputs_per_program, config=job.config,
            fault=fault, start=job.start, session=_verify_session())
        counts = report.compile_counts()
        payload = {
            "start": job.start,
            "count": job.count,
            "programs": len(report.verdicts),
            "cells": report.cells_checked,
            "compiles": counts["compiles"],
            "artifact_hits": counts["artifact_hits"],
            "elapsed_seconds": round(report.elapsed_seconds, 3),
            "mismatches": report.triage_json()["mismatches"],
        }
    except Exception as exc:                          # noqa: BLE001
        return ShardResult(job=job, error=str(exc),
                           error_type=type(exc).__name__,
                           seconds=perf_counter() - started)
    return ShardResult(job=job, payload=payload,
                       seconds=perf_counter() - started)


def _verify_worker_init(cache_dir: Optional[str],
                        cache_max_bytes: Optional[int]) -> None:
    """Pool initializer: point the worker at the shared artifact cache.

    Explicit (rather than relying on fork inheriting the parent's
    configured cache) so spawn-based start methods behave identically,
    and so each worker gets its own stats counters.
    """
    if cache_dir:
        import repro.cache
        repro.cache.configure(
            cache_dir,
            max_bytes=cache_max_bytes or repro.cache.DEFAULT_MAX_BYTES)


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------

def jobs_override() -> Optional[int]:
    """The single ``REPRO_JOBS`` environment override, if set and sane.

    One variable sizes every worker pool -- the farm's
    :func:`default_workers`, the ``repro.verify`` CLI's ``--jobs``
    default and the compile service all read it through this function,
    so CI and a deployed server agree on pool width.
    """
    override = os.environ.get("REPRO_JOBS", "").strip()
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass                 # ignore garbage, fall back to defaults
    return None


def default_workers() -> int:
    """Worker count the farm would use: ``REPRO_JOBS`` when set,
    otherwise one per core, at most 8."""
    override = jobs_override()
    if override is not None:
        return override
    return max(1, min(os.cpu_count() or 1, 8))


def compile_job_key(job: CompileJob) -> Tuple:
    """Content key of a compile job: two jobs with equal keys produce
    byte-identical artifacts (registry names are stable and
    ``program_spec`` is canonical JSON), so a batch dispatches each
    key once.  ``fresh`` jobs are cold-start *measurements* -- each
    instance must really compile, so every one gets a unique key."""
    if job.fresh:
        return ("fresh", id(job))
    return (job.kernel, job.compiler, job.target, repr(job.options),
            job.program_spec)


def verify_job_key(job: VerifyJob) -> Tuple:
    """Content key of a verify job (``None`` for unserializable inputs,
    which then bypass dedup rather than risking a wrong merge)."""
    try:
        return (json.dumps(job.program_spec, sort_keys=True),
                json.dumps(list(job.input_sets), sort_keys=True),
                job.targets, job.fault, job.seed)
    except (TypeError, ValueError):
        return None


def _dedup(jobs: Sequence, key_of: Callable) -> Tuple[List, List[int]]:
    """Collapse duplicate jobs: (unique jobs, slot index per input job).

    First occurrence wins the slot; an unkeyable job (``key_of``
    returns ``None``) always gets its own slot.
    """
    unique: List = []
    slots: Dict[Tuple, int] = {}
    indices: List[int] = []
    for job in jobs:
        key = key_of(job)
        slot = slots.get(key) if key is not None else None
        if slot is None:
            slot = len(unique)
            unique.append(job)
            if key is not None:
                slots[key] = slot
        indices.append(slot)
    return unique, indices


def _fan_out(jobs: Sequence, indices: List[int], results: List) -> List:
    """Expand unique-job results back to one result per input job.

    Duplicates share the payload (compiled program / verdict) but get
    their own result object, so callers may annotate results freely.
    """
    return [replace(results[slot], job=job)
            for job, slot in zip(jobs, indices)]


def _run_pool(jobs: Sequence, worker: Callable,
              parallel: Optional[bool], workers: int,
              executor: Optional[concurrent.futures.Executor],
              pool_kwargs: dict) -> List:
    """Shared scheduling core: persistent executor > fresh pool > serial.

    Any pool failure (refusal to start, death mid-run) falls back to
    recomputing the whole list serially -- safe because jobs are pure
    functions of their specs.
    """
    if executor is not None:
        try:
            return list(executor.map(worker, jobs))
        except Exception:                          # noqa: BLE001
            pass
    if parallel is None:
        parallel = workers > 1 and len(jobs) > 1
    if parallel and len(jobs) > 1 and workers > 1:
        try:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(workers, len(jobs)),
                    **pool_kwargs) as pool:
                return list(pool.map(worker, jobs))
        except Exception:                          # noqa: BLE001
            pass          # pool refused to start or died: run serially
    return [worker(job) for job in jobs]


def compile_many(jobs: Sequence[CompileJob],
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None,
                 executor: Optional[concurrent.futures.Executor] = None
                 ) -> List[FarmResult]:
    """Run all jobs; results are returned in job order.

    Identical jobs within one submission are dispatched **once**: jobs
    are keyed by content (:func:`compile_job_key`) and the single
    result is fanned back out to every duplicate, so a batch holding
    the same kernel N times compiles it once even with a cold cache.
    ``fresh`` jobs are exempt (they exist to measure cold compiles).

    ``parallel=None`` auto-detects: a process pool when the machine has
    more than one core and there is more than one (unique) job, serial
    otherwise.  ``parallel=True`` requests a pool but still falls back
    to serial execution when the pool cannot be started (restricted
    environments, missing fork support) -- the results are identical
    either way, only the wall clock differs.  ``executor`` substitutes
    a caller-owned persistent pool (the long-running compile service
    keeps one warm across batches) for the per-call pool.
    """
    jobs = list(jobs)
    unique, indices = _dedup(jobs, compile_job_key)
    workers = max_workers if max_workers is not None else default_workers()
    results = _run_pool(unique, run_job, parallel, workers, executor, {})
    return _fan_out(jobs, indices, results)


def verify_many(jobs: Sequence[VerifyJob],
                parallel: Optional[bool] = None,
                max_workers: Optional[int] = None,
                cache_dir: Optional[object] = None,
                cache_max_bytes: Optional[int] = None,
                executor: Optional[concurrent.futures.Executor] = None
                ) -> List[VerifyResult]:
    """Run conformance jobs; results are returned in job order.

    Scheduling and batch-level dedup rules match :func:`compile_many`
    (content keys from :func:`verify_job_key`; duplicates share one
    verdict).  Workers are pointed at ``cache_dir`` (default: the
    driver's active :mod:`repro.cache` directory, if any), so all
    processes share one persistent artifact store; a caller-owned
    ``executor`` is assumed to have been initialized the same way (see
    :func:`make_farm_executor`).
    """
    jobs = list(jobs)
    unique, indices = _dedup(jobs, verify_job_key)
    workers = max_workers if max_workers is not None else default_workers()
    if cache_dir is None:
        from repro.cache import active_cache
        active = active_cache()
        if active is not None:
            cache_dir = active.root
            if cache_max_bytes is None:
                cache_max_bytes = active.max_bytes
    pool_kwargs = {
        "initializer": _verify_worker_init,
        "initargs": (str(cache_dir) if cache_dir else None,
                     cache_max_bytes),
    }
    results = _run_pool(unique, run_verify_job, parallel, workers,
                        executor, pool_kwargs)
    return _fan_out(jobs, indices, results)


def measure_many(jobs: Sequence[MeasureJob],
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None,
                 cache_dir: Optional[object] = None,
                 cache_max_bytes: Optional[int] = None,
                 executor: Optional[concurrent.futures.Executor] = None
                 ) -> List[MeasureResult]:
    """Run tuner measurement jobs; results come back in job order.

    Scheduling, batch dedup and worker cache initialization all match
    :func:`verify_many`: identical cells measure once per batch, every
    worker shares the driver's persistent artifact cache (compiles hit
    it; measurement records land in it), and any pool failure falls
    back to serial execution with identical results.
    """
    jobs = list(jobs)
    unique, indices = _dedup(jobs, measure_job_key)
    workers = max_workers if max_workers is not None else default_workers()
    if cache_dir is None:
        from repro.cache import active_cache
        active = active_cache()
        if active is not None:
            cache_dir = active.root
            if cache_max_bytes is None:
                cache_max_bytes = active.max_bytes
    pool_kwargs = {
        "initializer": _verify_worker_init,
        "initargs": (str(cache_dir) if cache_dir else None,
                     cache_max_bytes),
    }
    results = _run_pool(unique, run_measure_job, parallel, workers,
                        executor, pool_kwargs)
    return _fan_out(jobs, indices, results)


def make_farm_executor(max_workers: Optional[int] = None,
                       cache_dir: Optional[object] = None,
                       cache_max_bytes: Optional[int] = None
                       ) -> Optional[concurrent.futures.Executor]:
    """A persistent process pool suitable for ``executor=`` arguments.

    Workers are initialized against the shared artifact cache exactly
    like :func:`verify_many`'s per-call pools.  Returns ``None`` when
    process pools are unavailable (the caller then lets each
    ``compile_many`` call fall back to serial in-process execution).
    """
    workers = max_workers if max_workers is not None else default_workers()
    if cache_dir is None:
        from repro.cache import active_cache
        active = active_cache()
        if active is not None:
            cache_dir = active.root
            if cache_max_bytes is None:
                cache_max_bytes = active.max_bytes
    try:
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_verify_worker_init,
            initargs=(str(cache_dir) if cache_dir else None,
                      cache_max_bytes))
        # Force worker start-up now so failures surface here, not on
        # the first batch.
        pool.submit(os.getpid).result(timeout=60)
    except Exception:                              # noqa: BLE001
        return None
    return pool
