"""One-shot report: every experiment's current numbers as markdown.

``python -m repro report`` regenerates the measured side of
EXPERIMENTS.md from scratch -- Table 1, the DSPStone overhead band, the
optimization ablations, the retargeting matrix, the processor cube and
the self-test coverage curve -- so the documentation can never drift
from the code.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.evalx.table1 import compute_table1, format_table1


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def table1_section(parallel=None) -> str:
    """The headline Table 1 reproduction.

    The per-cell compiles run through the compile farm
    (:mod:`repro.evalx.farm`): a process pool on multi-core machines,
    serial on one core -- either way the rows are identical.
    """
    return _section("Table 1 — size relative to hand assembly",
                    format_table1(compute_table1(seeds=1,
                                                 parallel=parallel)))


def overhead_section() -> str:
    """Sec. 3.1 DSPStone overhead factors."""
    import benchmarks.bench_dspstone_overhead as bench
    return _section("Sec. 3.1 — DSPStone overhead",
                    bench.report(bench.measure()))


def ablation_section() -> str:
    """Sec. 3.3 optimization ablations."""
    import benchmarks.bench_ablation_opts as bench
    return _section("Sec. 3.3 — optimization ablations",
                    bench.report(*bench.sweep()))


def retarget_section() -> str:
    """Sec. 4.2 retargeting matrix."""
    import benchmarks.bench_retarget as bench
    return _section("Sec. 4.2 — retargeting matrix",
                    bench.report(bench.retarget_all()))


def cube_section() -> str:
    """Fig. 1 processor cube."""
    from repro.targets.asip import Asip
    from repro.targets.cube import cube_table
    from repro.targets.m56 import M56
    from repro.targets.risc import Risc16
    from repro.targets.tc25 import TC25
    return _section("Fig. 1 — processor cube",
                    cube_table([TC25(), M56(), Risc16(), Asip()]))


def selftest_section() -> str:
    """Sec. 4.5 self-test coverage."""
    import benchmarks.bench_selftest as bench
    return _section("Sec. 4.5 — self-test coverage",
                    bench.report(bench.sweep()))


def conformance_section(count: int = 20, seed: int = 0) -> str:
    """Differential conformance: generated programs x the full
    {compiler} x {target} x {simulator} matrix vs. the IR oracle."""
    from repro.verify.diff import run_conformance
    report = run_conformance(count=count, seed=seed)
    return _section("Conformance — differential matrix vs. IR oracle",
                    report.summary())


def full_report() -> str:
    """All sections concatenated (markdown)."""
    sections: List[str] = [
        "# Measured results (regenerated)\n",
        table1_section(),
        overhead_section(),
        ablation_section(),
        retarget_section(),
        cube_section(),
        selftest_section(),
        conformance_section(),
    ]
    return "\n".join(sections)
