"""Table 1: size of compiled DSPStone programs relative to assembly (%).

For every kernel the harness

1. builds the hand-written TC25 assembly reference (the 100% line),
2. compiles the kernel with the conventional target-specific compiler
   and with the RECORD pipeline,
3. *executes all three on the instruction-set simulator* and checks them
   bit-exactly against the MiniDFL reference interpreter (a row only
   counts if all three programs compute the same answer), and
4. reports size ratios next to the paper's numbers.

Absolute ratios differ from 1997 (different hand programmers, different
C compiler); the claim under reproduction is the *shape*: a retargetable
compiler competing with -- and mostly beating -- the target-specific
one, with ties on trivial kernels and at least one target-specific win
on straight-line code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baseline.compiler import BaselineCompiler
from repro.codegen.pipeline import RecordCompiler, RecordOptions
from repro.dspstone import all_kernels, hand_reference
from repro.dspstone.kernels import KernelSpec
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_many
from repro.targets.tc25 import TC25


@dataclass
class Table1Row:
    kernel: str
    hand_words: int
    baseline_words: int
    record_words: int
    baseline_cycles: int
    record_cycles: int
    hand_cycles: int
    paper_baseline_pct: int
    paper_record_pct: int
    verified: bool

    @property
    def baseline_pct(self) -> int:
        return round(100 * self.baseline_words / self.hand_words)

    @property
    def record_pct(self) -> int:
        return round(100 * self.record_words / self.hand_words)

    @property
    def winner(self) -> str:
        if self.record_words < self.baseline_words:
            return "record"
        if self.record_words > self.baseline_words:
            return "baseline"
        return "tie"


def _reference_environment(spec: KernelSpec, seed: int) -> Dict[str, object]:
    program = spec.program
    env = program.initial_environment()
    for key, value in spec.inputs(seed=seed).items():
        env[key] = list(value) if isinstance(value, list) else value
    return env


def _outputs_match(spec: KernelSpec, reference: Dict[str, object],
                   measured: Dict[str, object]) -> bool:
    for symbol in spec.program.symbols.values():
        if symbol.role == "output" \
                and measured.get(symbol.name) != reference.get(symbol.name):
            return False
    return True


def _record_options_for(spec: KernelSpec,
                        record_options: Optional[RecordOptions],
                        tuning_db) -> Optional[RecordOptions]:
    """The record-column options for one kernel row: the tuning
    database's oracle-gated best when one is stored, the caller's
    ``record_options`` otherwise."""
    if tuning_db is None:
        return record_options
    tuned = tuning_db.options_for(spec.program, "tc25")
    return tuned if tuned is not None else record_options


def _farm_builds(specs, record_options: Optional[RecordOptions],
                 parallel: Optional[bool],
                 tuning_db=None) -> Dict[str, Dict[str, object]]:
    """Compile every (kernel, compiler) cell through the compile farm."""
    from repro.evalx.farm import CompileJob, compile_many
    jobs = []
    for spec in specs:
        jobs.append(CompileJob(kernel=spec.name, compiler="baseline"))
        jobs.append(CompileJob(
            kernel=spec.name, compiler="record",
            options=_record_options_for(spec, record_options,
                                        tuning_db)))
    results = compile_many(jobs, parallel=parallel)
    built: Dict[str, Dict[str, object]] = {}
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"table 1 build failed for {result.job.kernel} "
                f"({result.job.compiler}): [{result.error_type}] "
                f"{result.error}")
        built.setdefault(result.job.kernel, {})[result.job.compiler] = \
            result.compiled
    return built


def compute_table1(target: Optional[TC25] = None, seeds: int = 3,
                   record_options: Optional[RecordOptions] = None,
                   parallel: Optional[bool] = None,
                   tuning_db=None) -> List[Table1Row]:
    """Build, verify and measure every Table 1 row.

    With the stock target (``target=None``) the per-cell compiles run
    through :mod:`repro.evalx.farm` (process pool on multi-core
    machines, serial otherwise -- results are identical).  A custom
    target instance forces the in-process path, since only registry
    names travel to farm workers.

    ``tuning_db`` (a :class:`~repro.tune.db.TuningDB` or a path to
    one) steers the record column with per-kernel autotuned options
    where the database has an entry; every cell is still verified
    against the reference interpreter, so a stale entry cannot smuggle
    a wrong answer into the table.
    """
    if tuning_db is not None and not hasattr(tuning_db, "options_for"):
        from repro.tune.db import TuningDB
        tuning_db = TuningDB.load(tuning_db)
    specs = list(all_kernels())
    built = None
    if target is None:
        target = TC25()
        built = _farm_builds(specs, record_options, parallel,
                             tuning_db=tuning_db)
    fpc = FixedPointContext(target.word_bits)
    rows: List[Table1Row] = []
    for spec in specs:
        program = spec.program
        hand = hand_reference(spec.name, target)
        if built is not None:
            baseline = built[spec.name]["baseline"]
            record = built[spec.name]["record"]
        else:
            baseline = BaselineCompiler(target).compile(program)
            record = RecordCompiler(
                target,
                _record_options_for(spec, record_options, tuning_db)
            ).compile(program)

        verified = True
        cycles = {"hand": 0, "baseline": 0, "record": 0}
        references = []
        for seed in range(seeds):
            reference = _reference_environment(spec, seed)
            program.run(reference, fpc)
            references.append(reference)
        inputs = [spec.inputs(seed=seed) for seed in range(seeds)]
        # One decoded program per compiler, run over the whole seed
        # batch (the fast simulator caches the decoded blocks).
        for label, compiled in (("hand", hand),
                                ("baseline", baseline),
                                ("record", record)):
            for reference, (measured, state) in zip(
                    references, run_many(compiled, inputs)):
                cycles[label] = state.cycles
                if not _outputs_match(spec, reference, measured):
                    verified = False
        rows.append(Table1Row(
            kernel=spec.name,
            hand_words=hand.words(),
            baseline_words=baseline.words(),
            record_words=record.words(),
            baseline_cycles=cycles["baseline"],
            record_cycles=cycles["record"],
            hand_cycles=cycles["hand"],
            paper_baseline_pct=spec.paper_baseline_pct,
            paper_record_pct=spec.paper_record_pct,
            verified=verified,
        ))
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render the table in the paper's layout, plus the paper columns."""
    header = (f"{'Program':26s} {'hand':>5s} {'TSC':>5s} {'REC':>5s} "
              f"{'TSC%':>5s} {'REC%':>5s}   {'paper':>9s}  ok")
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = f"{row.paper_baseline_pct:>4d}/{row.paper_record_pct:<4d}"
        lines.append(
            f"{row.kernel:26s} {row.hand_words:>5d} "
            f"{row.baseline_words:>5d} {row.record_words:>5d} "
            f"{row.baseline_pct:>5d} {row.record_pct:>5d}   {paper:>9s}"
            f"  {'+' if row.verified else 'FAIL'}")
    wins = sum(1 for r in rows if r.winner == "record")
    ties = sum(1 for r in rows if r.winner == "tie")
    losses = sum(1 for r in rows if r.winner == "baseline")
    lines.append("-" * len(header))
    lines.append(f"RECORD wins {wins}/10, ties {ties}, "
                 f"target-specific wins {losses} "
                 f"(paper: 6 wins, 2 ties, 2 losses)")
    return "\n".join(lines)
