"""Experiment harness: regenerates every table and figure of the paper.

One module per experiment (see DESIGN.md's experiment index); the
``benchmarks/`` directory wraps these in pytest-benchmark entry points
and EXPERIMENTS.md records the measured-vs-paper comparison.
"""

from repro.evalx.farm import (
    CompileJob, FarmResult, VerifyJob, VerifyResult, compile_many,
    verify_many,
)
from repro.evalx.table1 import Table1Row, compute_table1, format_table1

__all__ = ["CompileJob", "FarmResult", "VerifyJob", "VerifyResult",
           "compile_many", "verify_many",
           "Table1Row", "compute_table1", "format_table1"]
