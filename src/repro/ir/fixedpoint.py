"""Bit-true fixed-point arithmetic.

Requirement 5 of Sec. 3.2 of the paper: development platforms for embedded
DSP software must support "fixed point arithmetic, saturating arithmetic
operators, and a definable precision of numbers".  This module is the
single source of truth for what arithmetic *means* in this repository:

- the MiniDFL reference interpreter evaluates programs with it,
- the instruction-set simulators implement their datapaths with it,
- the test suite uses it to check that compiled code is bit-exact.

A :class:`FixedPointContext` fixes the word width and the overflow
behaviour (wrap-around vs. saturating).  Values are stored as Python ints
already reduced into the representable range; all operations return
reduced values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ir.ops import Op


class Overflow(enum.Enum):
    """Overflow handling mode.

    Real DSPs switch between these at run time (the TMS320C25's ``SOVM`` /
    ``ROVM`` instructions); minimizing such mode changes is one of the
    Sec. 3.3 optimizations (:mod:`repro.codegen.modes`).
    """

    WRAP = "wrap"
    SATURATE = "saturate"


@dataclass(frozen=True)
class FixedPointContext:
    """Two's-complement fixed-point arithmetic at a given word width.

    Attributes:
        width: word width in bits (e.g. 16 for the TC25 data word).
        overflow: wrap-around or saturating reduction of results.
    """

    width: int = 16
    overflow: Overflow = Overflow.WRAP

    def __post_init__(self) -> None:
        if self.width < 2:
            raise ValueError(f"width must be >= 2, got {self.width}")

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1))

    @property
    def max_value(self) -> int:
        return (1 << (self.width - 1)) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` by two's-complement wrap-around."""
        mask = (1 << self.width) - 1
        value &= mask
        if value > self.max_value:
            value -= 1 << self.width
        return value

    def saturate(self, value: int) -> int:
        """Clamp ``value`` into the representable range."""
        if value > self.max_value:
            return self.max_value
        if value < self.min_value:
            return self.min_value
        return value

    def reduce(self, value: int) -> int:
        """Reduce an unbounded int according to the overflow mode."""
        if self.overflow is Overflow.SATURATE:
            return self.saturate(value)
        return self.wrap(value)

    def in_range(self, value: int) -> bool:
        """Whether ``value`` is representable at this width."""
        return self.min_value <= value <= self.max_value

    def with_overflow(self, overflow: Overflow) -> "FixedPointContext":
        """Same width, different overflow mode."""
        return FixedPointContext(self.width, overflow)

    # ------------------------------------------------------------------
    # Operator application
    # ------------------------------------------------------------------

    # Operators whose *operands* pass through word-width machine ports:
    # the multiplier (16x16), the logic unit, and compare/select.  Their
    # inputs wrap to the word width; everything else (the accumulation
    # chain: add/sub/neg/abs/shifts/sat) is evaluated at extended
    # precision, exactly as a 32-bit-accumulator DSP does.
    WORD_OPERAND_OPS = frozenset({
        "mul", "and", "or", "xor", "not", "min", "max",
    })

    def apply(self, operator: Op, *operands: int) -> int:
        """Apply an IR operator with *expression semantics*.

        MiniDFL expressions are evaluated at extended precision and only
        reduced when stored to a variable -- matching accumulator DSPs,
        whose 32-bit ACC/P registers hold expression intermediates and
        wrap/saturate on the way back to 16-bit memory.  Exceptions, per
        :data:`WORD_OPERAND_OPS`: operators realized by word-width
        machine ports wrap their operands first.  ``sat`` clamps its
        (extended) operand to the word range; shift amounts are
        validated against a double-width intermediate.
        """
        if operator.py is None:
            raise ValueError(f"operator {operator.name} has no semantics")
        if operator.name == "sat":
            return self.saturate(operands[0])
        if operator.name == "wrap":
            return self.wrap(operands[0])
        if operator.name in ("shl", "shr"):
            amount = operands[1]
            if amount < 0 or amount >= 2 * self.width:
                raise ValueError(
                    f"shift amount {amount} invalid for width {self.width}")
        if operator.name in self.WORD_OPERAND_OPS:
            operands = tuple(self.wrap(value) for value in operands)
        return operator.py(*operands)

    # ------------------------------------------------------------------
    # Fractional helpers (Q-format), used by DSP kernels
    # ------------------------------------------------------------------

    def to_fixed(self, x: float, frac_bits: int) -> int:
        """Quantize a float into Q(width-1-frac_bits).frac_bits format."""
        scaled = int(round(x * (1 << frac_bits)))
        return self.saturate(scaled)

    def to_float(self, value: int, frac_bits: int) -> float:
        """Interpret a fixed-point integer as a fractional value."""
        return value / float(1 << frac_bits)

    def fractional_multiply(self, a: int, b: int, frac_bits: int) -> int:
        """Multiply two fractional values, rescaling the product.

        The double-width product is shifted right by ``frac_bits`` (the
        TC25 product-shift-mode ``PM`` register exists exactly to do this
        for free on the way out of the P register).
        """
        product = a * b
        return self.reduce(product >> frac_bits)
