"""Interval range analysis for expression values.

Answers one load-bearing question for the back end: *can this
intermediate value exceed the machine word?*  A value that can must not
travel through a 16-bit memory cell (spilling would silently wrap it),
so :func:`repro.ir.trees.decompose` refuses to share wide subexpressions
through temporaries and the selector prefers word-sized cut points.

Interval rules mirror the expression semantics of
:class:`repro.ir.fixedpoint.FixedPointContext`: memory reads and
constants are word-sized; operators realized by word-width machine
ports (mul / logic / min / max) wrap their operands first; the
accumulation chain (add/sub/neg/abs/shifts) is tracked exactly; ``sat``
and ``wrap`` re-clamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.fixedpoint import FixedPointContext
from repro.ir.ops import OpKind
from repro.ir.trees import Tree, tree_caching_enabled

# Range analysis is a pure function of (tree, word width); the rewrite
# guards of repro.ir.algebraic call it for every candidate rewrite, so
# with interned trees a per-width memo turns the repeated interval
# walks into dictionary hits.
_RANGE_CACHE: "dict" = {}


def clear_range_cache() -> None:
    """Drop the memoized intervals (used by the caching toggle)."""
    _RANGE_CACHE.clear()


@dataclass(frozen=True)
class Interval:
    """A closed integer interval [lo, hi]."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def within(self, other: "Interval") -> bool:
        """Whether this interval is contained in ``other``."""
        return other.lo <= self.lo and self.hi <= other.hi

    def clamp(self, other: "Interval") -> "Interval":
        """Intersection with ``other`` (degenerate if disjoint)."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi)) \
            if not (self.hi < other.lo or self.lo > other.hi) \
            else Interval(other.lo, other.lo)

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def word_interval(fpc: FixedPointContext) -> Interval:
    """The representable range of the machine word."""
    return Interval(fpc.min_value, fpc.max_value)


def _combine(op_name: str, a: Interval, b: Optional[Interval],
             fpc: FixedPointContext) -> Interval:
    word = word_interval(fpc)
    if op_name in FixedPointContext.WORD_OPERAND_OPS:
        a = a.clamp(word)
        if b is not None:
            b = b.clamp(word)
        if op_name == "mul":
            corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                       a.hi * b.hi]
            return Interval(min(corners), max(corners))
        if op_name in ("and", "or", "xor", "not"):
            # bitwise results of word-sized two's-complement operands
            # stay word-sized
            return word
        if op_name == "min":
            return Interval(min(a.lo, b.lo), min(a.hi, b.hi))
        if op_name == "max":
            return Interval(max(a.lo, b.lo), max(a.hi, b.hi))
    if op_name == "add":
        return Interval(a.lo + b.lo, a.hi + b.hi)
    if op_name == "sub":
        return Interval(a.lo - b.hi, a.hi - b.lo)
    if op_name == "neg":
        return Interval(-a.hi, -a.lo)
    if op_name == "abs":
        low = 0 if a.lo <= 0 <= a.hi else min(abs(a.lo), abs(a.hi))
        return Interval(low, max(abs(a.lo), abs(a.hi)))
    if op_name in ("shl", "shr"):
        # Legal shift amounts are 0 .. 2*width-1 (wider shifts raise at
        # evaluation time); clamp so symbolic amounts stay tractable.
        shift = Interval(max(0, b.lo), max(0, min(2 * fpc.width, b.hi)))
        if op_name == "shl":
            corners = [a.lo << shift.lo, a.lo << shift.hi,
                       a.hi << shift.lo, a.hi << shift.hi]
        else:
            corners = [a.lo >> shift.lo, a.lo >> shift.hi,
                       a.hi >> shift.lo, a.hi >> shift.hi]
        return Interval(min(corners), max(corners))
    if op_name in ("sat", "wrap"):
        return a.clamp(word) if op_name == "sat" else word
    if op_name == "mac":
        raise ValueError("mac does not appear in frontend trees")
    raise ValueError(f"no interval rule for operator {op_name!r}")


def tree_range(tree: Tree, fpc: FixedPointContext) -> Interval:
    """Interval of possible values of a tree (leaves are word-sized)."""
    if not tree_caching_enabled():
        return _tree_range(tree, fpc)
    key = (tree, fpc.width)
    cached = _RANGE_CACHE.get(key)
    if cached is None:
        cached = _tree_range(tree, fpc)
        _RANGE_CACHE[key] = cached
    return cached


def _tree_range(tree: Tree, fpc: FixedPointContext) -> Interval:
    if tree.kind is OpKind.CONST:
        value = fpc.reduce(tree.value)
        return Interval(value, value)
    if tree.kind is OpKind.REF:
        return word_interval(fpc)
    name = tree.operator.name
    if name == "sat":
        inner = tree_range(tree.children[0], fpc)
        return inner.clamp(word_interval(fpc))
    if name == "wrap":
        return word_interval(fpc)
    child_ranges = [tree_range(child, fpc) for child in tree.children]
    if len(child_ranges) == 1:
        return _combine(name, child_ranges[0], None, fpc)
    return _combine(name, child_ranges[0], child_ranges[1], fpc)


def fits_word(tree: Tree, fpc: FixedPointContext) -> bool:
    """True when the tree's value provably fits the machine word."""
    return tree_range(tree, fpc).within(word_interval(fpc))
