"""Algebraic variant enumeration.

RECORD's distinguishing code-selection trick (Sec. 4.3.3): "RECORD uses
algebraic rules for transforming the original data flow tree into
equivalent ones and calls the iburg-matcher with each tree.  The tree
requiring the smallest number of covering patterns is then selected."

This module supplies the rewrite rules and the bounded exploration of the
variant space.  Rules are *local* (they fire at a single node); the
enumerator applies them at every position of the tree, breadth-first,
deduplicating structurally identical results, until a variant budget is
exhausted.  Soundness of every rule is checked by property-based tests
(bit-true equivalence under the fixed-point semantics).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from repro.ir.ops import OpKind
from repro.ir.trees import Tree, tree_caching_enabled

DEFAULT_VARIANT_LIMIT = 64

# Variant enumeration is a pure function of (tree, rules, limit); with
# interned trees the key hashes in O(1), so repeated compiles of the
# same programs (benchmark rounds, report regeneration, the compile
# farm's per-process compiler pool) skip the whole rewrite search.
#
# The memo is LRU-bounded: a long fuzz run streams an unbounded number
# of distinct trees through the selector, and each entry pins up to
# ``limit`` variant trees (which in turn pin intern-table slots), so an
# unbounded dict would grow memory for the whole run.  Hits move the
# entry to the young end; inserts beyond the cap evict the oldest.
_VARIANT_CACHE: "OrderedDict" = OrderedDict()
_VARIANT_CACHE_LIMIT = 4096
_VARIANT_CACHE_EVICTIONS = 0


def clear_variant_cache() -> None:
    """Drop the memoized variant lists (used by the caching toggle)."""
    global _VARIANT_CACHE_EVICTIONS
    _VARIANT_CACHE.clear()
    _VARIANT_CACHE_EVICTIONS = 0


def set_variant_cache_limit(limit: int) -> int:
    """Set the LRU entry cap; returns the previous cap.

    Shrinking below the current population evicts (oldest first)
    immediately.
    """
    global _VARIANT_CACHE_LIMIT, _VARIANT_CACHE_EVICTIONS
    if limit < 1:
        raise ValueError("variant cache limit must be at least 1")
    previous = _VARIANT_CACHE_LIMIT
    _VARIANT_CACHE_LIMIT = limit
    while len(_VARIANT_CACHE) > limit:
        _VARIANT_CACHE.popitem(last=False)
        _VARIANT_CACHE_EVICTIONS += 1
    return previous


def variant_cache_info() -> dict:
    """Occupancy stats: ``{"size", "limit", "evictions"}``."""
    return {
        "size": len(_VARIANT_CACHE),
        "limit": _VARIANT_CACHE_LIMIT,
        "evictions": _VARIANT_CACHE_EVICTIONS,
    }


@dataclass(frozen=True)
class RewriteRule:
    """A named local rewrite.  ``apply`` returns ``None`` when it does not
    fire at the given node."""

    name: str
    apply: Callable[[Tree], Optional[Tree]]


def _commute(tree: Tree) -> Optional[Tree]:
    if (tree.kind is OpKind.COMPUTE and tree.operator.commutative
            and len(tree.children) == 2):
        left, right = tree.children
        return Tree(OpKind.COMPUTE, operator=tree.operator,
                    children=(right, left))
    return None


def _reassociate_left(tree: Tree) -> Optional[Tree]:
    """op(a, op(b, c)) -> op(op(a, b), c) for associative op."""
    if tree.kind is not OpKind.COMPUTE or not tree.operator.associative:
        return None
    if len(tree.children) != 2:
        return None
    left, right = tree.children
    if right.kind is OpKind.COMPUTE and right.operator is tree.operator:
        b, c = right.children
        inner = Tree(OpKind.COMPUTE, operator=tree.operator,
                     children=(left, b))
        return Tree(OpKind.COMPUTE, operator=tree.operator,
                    children=(inner, c))
    return None


def _reassociate_right(tree: Tree) -> Optional[Tree]:
    """op(op(a, b), c) -> op(a, op(b, c)) for associative op."""
    if tree.kind is not OpKind.COMPUTE or not tree.operator.associative:
        return None
    if len(tree.children) != 2:
        return None
    left, right = tree.children
    if left.kind is OpKind.COMPUTE and left.operator is tree.operator:
        a, b = left.children
        inner = Tree(OpKind.COMPUTE, operator=tree.operator,
                     children=(b, right))
        return Tree(OpKind.COMPUTE, operator=tree.operator,
                    children=(a, inner))
    return None


def _sub_to_add_neg(tree: Tree) -> Optional[Tree]:
    """a - b -> a + (-b).  Exposes ``add``-shaped patterns (e.g. MAC with
    a negated product becomes multiply-subtract)."""
    if tree.kind is OpKind.COMPUTE and tree.operator.name == "sub":
        a, b = tree.children
        return Tree.compute("add", a, Tree.compute("neg", b))
    return None


def _add_neg_to_sub(tree: Tree) -> Optional[Tree]:
    """a + (-b) -> a - b (and the commuted form via _commute)."""
    if tree.kind is OpKind.COMPUTE and tree.operator.name == "add":
        a, b = tree.children
        if b.kind is OpKind.COMPUTE and b.operator.name == "neg":
            return Tree.compute("sub", a, b.children[0])
    return None


def _fits_word16(tree: Tree) -> bool:
    """Range guard at the repository's uniform 16-bit word width.

    Rewrites that remove a word-width operand port (mul -> shl,
    identity elimination on mul/or/xor) are only sound when the operand
    provably fits the word; all shipped targets are 16-bit, so the
    guard is evaluated at that width.
    """
    from repro.ir.fixedpoint import FixedPointContext
    from repro.ir.ranges import fits_word
    return fits_word(tree, FixedPointContext(16))


def _mul_pow2_to_shift(tree: Tree) -> Optional[Tree]:
    """x * 2^k -> x << k (strength reduction exposed as a rewrite so the
    covering step can weigh both forms).  Guarded: the multiplier port
    wraps x, a shift does not, so x must provably fit the word."""
    if tree.kind is not OpKind.COMPUTE or tree.operator.name != "mul":
        return None
    left, right = tree.children
    if right.kind is OpKind.CONST and right.value is not None \
            and right.value > 0 and (right.value & (right.value - 1)) == 0:
        shift = right.value.bit_length() - 1
        if shift > 0 and _fits_word16(left):
            return Tree.compute("shl", left, Tree.const(shift))
    return None


def _identity_elimination(tree: Tree) -> Optional[Tree]:
    """op(x, identity) -> x.

    For operators with word-width operand ports (mul/or/xor) the
    elimination also removes the port's wrap of x, so it only fires
    when x provably fits the word.
    """
    from repro.ir.fixedpoint import FixedPointContext
    if tree.kind is not OpKind.COMPUTE or len(tree.children) != 2:
        return None
    identity = tree.operator.identity
    if identity is None:
        return None
    left, right = tree.children
    if right.kind is OpKind.CONST and right.value == identity:
        if tree.operator.name in FixedPointContext.WORD_OPERAND_OPS \
                and not _fits_word16(left):
            return None
        return left
    return None


def _neg_neg(tree: Tree) -> Optional[Tree]:
    if tree.kind is OpKind.COMPUTE and tree.operator.name == "neg":
        child = tree.children[0]
        if child.kind is OpKind.COMPUTE and child.operator.name == "neg":
            return child.children[0]
    return None


DEFAULT_RULES: List[RewriteRule] = [
    RewriteRule("commute", _commute),
    RewriteRule("reassoc-left", _reassociate_left),
    RewriteRule("reassoc-right", _reassociate_right),
    RewriteRule("sub->add-neg", _sub_to_add_neg),
    RewriteRule("add-neg->sub", _add_neg_to_sub),
    RewriteRule("mul-pow2->shl", _mul_pow2_to_shift),
    RewriteRule("identity-elim", _identity_elimination),
    RewriteRule("neg-neg", _neg_neg),
]


def _rewrites_at_every_position(tree: Tree,
                                rules: Sequence[RewriteRule]
                                ) -> Iterator[Tree]:
    """Yield every tree obtainable by one rule firing at one position."""
    for rule in rules:
        result = rule.apply(tree)
        if result is not None and result != tree:
            yield result
    for position, child in enumerate(tree.children):
        for rewritten_child in _rewrites_at_every_position(child, rules):
            children = list(tree.children)
            children[position] = rewritten_child
            yield Tree(tree.kind, operator=tree.operator,
                       children=tuple(children), value=tree.value,
                       symbol=tree.symbol, index=tree.index)


def enumerate_variants(tree: Tree,
                       rules: Sequence[RewriteRule] = None,
                       limit: int = DEFAULT_VARIANT_LIMIT) -> List[Tree]:
    """Breadth-first enumeration of algebraically equivalent trees.

    The original tree is always first.  At most ``limit`` distinct trees
    are returned; the search stops early when the rewrite closure is
    exhausted.
    """
    if rules is None:
        rules = DEFAULT_RULES
    if limit < 1:
        raise ValueError("limit must be at least 1")
    caching = tree_caching_enabled()
    if caching:
        key = (tree, tuple(rules), limit)
        cached = _VARIANT_CACHE.get(key)
        if cached is not None:
            _VARIANT_CACHE.move_to_end(key)
            return list(cached)
    variants = _enumerate_variants(tree, rules, limit)
    if caching:
        global _VARIANT_CACHE_EVICTIONS
        _VARIANT_CACHE[key] = tuple(variants)
        while len(_VARIANT_CACHE) > _VARIANT_CACHE_LIMIT:
            _VARIANT_CACHE.popitem(last=False)
            _VARIANT_CACHE_EVICTIONS += 1
    return variants


def _enumerate_variants(tree: Tree, rules: Sequence[RewriteRule],
                        limit: int) -> List[Tree]:
    seen = {tree}
    frontier = [tree]
    variants = [tree]
    while frontier and len(variants) < limit:
        next_frontier: List[Tree] = []
        for current in frontier:
            for candidate in _rewrites_at_every_position(current, rules):
                if candidate in seen:
                    continue
                seen.add(candidate)
                variants.append(candidate)
                next_frontier.append(candidate)
                if len(variants) >= limit:
                    return variants
        frontier = next_frontier
    return variants
