"""Structured programs: declarations, blocks and counted loops.

The DSPStone kernels (and embedded DSP inner loops generally) are
straight-line regions nested inside counted loops, so the program IR is
deliberately structured rather than a general CFG: a body is a sequence
of :class:`Block` (one data-flow graph each) and :class:`Loop` (constant
trip count, nested body).  Counted loops are exactly what DSP hardware
loop / repeat instructions implement, which both back ends exploit.

:meth:`Program.run` is the bit-true reference interpreter -- the ground
truth every compiled result is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, MutableMapping, Optional, Union

from repro.ir.dfg import DataFlowGraph
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.trees import TreeAssignment

# Re-export for convenience: an assignment in examples/tests is a
# TreeAssignment; blocks store whole DFGs.
Assignment = TreeAssignment


@dataclass(frozen=True)
class Symbol:
    """A declared program symbol.

    Attributes:
        name: source-level identifier.
        size: ``None`` for scalars, element count for arrays.
        role: ``"input"``, ``"output"``, ``"local"`` or ``"const"``.
        init: optional initial value(s).
    """

    name: str
    size: Optional[int] = None
    role: str = "local"
    init: Optional[object] = None

    @property
    def is_array(self) -> bool:
        return self.size is not None


@dataclass
class Block:
    """A straight-line region holding one data-flow graph."""

    dfg: DataFlowGraph
    label: str = ""


@dataclass
class Loop:
    """A counted loop: ``for var in 0 .. count-1``."""

    var: str
    count: int
    body: List["ProgramItem"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"loop count must be >= 1, got {self.count}")


ProgramItem = Union[Block, Loop]


@dataclass
class Program:
    """A complete MiniDFL program after lowering."""

    name: str
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    body: List[ProgramItem] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def declare(self, symbol: Symbol) -> Symbol:
        """Register a symbol; duplicate names are an error."""
        if symbol.name in self.symbols:
            raise ValueError(f"symbol {symbol.name!r} declared twice")
        self.symbols[symbol.name] = symbol
        return symbol

    def symbol(self, name: str) -> Symbol:
        """Look up a declared symbol by name."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undeclared symbol {name!r}")

    def inputs(self) -> List[Symbol]:
        """Symbols declared with the ``input`` role."""
        return [s for s in self.symbols.values() if s.role == "input"]

    def outputs(self) -> List[Symbol]:
        """Symbols declared with the ``output`` role."""
        return [s for s in self.symbols.values() if s.role == "output"]

    # ------------------------------------------------------------------
    # Reference interpretation
    # ------------------------------------------------------------------

    def initial_environment(self) -> Dict[str, object]:
        """Environment with declared initializers and zeroed storage."""
        env: Dict[str, object] = {}
        for symbol in self.symbols.values():
            if symbol.is_array:
                values = list(symbol.init) if symbol.init is not None \
                    else [0] * symbol.size
                if len(values) != symbol.size:
                    raise ValueError(
                        f"initializer for {symbol.name!r} has "
                        f"{len(values)} elements, declared {symbol.size}")
                env[symbol.name] = values
            else:
                env[symbol.name] = int(symbol.init) if symbol.init is not None else 0
        return env

    def run(self, env: MutableMapping[str, object],
            fpc: FixedPointContext) -> MutableMapping[str, object]:
        """Execute the program bit-true against ``env`` (mutated in place)."""
        self._run_items(self.body, env, fpc, induction_value=0)
        return env

    def _run_items(self, items: Iterable[ProgramItem],
                   env: MutableMapping[str, object],
                   fpc: FixedPointContext, induction_value: int) -> None:
        for item in items:
            if isinstance(item, Block):
                item.dfg.evaluate(env, fpc, induction_value)
            elif isinstance(item, Loop):
                for iteration in range(item.count):
                    self._run_items(item.body, env, fpc,
                                    induction_value=iteration)
            else:
                raise TypeError(f"unexpected program item {item!r}")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def dump(self) -> str:
        """Human-readable structured listing of the whole program."""
        lines = [f"program {self.name}"]
        for symbol in self.symbols.values():
            shape = f"[{symbol.size}]" if symbol.is_array else ""
            lines.append(f"  {symbol.role} {symbol.name}{shape}")
        lines.extend(self._dump_items(self.body, indent=1))
        return "\n".join(lines)

    def _dump_items(self, items: Iterable[ProgramItem],
                    indent: int) -> List[str]:
        pad = "  " * indent
        lines: List[str] = []
        for item in items:
            if isinstance(item, Block):
                lines.append(f"{pad}block {item.label}".rstrip())
                for row in item.dfg.dump().splitlines():
                    lines.append(f"{pad}  {row}")
            else:
                lines.append(f"{pad}loop {item.var} x{item.count}:")
                lines.extend(self._dump_items(item.body, indent + 1))
        return lines
