"""Expression trees and DFG-to-forest decomposition.

Tree-covering code selection (Sec. 4.3.3 of the paper) operates on trees,
not on general DAGs -- "most approaches are therefore based on heuristic
decompositions of graphs into trees".  :func:`decompose` implements that
heuristic: every compute node with more than one use is cut out of the
graph, its value is assigned to a compiler temporary, and the uses become
memory references to that temporary.

Trees are immutable and hashable; the algebraic rewriter and the BURS
matcher both rely on that.

Trees are also *hash-consed*: the constructor interns every node, so
structurally equal trees are one object, ``==`` is (almost always) an
identity check, and the structural hash is computed once per node
instead of once per dictionary operation.  The BURS label cache, the
variant deduplication of :mod:`repro.ir.algebraic` and the range memo
of :mod:`repro.ir.ranges` all key on trees and inherit the O(1)
lookups.  :func:`set_tree_caching` switches the whole layer off for
before/after benchmarking (``benchmarks/bench_compile_speed.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterator, List, Optional, Tuple

from repro.ir.dfg import ArrayIndex, DataFlowGraph, Node
from repro.ir.fixedpoint import FixedPointContext
from repro.ir.ops import Op, OpKind, op as lookup_op

TEMP_PREFIX = "$t"

_CACHING = True


def set_tree_caching(enabled: bool) -> bool:
    """Enable/disable interning and hash caching; returns the previous
    setting.  Disabling also drops the intern table (existing trees stay
    valid -- equality falls back to the structural walk)."""
    global _CACHING
    previous = _CACHING
    _CACHING = bool(enabled)
    if not _CACHING:
        clear_tree_caches()
    return previous


def tree_caching_enabled() -> bool:
    """Whether the interning/memoization layer is active (consulted by
    the variant and range caches as well)."""
    return _CACHING


def clear_tree_caches() -> None:
    """Drop the intern table and the dependent memo tables."""
    Tree._intern.clear()
    from repro.ir import algebraic, ranges
    algebraic.clear_variant_cache()
    ranges.clear_range_cache()


def intern_table_size() -> int:
    """Number of distinct trees currently interned (for diagnostics)."""
    return len(Tree._intern)


@dataclass(frozen=True, eq=False)
class Tree:
    """An immutable, interned expression tree.

    Exactly one of the payload groups is populated, according to ``kind``:
    ``CONST`` carries ``value``; ``REF`` carries ``symbol`` (and optionally
    ``index``); ``COMPUTE`` carries ``operator`` and ``children``.

    Construction is hash-consed: building a tree that already exists
    returns the existing object, so structural equality of interned
    trees is pointer equality and ``hash`` is cached per node.
    """

    kind: OpKind
    operator: Optional[Op] = None
    children: Tuple["Tree", ...] = ()
    value: Optional[int] = None
    symbol: Optional[str] = None
    index: Optional[ArrayIndex] = None

    _intern: ClassVar[Dict[tuple, "Tree"]] = {}

    def __new__(cls, kind: OpKind, operator: Optional[Op] = None,
                children: Tuple["Tree", ...] = (),
                value: Optional[int] = None,
                symbol: Optional[str] = None,
                index: Optional[ArrayIndex] = None) -> "Tree":
        if not _CACHING:
            return object.__new__(cls)
        key = (kind, operator, children, value, symbol, index)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        cls._intern[key] = self
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Tree):
            return NotImplemented
        # Interned trees that are equal are identical; this walk only
        # runs for trees built while caching was off (and for hash
        # collisions inside the intern table itself).
        return (self.kind is other.kind
                and self.operator == other.operator
                and self.value == other.value
                and self.symbol == other.symbol
                and self.index == other.index
                and self.children == other.children)

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is not None:
            return cached
        result = hash((self.kind, self.operator, self.children,
                       self.value, self.symbol, self.index))
        if _CACHING:
            object.__setattr__(self, "_hash", result)
        return result

    # Pickle support (the compile farm ships compiled results across
    # processes).  ``__getnewargs__`` routes reconstruction through
    # ``__new__`` so unpickled trees re-intern in the receiving process;
    # hashes are salted per process (string hashing), so a cached one
    # must never travel -- ``__getstate__`` strips it.
    def __getnewargs__(self) -> tuple:
        return (self.kind, self.operator, self.children, self.value,
                self.symbol, self.index)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def const(value: int) -> "Tree":
        return Tree(OpKind.CONST, value=value)

    @staticmethod
    def ref(symbol: str, index: Optional[ArrayIndex] = None) -> "Tree":
        return Tree(OpKind.REF, symbol=symbol, index=index)

    @staticmethod
    def compute(operator_name: str, *children: "Tree") -> "Tree":
        operator = lookup_op(operator_name)
        if len(children) != operator.arity:
            raise ValueError(
                f"{operator.name} expects {operator.arity} children, "
                f"got {len(children)}")
        return Tree(OpKind.COMPUTE, operator=operator,
                    children=tuple(children))

    # -- inspection -----------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return self.kind is not OpKind.COMPUTE

    def size(self) -> int:
        """Number of nodes in the tree."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Longest root-to-leaf path length (leaves have depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def postorder(self) -> Iterator["Tree"]:
        """All subtrees, children before parents."""
        for child in self.children:
            yield from child.postorder()
        yield self

    def __str__(self) -> str:
        if self.kind is OpKind.CONST:
            return f"#{self.value}"
        if self.kind is OpKind.REF:
            if self.index is None:
                return str(self.symbol)
            return f"{self.symbol}[{self.index}]"
        args = ", ".join(str(child) for child in self.children)
        return f"{self.operator.name}({args})"

    # -- evaluation -----------------------------------------------------

    def evaluate(self, env, fpc: FixedPointContext,
                 induction_value: int = 0) -> int:
        """Bit-true evaluation against an environment (see DFG.evaluate)."""
        if self.kind is OpKind.CONST:
            return fpc.reduce(self.value)
        if self.kind is OpKind.REF:
            from repro.ir.dfg import _read
            return _read(env, self.symbol, self.index, induction_value)
        operands = [child.evaluate(env, fpc, induction_value)
                    for child in self.children]
        return fpc.apply(self.operator, *operands)


@dataclass(frozen=True)
class TreeAssignment:
    """``dest := tree`` produced by decomposition.

    ``is_temp`` marks writes to compiler-generated temporaries (cut points
    of the DAG-to-tree decomposition) as opposed to program variables.
    """

    symbol: str
    index: Optional[ArrayIndex]
    tree: Tree
    is_temp: bool = False

    def describe(self) -> str:
        """Human-readable ``dest := tree`` text."""
        target = self.symbol if self.index is None else \
            f"{self.symbol}[{self.index}]"
        return f"{target} := {self.tree}"


def tree_of_node(dfg: DataFlowGraph, ident: int) -> Tree:
    """Expand the full (unshared) expression tree rooted at a DFG node."""
    node = dfg.node(ident)
    if node.kind is OpKind.CONST:
        return Tree.const(node.value)
    if node.kind is OpKind.REF:
        return Tree.ref(node.symbol, node.index)
    children = tuple(tree_of_node(dfg, oid) for oid in node.operands)
    return Tree(OpKind.COMPUTE, operator=node.operator, children=children)


def decompose(dfg: DataFlowGraph,
              temp_counter_start: int = 0,
              fpc: Optional[FixedPointContext] = None
              ) -> List[TreeAssignment]:
    """Split a DFG into a forest of expression trees.

    Compute nodes used more than once become compiler temporaries (cut
    points); leaves are always duplicated since re-reading a constant or a
    memory cell is exactly what the generated code would do anyway.

    Width safety: a temporary lives in a machine word, so sharing a
    subexpression whose value may exceed the word would silently wrap
    it.  Such *wide* nodes are only cut when every consumer observes the
    wrapped value anyway (``wrap`` markers from store-to-load
    forwarding, or operand ports that wrap by the expression semantics);
    otherwise the subexpression is duplicated into each use, which is
    always semantics-preserving.

    Returns the assignments in a valid execution order: all temporaries
    are defined before use, and program outputs appear in their original
    order after the temporaries they depend on.
    """
    if fpc is None:
        fpc = FixedPointContext(16)
    uses = dfg.use_counts()
    order = dfg.reachable_from_outputs()

    def safe_to_cut(ident: int) -> bool:
        from repro.ir.ranges import fits_word
        if fits_word(tree_of_node(dfg, ident), fpc):
            return True
        wrapping_consumers = FixedPointContext.WORD_OPERAND_OPS | {"wrap"}
        for node in dfg.nodes:
            if node.kind is OpKind.COMPUTE and ident in node.operands \
                    and node.operator.name not in wrapping_consumers:
                return False
        return True      # outputs wrap on store; remaining uses wrap too

    # ``wrap`` markers are free against memory (a stored value is
    # already wrapped), so they are never worth a temporary themselves.
    shared = [
        ident for ident in order
        if dfg.node(ident).kind is OpKind.COMPUTE and uses[ident] > 1
        and dfg.node(ident).operator.name != "wrap"
        and safe_to_cut(ident)
    ]
    temp_names: Dict[int, str] = {}
    counter = temp_counter_start
    for ident in shared:
        temp_names[ident] = f"{TEMP_PREFIX}{counter}"
        counter += 1

    def build(ident: int, *, as_root: bool) -> Tree:
        node = dfg.node(ident)
        if node.kind is OpKind.CONST:
            return Tree.const(node.value)
        if node.kind is OpKind.REF:
            return Tree.ref(node.symbol, node.index)
        if not as_root and ident in temp_names:
            return Tree.ref(temp_names[ident])
        children = tuple(build(oid, as_root=False)
                         for oid in node.operands)
        return Tree(OpKind.COMPUTE, operator=node.operator,
                    children=children)

    assignments: List[TreeAssignment] = []
    for ident in order:
        if ident in temp_names:
            assignments.append(TreeAssignment(
                symbol=temp_names[ident], index=None,
                tree=_strip_wraps(build(ident, as_root=True)),
                is_temp=True))
    output_trees = [
        TreeAssignment(symbol=output.symbol, index=output.index,
                       tree=_strip_wraps(build(output.node,
                                               as_root=False)),
                       is_temp=False)
        for output in dfg.outputs
    ]
    captures, output_trees = _capture_war_hazards(output_trees, counter)
    return captures + assignments + output_trees


def _leaf_may_alias(leaf: Tree, symbol: str,
                    index: Optional[ArrayIndex]) -> bool:
    """Conservative alias test between a REF leaf and a destination."""
    if leaf.symbol != symbol:
        return False
    if leaf.index is None or index is None:
        return leaf.index is None and index is None
    if leaf.index.coeff == index.coeff:
        return leaf.index.offset == index.offset
    return True


def _capture_war_hazards(outputs: List[TreeAssignment],
                         counter: int
                         ) -> "Tuple[List[TreeAssignment], List[TreeAssignment]]":
    """Protect reads of pre-block values from earlier in-block writes.

    A REF leaf always denotes the *pre-block* memory value (all DFG
    nodes do), but the generated code executes the output assignments
    in order and re-reads memory.  Any leaf in output k that may alias
    the destination of an output j < k would observe the overwritten
    cell; such leaves are captured into temporaries at block entry
    (temporaries execute before every output write).
    """
    captures: List[TreeAssignment] = []
    capture_names: Dict[Tree, str] = {}
    written: List[TreeAssignment] = []
    protected: List[TreeAssignment] = []

    def protect(tree: Tree) -> Tree:
        nonlocal counter
        if tree.kind is OpKind.REF:
            hazard = any(
                _leaf_may_alias(tree, earlier.symbol, earlier.index)
                for earlier in written)
            if not hazard:
                return tree
            if tree not in capture_names:
                name = f"{TEMP_PREFIX}{counter}"
                counter += 1
                capture_names[tree] = name
                captures.append(TreeAssignment(
                    symbol=name, index=None, tree=tree, is_temp=True))
            return Tree.ref(capture_names[tree])
        if not tree.children:
            return tree
        children = tuple(protect(child) for child in tree.children)
        if children == tree.children:
            return tree
        return Tree(tree.kind, operator=tree.operator, children=children,
                    value=tree.value, symbol=tree.symbol,
                    index=tree.index)

    for assignment in outputs:
        protected.append(TreeAssignment(
            symbol=assignment.symbol, index=assignment.index,
            tree=protect(assignment.tree), is_temp=False))
        written.append(assignment)
    return captures, protected


def _strip_wraps(tree: Tree) -> Tree:
    """Remove ``wrap`` markers that decomposition made redundant.

    After cutting shared nodes, every ``wrap`` child is a memory read or
    a constant -- both deliver wrapped values by construction, so the
    marker disappears and back ends never see it.
    """
    if tree.kind is not OpKind.COMPUTE:
        return tree
    children = tuple(_strip_wraps(child) for child in tree.children)
    if tree.operator.name == "wrap":
        child = children[0]
        if child.kind is OpKind.COMPUTE:
            raise ValueError(
                f"wrap marker survives over a computation: {child} "
                "(decomposition should have cut it)")
        return child
    if children == tree.children:
        return tree
    return Tree(tree.kind, operator=tree.operator, children=children,
                value=tree.value, symbol=tree.symbol, index=tree.index)
