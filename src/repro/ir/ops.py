"""Operator vocabulary of the IR.

Every operator that can appear in a MiniDFL program, an extracted
instruction pattern, or a tree-grammar rule is declared here, once.  The
instruction-set extractor (:mod:`repro.ise`) and the code selector
(:mod:`repro.codegen`) both speak this vocabulary, which is what lets a
pattern extracted from an RT netlist cover a node produced by the frontend
-- the "bridge between ECAD and compiler domains" the paper describes.

Operators carry their algebraic properties (commutativity, identity
element) so that :mod:`repro.ir.algebraic` can derive rewrite rules
instead of hard-coding them per operator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional


class OpKind(enum.Enum):
    """Classification of IR node kinds.

    ``CONST`` and ``REF`` are leaves; ``COMPUTE`` nodes apply one of the
    operators in :data:`OPS`.
    """

    CONST = "const"
    REF = "ref"
    COMPUTE = "compute"


@dataclass(frozen=True)
class Op:
    """A single IR operator.

    Attributes:
        name: canonical lower-case mnemonic (``"add"``, ``"mul"``, ...).
        arity: number of operands.
        commutative: ``op(a, b) == op(b, a)`` for all inputs.
        associative: ``op(op(a, b), c) == op(a, op(b, c))``.
        identity: right identity element, or ``None`` if there is none.
        py: reference semantics on plain Python ints (infinite precision);
            width handling and saturation live in
            :mod:`repro.ir.fixedpoint`, not here.
    """

    name: str
    arity: int
    commutative: bool = False
    associative: bool = False
    identity: Optional[int] = None
    py: Optional[Callable[..., int]] = None

    def __repr__(self) -> str:
        return f"Op({self.name})"

    def __reduce__(self):
        # Operators form a closed registry and carry lambdas (``py``),
        # so pickle them by name and resolve through the table on load
        # (the compile farm ships trees across process boundaries).
        return (op, (self.name,))


def _shift_left(a: int, b: int) -> int:
    if b < 0:
        raise ValueError(f"negative shift amount {b}")
    return a << b


def _shift_right(a: int, b: int) -> int:
    if b < 0:
        raise ValueError(f"negative shift amount {b}")
    return a >> b


# The operator table.  ``mac`` (multiply-accumulate) never appears in
# source programs; it exists so that extracted instruction patterns and
# grammar rules can express fused multiply-add datapaths.
OPS: Dict[str, Op] = {
    op.name: op
    for op in [
        Op("add", 2, commutative=True, associative=True, identity=0,
           py=lambda a, b: a + b),
        Op("sub", 2, identity=0, py=lambda a, b: a - b),
        # NOTE: mul is *not* marked associative: its operands pass
        # through the word-width multiplier port (see
        # FixedPointContext.WORD_OPERAND_OPS), so reassociation can
        # change which intermediate gets wrapped.
        Op("mul", 2, commutative=True, identity=1,
           py=lambda a, b: a * b),
        Op("neg", 1, py=lambda a: -a),
        Op("abs", 1, py=lambda a: abs(a)),
        Op("and", 2, commutative=True, associative=True,
           py=lambda a, b: a & b),
        Op("or", 2, commutative=True, associative=True, identity=0,
           py=lambda a, b: a | b),
        Op("xor", 2, commutative=True, associative=True, identity=0,
           py=lambda a, b: a ^ b),
        Op("not", 1, py=lambda a: ~a),
        Op("shl", 2, py=_shift_left),
        Op("shr", 2, py=_shift_right),
        Op("min", 2, commutative=True, associative=True, py=min),
        Op("max", 2, commutative=True, associative=True, py=max),
        # Fused multiply-accumulate: mac(acc, a, b) = acc + a * b.
        Op("mac", 3, py=lambda acc, a, b: acc + a * b),
        # Fused multiply-subtract: msu(acc, a, b) = acc - a * b.
        Op("msu", 3, py=lambda acc, a, b: acc - a * b),
        # Explicit saturation of a (possibly wider) value to the machine
        # word; semantics are supplied by the fixed-point context.
        Op("sat", 1, py=lambda a: a),
        # Reduction to the machine word by two's-complement wrap-around.
        # Inserted by the frontend where a value crosses a *variable
        # assignment* boundary within a block (store-to-load forwarding
        # must deliver what memory would have delivered); the width is
        # supplied by the fixed-point context.
        Op("wrap", 1, py=lambda a: a),
        # Pseudo-operator used only at instruction-selection time to give
        # the assignment "dest := value" a tree shape the tree grammar can
        # match: store(dest_ref, value).  It never appears in DFGs and is
        # never evaluated.
        Op("store", 2),
    ]
}


def op(name: str) -> Op:
    """Look up an operator by name, with a helpful error message."""
    try:
        return OPS[name]
    except KeyError:
        known = ", ".join(sorted(OPS))
        raise KeyError(f"unknown operator {name!r}; known operators: {known}")
