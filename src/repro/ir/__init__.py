"""Intermediate representation for the retargetable compiler.

The IR mirrors what the RECORD compiler (Marwedel, DAC 1997, Sec. 4.3)
works on internally:

- :mod:`repro.ir.ops` -- the operator vocabulary shared by the frontend,
  the instruction-set extractor and the code selector.
- :mod:`repro.ir.fixedpoint` -- bit-true fixed-point arithmetic semantics
  (wrap-around and saturating modes), used both to *define* what programs
  mean and to check that generated code is bit-exact.
- :mod:`repro.ir.dfg` -- data-flow graphs for straight-line code regions.
- :mod:`repro.ir.trees` -- expression trees plus the heuristic
  decomposition of DFGs into trees that tree-covering code selection needs.
- :mod:`repro.ir.algebraic` -- algebraic variant enumeration (RECORD calls
  the tree matcher once per equivalent tree and keeps the cheapest cover).
- :mod:`repro.ir.program` -- structured programs: straight-line blocks and
  counted loops, which is all the DSPStone kernels require.
"""

from repro.ir.ops import Op, OpKind, OPS
from repro.ir.fixedpoint import FixedPointContext, Overflow
from repro.ir.dfg import DataFlowGraph, Node, ArrayIndex, Output
from repro.ir.trees import Tree, decompose, tree_of_node
from repro.ir.algebraic import enumerate_variants, RewriteRule, DEFAULT_RULES
from repro.ir.program import Program, Block, Loop, Assignment

__all__ = [
    "Op",
    "OpKind",
    "OPS",
    "FixedPointContext",
    "Overflow",
    "DataFlowGraph",
    "Node",
    "ArrayIndex",
    "Output",
    "Tree",
    "decompose",
    "tree_of_node",
    "enumerate_variants",
    "RewriteRule",
    "DEFAULT_RULES",
    "Program",
    "Block",
    "Loop",
    "Assignment",
]
