"""Data-flow graphs for straight-line code regions.

A :class:`DataFlowGraph` is the frontend's output for one straight-line
region (Fig. 2 of the paper: "flow graph generation").  Nodes are either
constants, memory references, or operator applications; identical nodes
are interned so common subexpressions are shared automatically.  The
graph records an ordered list of *outputs*: memory writes that the region
must perform.

Array accesses are represented relative to the innermost loop's induction
variable: a :class:`ArrayIndex` encodes ``coeff * i + offset``.  This is
all the DSPStone kernels need and it is exactly the shape that DSP
address-generation units (auto-increment / auto-decrement) exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, MutableMapping, Optional, Tuple

from repro.ir.fixedpoint import FixedPointContext
from repro.ir.ops import Op, OpKind, op as lookup_op


@dataclass(frozen=True)
class ArrayIndex:
    """Affine array index ``coeff * i + offset`` in the enclosing loop.

    ``coeff == 0`` denotes an absolute element access (also used outside
    loops).  ``coeff == +1``/``-1`` are forward / reverse sequential walks,
    the cases address-generation units accelerate.
    """

    coeff: int = 0
    offset: int = 0

    def evaluate(self, induction_value: int) -> int:
        """Concrete element index for a given induction-variable value."""
        return self.coeff * induction_value + self.offset

    def __str__(self) -> str:
        if self.coeff == 0:
            return str(self.offset)
        head = "i" if self.coeff == 1 else ("-i" if self.coeff == -1
                                            else f"{self.coeff}*i")
        if self.offset == 0:
            return head
        sign = "+" if self.offset > 0 else "-"
        return f"{head}{sign}{abs(self.offset)}"


@dataclass(frozen=True)
class Node:
    """One DFG node.  Immutable; identity is structural (see interning)."""

    ident: int
    kind: OpKind
    operator: Optional[Op] = None
    operands: Tuple[int, ...] = ()
    value: Optional[int] = None          # CONST payload
    symbol: Optional[str] = None         # REF payload
    index: Optional[ArrayIndex] = None   # REF payload for arrays

    def describe(self) -> str:
        """Short human-readable node text (for dumps and errors)."""
        if self.kind is OpKind.CONST:
            return f"#{self.value}"
        if self.kind is OpKind.REF:
            if self.index is None:
                return f"ref {self.symbol}"
            return f"ref {self.symbol}[{self.index}]"
        names = ", ".join(f"n{i}" for i in self.operands)
        return f"{self.operator.name}({names})"


@dataclass(frozen=True)
class Output:
    """A memory write the region performs: ``symbol[index] := node``."""

    symbol: str
    index: Optional[ArrayIndex]
    node: int

    def describe(self) -> str:
        """Short human-readable output text (for dumps and errors)."""
        target = self.symbol if self.index is None else \
            f"{self.symbol}[{self.index}]"
        return f"{target} := n{self.node}"


class DataFlowGraph:
    """An interning DFG builder and container.

    Build with :meth:`const`, :meth:`ref` and :meth:`compute`; declare the
    region's memory writes with :meth:`write`.  Structurally identical
    nodes are shared, so fan-out in the node table reflects genuine common
    subexpressions.
    """

    def __init__(self) -> None:
        self._nodes: List[Node] = []
        self._intern: Dict[tuple, int] = {}
        self.outputs: List[Output] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add(self, key: tuple, make: "callable") -> int:
        existing = self._intern.get(key)
        if existing is not None:
            return existing
        ident = len(self._nodes)
        self._nodes.append(make(ident))
        self._intern[key] = ident
        return ident

    def const(self, value: int) -> int:
        """Add (or reuse) a constant leaf; returns the node id."""
        key = ("const", value)
        return self._add(key, lambda i: Node(i, OpKind.CONST, value=value))

    def ref(self, symbol: str, index: Optional[ArrayIndex] = None) -> int:
        """Add (or reuse) a memory-read leaf; returns the node id."""
        key = ("ref", symbol, index)
        return self._add(
            key,
            lambda i: Node(i, OpKind.REF, symbol=symbol, index=index))

    def compute(self, operator_name: str, *operand_ids: int) -> int:
        """Add (or reuse) an operator application; returns the node id."""
        operator = lookup_op(operator_name)
        if len(operand_ids) != operator.arity:
            raise ValueError(
                f"{operator.name} expects {operator.arity} operands, "
                f"got {len(operand_ids)}")
        for oid in operand_ids:
            if not 0 <= oid < len(self._nodes):
                raise ValueError(f"operand id {oid} does not exist")
        key = ("compute", operator.name, operand_ids)
        return self._add(
            key,
            lambda i: Node(i, OpKind.COMPUTE, operator=operator,
                           operands=tuple(operand_ids)))

    def write(self, symbol: str, node_id: int,
              index: Optional[ArrayIndex] = None) -> None:
        """Declare that the region writes ``node_id`` to memory."""
        if not 0 <= node_id < len(self._nodes):
            raise ValueError(f"node id {node_id} does not exist")
        self.outputs.append(Output(symbol, index, node_id))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def node(self, ident: int) -> Node:
        """The node with identity ``ident``."""
        return self._nodes[ident]

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def use_counts(self) -> Dict[int, int]:
        """Number of uses of each node (operand edges plus output edges)."""
        counts: Dict[int, int] = {n.ident: 0 for n in self._nodes}
        for node in self._nodes:
            for operand in node.operands:
                counts[operand] += 1
        for output in self.outputs:
            counts[output.node] += 1
        return counts

    def reachable_from_outputs(self) -> List[int]:
        """Node ids reachable from any output, in topological order."""
        seen: Dict[int, bool] = {}
        order: List[int] = []

        def visit(ident: int) -> None:
            if ident in seen:
                return
            seen[ident] = True
            for operand in self._nodes[ident].operands:
                visit(operand)
            order.append(ident)

        for output in self.outputs:
            visit(output.node)
        return order

    def dump(self) -> str:
        """Human-readable listing (used by examples and tests)."""
        lines = [f"n{n.ident}: {n.describe()}" for n in self._nodes]
        lines += [output.describe() for output in self.outputs]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Reference evaluation
    # ------------------------------------------------------------------

    def evaluate(self, env: MutableMapping[str, object],
                 fpc: FixedPointContext,
                 induction_value: int = 0) -> None:
        """Execute the region bit-true, mutating ``env`` in place.

        ``env`` maps scalar symbols to ints and array symbols to lists of
        ints.  All outputs read their operands *before* any write happens
        (the region has dataflow semantics, not sequential semantics).
        """
        values: Dict[int, int] = {}
        for ident in self.reachable_from_outputs():
            node = self._nodes[ident]
            if node.kind is OpKind.CONST:
                values[ident] = fpc.reduce(node.value)
            elif node.kind is OpKind.REF:
                values[ident] = _read(env, node.symbol, node.index,
                                      induction_value)
            else:
                operands = [values[oid] for oid in node.operands]
                values[ident] = fpc.apply(node.operator, *operands)
        # Expression values are exact; storing reduces to the word width
        # (wrap by default; an explicit sat() already clamped the value).
        pending = [(output, fpc.reduce(values[output.node]))
                   for output in self.outputs]
        for output, value in pending:
            _write(env, output.symbol, output.index, induction_value, value)


def _read(env: Mapping[str, object], symbol: str,
          index: Optional[ArrayIndex], induction_value: int) -> int:
    if symbol not in env:
        raise KeyError(f"symbol {symbol!r} is not bound")
    stored = env[symbol]
    if index is None:
        if isinstance(stored, list):
            raise TypeError(f"{symbol!r} is an array; index required")
        return int(stored)
    if not isinstance(stored, list):
        raise TypeError(f"{symbol!r} is a scalar; cannot index")
    return int(stored[index.evaluate(induction_value)])


def _write(env: MutableMapping[str, object], symbol: str,
           index: Optional[ArrayIndex], induction_value: int,
           value: int) -> None:
    if index is None:
        env[symbol] = value
        return
    stored = env.setdefault(symbol, [])
    if not isinstance(stored, list):
        raise TypeError(f"{symbol!r} is a scalar; cannot index")
    stored[index.evaluate(induction_value)] = value
