"""Quickstart: compile a DSPStone kernel three ways and compare.

Reproduces one row of the paper's Table 1 interactively: the FIR kernel
compiled by the RECORD retargetable pipeline, by the conventional
target-specific compiler, and the hand-written TMS320C25 reference --
all simulated and checked against the MiniDFL reference semantics.

Run:  python examples/quickstart.py
"""

from repro import compile_kernel
from repro.dspstone import kernel
from repro.ir.fixedpoint import FixedPointContext


def main() -> None:
    spec = kernel("fir")
    print(f"kernel: {spec.name} -- {spec.description}")
    print()
    print("MiniDFL source:")
    print(spec.source)

    inputs = spec.inputs(seed=0)

    # Reference semantics (the ground truth)
    program = spec.program
    reference = program.initial_environment()
    for key, value in inputs.items():
        reference[key] = list(value) if isinstance(value, list) else value
    program.run(reference, FixedPointContext(16))
    print(f"reference y = {reference['y']}")
    print()

    results = {}
    for compiler in ("hand", "baseline", "record"):
        result = compile_kernel("fir", target="tc25", compiler=compiler)
        outputs, cycles = result.run(inputs)
        assert outputs["y"] == reference["y"], compiler
        results[compiler] = (result.words(), cycles)
        print(f"--- {compiler}: {result.words()} words, "
              f"{cycles} cycles, y = {outputs['y']}")
        print(result.listing())
        print()

    hand_words = results["hand"][0]
    print("Table 1 row (size relative to hand assembly):")
    for compiler in ("baseline", "record"):
        words, cycles = results[compiler]
        print(f"  {compiler:10s} {100 * words // hand_words:4d}%   "
              f"({words} words, {cycles} cycles)")
    print("  paper:     TI C compiler 700%, RECORD 200%")


if __name__ == "__main__":
    main()
