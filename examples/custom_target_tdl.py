"""Retarget the compiler to a processor that exists only as text.

Sec. 4.4 of the paper: CHESS generates its compiler from nML processor
descriptions; RECORD from netlists or instruction-set descriptions.
This example does the instruction-set flavour end to end:

1. load ``examples/targets/demo16.tdl`` -- a complete ASIP described in
   the TDL formalism (registers, loop counters, AGU pointers, rules
   with semantics);
2. the description *becomes* a compiler target: grammar, simulator,
   loop realization are generated;
3. compile and run DSPStone kernels on it, bit-exact against the
   MiniDFL reference;
4. edit the description (drop the fused MAC path) and watch the
   generated code respond -- the codesign loop again, this time over a
   text file a designer can version-control.

Run:  python examples/custom_target_tdl.py
"""

import pathlib

from repro.codegen.pipeline import RecordCompiler
from repro.dspstone import kernel
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.tdl import load_target

DESCRIPTION = pathlib.Path(__file__).parent / "targets" / "demo16.tdl"


def main() -> None:
    text = DESCRIPTION.read_text()
    target = load_target(text)
    print(f"loaded target: {target.describe()}")
    print(f"grammar: {len(target.grammar().rules)} rules generated "
          "from the description")
    print()

    fpc = FixedPointContext(16)
    for name in ("real_update", "fir", "iir_biquad_one_section"):
        spec = kernel(name)
        compiled = RecordCompiler(target).compile(spec.program)
        inputs = spec.inputs(seed=0)
        reference = spec.program.initial_environment()
        for key, value in inputs.items():
            reference[key] = list(value) if isinstance(value, list) \
                else value
        spec.program.run(reference, fpc)
        outputs, state = run_compiled(compiled, inputs)
        ok = all(outputs[s.name] == reference[s.name]
                 for s in spec.program.symbols.values()
                 if s.role == "output")
        print(f"{name:26s} {compiled.words():3d} words "
              f"{state.cycles:4d} cycles  "
              f"{'bit-exact' if ok else 'MISMATCH'}")
    print()

    print("editing the description: removing the fused MAC/Q15 rules")
    statements = text.split(";")
    slim_text = ";".join(
        s for s in statements
        if not any(f"rule {n} " in s
                   for n in ("MAC", "MACQ", "MSU", "MSUQ", "MPYQ")))
    slim = load_target(slim_text)
    for name in ("fir", "iir_biquad_one_section"):
        spec = kernel(name)
        full_words = RecordCompiler(target).compile(spec.program).words()
        slim_words = RecordCompiler(slim).compile(spec.program).words()
        print(f"{name:26s} with MAC: {full_words:3d} words   "
              f"without: {slim_words:3d} words")
    print()
    print(compile_listing(target))


def compile_listing(target) -> str:
    spec = kernel("fir")
    compiled = RecordCompiler(target).compile(spec.program)
    return compiled.listing()


if __name__ == "__main__":
    main()
