"""Retargeting and hardware/software codesign with ASIP parameters.

Sec. 4.2 of the paper: ASIPs "frequently come with generic parameters
... The user should at least be able to retarget a compiler to every
set of parameter values.  A larger range of target architectures would
be desirable to support experimentation with different hardware
options, especially for partitioning in hardware/software codesign."

This example is that experiment: one kernel, one compiler, a sweep of
hardware configurations -- and the size/cycle numbers that tell a
designer which hardware feature pays for itself.

Run:  python examples/retarget_asip.py
"""

from repro.codegen.pipeline import RecordCompiler
from repro.dspstone import kernel
from repro.ir.fixedpoint import FixedPointContext
from repro.sim.harness import run_compiled
from repro.targets.asip import Asip, AsipParams
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25

CONFIGURATIONS = [
    ("full DSP feature set", AsipParams()),
    ("no hardware repeat", AsipParams(has_repeat=False)),
    ("no MAC (multiply, transfer, add)", AsipParams(has_mac=False,
                                                    has_repeat=False)),
    ("no product shifter (Q15 in software)",
     AsipParams(has_product_shifter=False)),
    ("barrel shifter added", AsipParams(has_barrel_shifter=True)),
    ("2 address registers only", AsipParams(address_registers=2)),
]


def main() -> None:
    spec = kernel("fir")
    program = spec.program
    inputs = spec.inputs(seed=0)
    reference = program.initial_environment()
    for key, value in inputs.items():
        reference[key] = list(value) if isinstance(value, list) else value
    program.run(reference, FixedPointContext(16))

    print(f"kernel: {spec.name}  (reference y = {reference['y']})")
    print()
    print(f"{'ASIP configuration':42s} {'words':>6s} {'cycles':>7s}")
    print("-" * 60)
    for label, params in CONFIGURATIONS:
        target = Asip(params)
        compiled = RecordCompiler(target).compile(program)
        outputs, state = run_compiled(compiled, inputs)
        assert outputs["y"] == reference["y"], label
        print(f"{label:42s} {compiled.words():>6d} "
              f"{state.cycles:>7d}")

    print()
    print("The same source retargets across architecture families too:")
    print(f"{'target':42s} {'words':>6s} {'cycles':>7s}")
    print("-" * 60)
    for target in (TC25(), M56(), Risc16()):
        compiled = RecordCompiler(target).compile(program)
        outputs, state = run_compiled(compiled, inputs)
        assert outputs["y"] == reference["y"], target.name
        print(f"{target.describe():42.42s} {compiled.words():>6d} "
              f"{state.cycles:>7d}")


if __name__ == "__main__":
    main()
