"""A streaming IIR filter: MiniDFL delay lines on real hardware state.

MiniDFL keeps DFL's signal-flow semantics: a program describes one
sample tick, ``w@k`` reads the value of ``w`` from k ticks ago, and the
compiler maintains the delay lines (on the TC25 that update becomes the
classic ``DMOV`` idiom).  This example compiles a Q15 biquad low-pass
section once and then *streams* samples through the simulated
processor, with the machine's data memory carrying the filter state
between invocations -- exactly how the code would run in a codec.

Run:  python examples/streaming_filter.py
"""

import math

from repro import compile_source
from repro.ir.fixedpoint import FixedPointContext

BIQUAD = """
program lowpass;
input  x;
input  b0, b1, b2, a1, a2;    { Q15 coefficients }
output y;
var    w;
begin
  w := x - ((a1 * w@1) >> 15) - ((a2 * w@2) >> 15);
  y := ((b0 * w) >> 15) + ((b1 * w@1) >> 15) + ((b2 * w@2) >> 15);
end.
"""


def q15(value: float) -> int:
    return FixedPointContext(16).to_fixed(value, 15)


def butterworth_lowpass(cutoff: float):
    """Direct-form-II biquad coefficients for a 2nd-order Butterworth
    low-pass at ``cutoff`` (fraction of the sample rate)."""
    k = math.tan(math.pi * cutoff)
    norm = 1 / (1 + math.sqrt(2.0) * k + k * k)
    b0 = k * k * norm
    return {
        "b0": q15(b0), "b1": q15(2 * b0), "b2": q15(b0),
        "a1": q15(2 * (k * k - 1) * norm),
        "a2": q15((1 - math.sqrt(2.0) * k + k * k) * norm),
    }


def main() -> None:
    result = compile_source(BIQUAD, target="tc25", compiler="record")
    print(result.listing())
    print()

    coefficients = butterworth_lowpass(cutoff=0.05)
    print("Q15 coefficients:", coefficients)

    # a noisy step: DC level 1000 with an alternating +/-800 overlay
    samples = [1000 + (800 if n % 2 == 0 else -800) for n in range(40)]

    state = None
    outputs = []
    total_cycles = 0
    for sample in samples:
        inputs = dict(coefficients)
        inputs["x"] = sample
        from repro.sim.harness import run_compiled
        env, state = run_compiled(result.compiled, inputs, state=state)
        outputs.append(env["y"])
        total_cycles = state.cycles

    print()
    print("input  :", " ".join(f"{s:6d}" for s in samples[-8:]))
    print("output :", " ".join(f"{y:6d}" for y in outputs[-8:]))
    settled = outputs[-4:]
    ripple_in = 1600
    ripple_out = max(settled) - min(settled)
    print()
    print(f"alternating ripple at input : {ripple_in}")
    print(f"alternating ripple at output: {ripple_out} "
          f"({100 * ripple_out // ripple_in}% of input)")
    print(f"DC level tracked            : ~{sum(settled) // 4} "
          "(input DC = 1000)")
    print(f"total machine cycles for {len(samples)} samples: "
          f"{total_cycles}")
    assert ripple_out < ripple_in // 4, "low-pass should kill the ripple"


if __name__ == "__main__":
    main()
