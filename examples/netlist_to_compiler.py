"""The ECAD bridge: an RT netlist becomes a working compiler.

The paper's distinguishing claim for RECORD (Sec. 4.3.1/4.3.2): the
target may be described as an RT-level *netlist*; instruction-set
extraction (ISE) derives the instruction set, justification finds the
instruction bits, and the ordinary compiler pipeline does the rest --
"a bridge between ECAD (netlist) and compiler (instruction set)
domains".

This example:

1. builds the paper's Fig. 3 datapath and shows the extracted pattern
   ``Reg[bb] := Reg[aa] + acc`` with its justified bit settings;
2. builds MiniACC (a complete accumulator machine as a netlist), runs
   ISE, converts the patterns to a tree grammar, compiles a MiniDFL
   program with the RECORD pipeline, and executes it on the netlist-
   derived simulator -- no hand-written target description anywhere.

Run:  python examples/netlist_to_compiler.py
"""

from repro.codegen.pipeline import RecordCompiler
from repro.dfl import compile_dfl
from repro.ise.examples import figure3_netlist, miniacc_netlist
from repro.ise.extractor import extract
from repro.ise.patterns import NetlistTarget
from repro.sim.harness import run_compiled

SOURCE = """
program energy;
input  xr, xi;
output e;
begin
  e := xr*xr + xi*xi;
end.
"""


def main() -> None:
    print("=" * 64)
    print("Fig. 3: instruction extraction from the paper's datapath")
    print("=" * 64)
    for pattern in extract(figure3_netlist()):
        print(" ", pattern.describe())
    print()

    print("=" * 64)
    print("MiniACC: netlist -> ISE -> grammar -> compiler -> binary")
    print("=" * 64)
    netlist = miniacc_netlist()
    patterns = extract(netlist)
    print(f"{len(patterns)} instructions extracted; a selection:")
    for pattern in patterns[:8]:
        print(" ", pattern.describe())
    print("  ...")
    print()

    target = NetlistTarget(netlist, patterns)
    grammar = target.grammar()
    print(f"tree grammar '{grammar.name}': {len(grammar.rules)} rules")
    print()

    program = compile_dfl(SOURCE)
    compiled = RecordCompiler(target).compile(program)
    print(compiled.listing())
    print()

    inputs = {"xr": 30, "xi": -40}
    outputs, state = run_compiled(compiled, inputs)
    print(f"energy({inputs['xr']}, {inputs['xi']}) = {outputs['e']} "
          f"(expected {30 * 30 + 40 * 40}) in {state.cycles} cycles")
    assert outputs["e"] == 2500


if __name__ == "__main__":
    main()
