"""Self-test program generation with the retargetable compiler.

Sec. 4.5 of the paper: "Automatic generation of self-test programs is
possible with a special retargetable compiler that is able to propagate
values just like ATPG tools."  Here the ordinary RECORD pipeline *is*
that generator: random straight-line programs compiled for the target
justify operand values into the special registers and propagate results
to observable memory; decoder faults (opcode A executes as opcode B)
are detected when any program's output signature diverges.

Run:  python examples/selftest_generation.py
"""

from repro.selftest import generate_self_test, run_self_test
from repro.selftest.generator import fault_universe
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25


def main() -> None:
    for target in (TC25(), Risc16()):
        print("=" * 64)
        print(f"target: {target.describe()}")
        print(f"fault universe: {len(fault_universe(target))} decoder "
              "faults")
        print()
        print(f"{'programs':>9s} {'total words':>12s} {'coverage':>9s}")
        suite = None
        for count in (2, 6, 12, 20):
            suite = generate_self_test(target, programs=count, seed=0)
            report = run_self_test(target, suite=suite)
            words = sum(p.words() for p in suite.programs)
            print(f"{count:>9d} {words:>12d} {report.coverage:>8.0%}")
        final = run_self_test(target, suite=suite)
        print()
        print(final.summary())
        print()
        print("one generated test program:")
        print(suite.programs[0].listing())
        print()


if __name__ == "__main__":
    main()
