"""The processor cube (Fig. 1): classify the shipped target models.

The paper classifies processors along three axes -- availability
(packaged part vs. CAD core), domain-specific features (general vs.
DSP) and application-specific features (fixed vs. configurable) -- and
names the corners (off-the-shelf processor, DSP, ASIP, ASSP, cores of
each).  Because every target in this repository is an *explicit* model,
its cube position is derivable from the same object the compiler
consumes.

Run:  python examples/processor_cube.py
"""

from repro.targets.asip import Asip, AsipParams
from repro.targets.cube import classify, cube_table
from repro.targets.m56 import M56
from repro.targets.risc import Risc16
from repro.targets.tc25 import TC25


def main() -> None:
    targets = [
        TC25(),
        M56(),
        Risc16(),
        Asip(),                                     # DSP-flavoured ASIP
        Asip(AsipParams(has_multiplier=False,        # control-flavoured
                        has_mac=False,
                        has_product_shifter=False,
                        has_repeat=True)),
    ]
    print("Fig. 1 regenerated: the processor cube, populated with the")
    print("repository's target models\n")
    print(cube_table(targets))
    print()
    print("axes: form = {packaged, core}; domain = {general, dsp};")
    print("      application = {fixed, configurable}")
    print("the paper marks 'packaged + configurable' as the impossible")
    print("corner -- fabricated silicon has frozen parameters:")
    from repro.targets.cube import CubePosition
    try:
        CubePosition(form="packaged", domain="dsp",
                     application="configurable")
    except ValueError as error:
        print(f"  CubePosition(...) -> ValueError: {error}")


if __name__ == "__main__":
    main()
